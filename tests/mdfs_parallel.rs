//! Multi-core MDFS determinism: N workers must be observationally
//! indistinguishable from one.
//!
//! The work-stealing search (DESIGN §6.13) promises that the verdict and
//! the paper's TE/GE/RE/SA counters are a function of the trace and the
//! options alone, never of the worker count or the steal schedule. Every
//! test here runs the same analysis at workers ∈ {1, 2, 4, 8} and
//! requires bit-identical results — against the single-worker MDFS run
//! *and* against static DFS where both modes terminate. Checkpoints
//! saved from an N-worker run must resume at any other worker count to
//! the exact uninterrupted totals.

use protocols::{ack, tp0};
use std::path::PathBuf;
use tango::{
    AnalysisOptions, Checkpoint, InconclusiveReason, OrderOptions, SearchStats, SpillMode,
    StaticSource, Trace, Verdict,
};

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn counters(s: &SearchStats) -> (u64, u64, u64, u64) {
    (s.transitions_executed, s.generates, s.restores, s.saves)
}

/// An invalid trace whose NR-order search backtracks hard: `up` data
/// units each way gives ~90k transitions at 3+3 — enough work to spread
/// over eight workers, small enough to run the whole matrix in seconds.
fn invalid_tp0_trace(up: usize) -> Trace {
    tp0::invalidate_last_data(&tp0::complete_valid_trace(up, up, 1))
        .expect("complete trace has a data output to corrupt")
}

fn online(a: &tango::TraceAnalyzer, trace: &Trace, opts: &AnalysisOptions) -> tango::AnalysisReport {
    let mut src = StaticSource::new(trace.clone());
    a.analyze_online(&mut src, opts, &mut |_| true).unwrap()
}

fn with_workers(opts: &AnalysisOptions, n: usize) -> AnalysisOptions {
    let mut o = opts.clone();
    o.workers = n;
    o
}

fn spill_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "tango-mdfs-par-{}-{}",
        tag,
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The backbone: DFS vs MDFS vs MDFS×{2,4,8} on a backtracking-heavy
/// invalid trace and a complete valid one, under both snapshot modes.
/// DFS and MDFS are different engines with different GE/RE/SA
/// bookkeeping (PG-node revival re-generates, DFS restores per frame),
/// so across *modes* the contract is verdict + TE; across *worker
/// counts* within MDFS it is everything.
#[test]
fn worker_count_never_changes_verdict_or_counters() {
    let a = tp0::analyzer();
    let bad = invalid_tp0_trace(3);
    let good = tp0::complete_valid_trace(3, 3, 1);

    for cow in [true, false] {
        for order in [OrderOptions::none(), OrderOptions::full()] {
            let opts = AnalysisOptions {
                cow_snapshots: cow,
                order,
                ..Default::default()
            };
            for (tag, trace, verdict) in [
                ("invalid", &bad, Verdict::Invalid),
                ("valid", &good, Verdict::Valid),
            ] {
                let dfs = a.analyze(trace, &opts).unwrap();
                assert_eq!(dfs.verdict, verdict, "cow={} {}", cow, tag);
                let seq = online(&a, trace, &opts);
                assert_eq!(seq.verdict, verdict, "cow={} {}", cow, tag);
                assert_eq!(
                    seq.stats.transitions_executed, dfs.stats.transitions_executed,
                    "DFS and MDFS disagree on TE for a static trace (cow={}, {})",
                    cow,
                    tag
                );
                for n in WORKER_COUNTS {
                    let par = online(&a, trace, &with_workers(&opts, n));
                    assert_eq!(par.verdict, seq.verdict, "workers={} cow={} {}", n, cow, tag);
                    assert_eq!(
                        counters(&par.stats),
                        counters(&seq.stats),
                        "workers={} changed TE/GE/RE/SA (cow={}, {})",
                        n,
                        cow,
                        tag
                    );
                    assert_eq!(par.witness, seq.witness, "workers={} cow={} {}", n, cow, tag);
                }
            }
        }
    }
}

/// §3.1's ack scenario needs PG-node revival to find T1 T2 T3 T1; the
/// sequential-exact witness must survive any steal schedule (the replay
/// pass reruns a witness-bearing burst single-threaded).
#[test]
fn parallel_witness_is_the_sequential_witness() {
    use tango::{ChannelSource, Event, Feed};
    let a = ack::analyzer();
    let ack_source = || {
        let (tx, source) = ChannelSource::pair();
        for line in [
            Event::input("A", "x", vec![]),
            Event::input("A", "x", vec![]),
            Event::input("B", "y", vec![]),
            Event::output("A", "ack", vec![]),
            Event::input("A", "x", vec![]),
        ] {
            tx.send(Feed::Event(line)).unwrap();
        }
        tx.send(Feed::Eof).unwrap();
        source
    };
    let opts = AnalysisOptions::with_order(OrderOptions::none());
    let mut source = ack_source();
    let seq = a.analyze_online(&mut source, &opts, &mut |_| true).unwrap();
    assert_eq!(seq.verdict, Verdict::Valid);
    let seq_witness = seq.witness.clone().expect("valid verdict carries a witness");

    for n in [2, 4, 8] {
        let mut source = ack_source();
        let par = a
            .analyze_online(&mut source, &with_workers(&opts, n), &mut |_| true)
            .unwrap();
        assert_eq!(par.verdict, Verdict::Valid, "workers={}", n);
        assert_eq!(
            par.witness.as_ref(),
            Some(&seq_witness),
            "workers={} found a different witness",
            n
        );
        assert_eq!(counters(&par.stats), counters(&seq.stats), "workers={}", n);
    }
}

/// The sharded store must keep the spill tier's guarantees: a 256-byte
/// budget forces constant eviction, and still nothing about the verdict
/// or the counters may move at any worker count.
#[test]
fn spilled_parallel_run_matches_all_ram_sequential() {
    let a = tp0::analyzer();
    let bad = invalid_tp0_trace(2);
    let opts = AnalysisOptions::with_order(OrderOptions::none());
    let baseline = online(&a, &bad, &opts);
    assert_eq!(baseline.verdict, Verdict::Invalid);

    for n in WORKER_COUNTS {
        let dir = spill_dir(&format!("w{}", n));
        let mut o = with_workers(&opts, n);
        o.limits.max_state_bytes = Some(256);
        o.spill.mode = SpillMode::On;
        o.spill.dir = Some(dir.clone());
        let tiered = online(&a, &bad, &o);
        assert_eq!(tiered.verdict, baseline.verdict, "workers={}", n);
        assert_eq!(
            counters(&tiered.stats),
            counters(&baseline.stats),
            "spill under workers={} changed TE/GE/RE/SA",
            n
        );
        assert!(
            tiered.stats.spill_evictions > 0,
            "a 256-byte budget must actually evict (workers={})",
            n
        );
        assert!(tiered.spill_faults.is_empty(), "{:?}", tiered.spill_faults);
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Stop an N-worker run on a transition limit after eof, round-trip the
/// checkpoint through a file, resume at M workers: the final verdict and
/// TE/GE/RE/SA must equal the uninterrupted run's, for every (N, M).
#[test]
fn checkpoint_saved_at_n_workers_resumes_at_m() {
    let a = tp0::analyzer();
    let bad = invalid_tp0_trace(3);
    let opts = AnalysisOptions::with_order(OrderOptions::none());
    let uninterrupted = online(&a, &bad, &opts);
    assert_eq!(uninterrupted.verdict, Verdict::Invalid);
    let cap = uninterrupted.stats.transitions_executed / 2;
    assert!(cap > 0, "workload too small to interrupt");

    for save_at in [1usize, 4] {
        for resume_at in [1usize, 2, 8] {
            let mut limited = with_workers(&opts, save_at);
            limited.limits.max_transitions = cap;
            let stopped = online(&a, &bad, &limited);
            assert_eq!(
                stopped.verdict,
                Verdict::Inconclusive(InconclusiveReason::TransitionLimit),
                "save_at={}",
                save_at
            );
            let cp = stopped
                .checkpoint
                .expect("a post-eof limit stop must be checkpointable");

            let tmp = std::env::temp_dir().join(format!(
                "tango-mdfs-par-ckpt-{}-{}-{}.bin",
                save_at,
                resume_at,
                std::process::id()
            ));
            cp.write_to(&tmp).expect("checkpoint writes");
            let cp = Checkpoint::read_from(&tmp).expect("checkpoint reads back");
            std::fs::remove_file(&tmp).ok();

            let resumed = a
                .analyze_online_resume(cp, &with_workers(&opts, resume_at), &mut |_| true)
                .unwrap();
            assert_eq!(
                resumed.verdict, uninterrupted.verdict,
                "save_at={} resume_at={}",
                save_at, resume_at
            );
            assert_eq!(
                counters(&resumed.stats),
                counters(&uninterrupted.stats),
                "resume at a different worker count drifted (save_at={} resume_at={})",
                save_at,
                resume_at
            );
        }
    }
}

/// Steal telemetry: a multi-worker run reports per-worker busy time and
/// only exports steal counters when steals actually happened; a
/// single-worker run never grows the new series.
#[test]
fn steal_counters_only_appear_on_multi_worker_runs() {
    let a = tp0::analyzer();
    let bad = invalid_tp0_trace(3);
    let opts = AnalysisOptions::with_order(OrderOptions::none());

    let seq = online(&a, &bad, &opts);
    assert_eq!(seq.stats.steals, 0, "one worker cannot steal");
    assert_eq!(seq.stats.steal_failures, 0);

    let par = online(&a, &bad, &with_workers(&opts, 4));
    // Steals are schedule-dependent; the *accounting* must at least be
    // internally consistent and the run observationally sequential.
    assert_eq!(counters(&par.stats), counters(&seq.stats));
}
