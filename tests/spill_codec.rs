//! Corruption matrix for the spill segment format.
//!
//! A spill directory outlives crashes, and nothing about the bytes on
//! disk can be trusted when the tier reopens it. These tests damage a
//! real segment file every way a disk can — truncation at every byte
//! boundary, flipped bits in headers and payloads, a foreign file
//! wearing the `.seg` suffix, a segment from a future format version —
//! and require the strict verifier to answer with a *typed*
//! [`SpillError`], never a panic, never garbage accepted as a snapshot.

use estelle_runtime::{Machine, MachineState, Value};
use std::path::{Path, PathBuf};
use tango::spill::{
    verify_segment_file, FaultySpillDir, FsSpillDir, SpillDir, SpillError, SpillFaultPlan,
    SpillTicket, SpillTier, SPILL_MAGIC, SPILL_VERSION,
};

const SPEC: &str = r#"
    specification s;
    module M process; end;
    body MB for M;
        var n : integer;
        state S;
        initialize to S begin n := 0 end;
    end;
    end.
"#;

fn state_with(n: i64) -> MachineState {
    let m = Machine::from_source(SPEC).unwrap();
    let mut st = m.initial_state().unwrap();
    st.globals[0] = Value::Int(n);
    st
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "tango-spill-codec-{}-{}",
        tag,
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Write a three-record segment and return (segment path, its tickets).
fn seed_segment(root: &Path) -> (PathBuf, Vec<SpillTicket>) {
    let mut tier = SpillTier::open(Box::new(FsSpillDir::new(root)), 64 << 20, 0).unwrap();
    let mut tickets = Vec::new();
    for n in 0..3 {
        tickets.push(tier.write_state(n as u64, &state_with(n)).unwrap());
    }
    drop(tier);
    (root.join("spill-00000000.seg"), tickets)
}

#[test]
fn intact_segment_verifies_and_reads_back() {
    let dir = tmpdir("intact");
    let (seg, written) = seed_segment(&dir);
    let verified = verify_segment_file(&seg).expect("undamaged segment verifies");
    assert_eq!(verified, written, "the verifier sees exactly what was written");

    // The tickets it returns are live: a reopened tier serves them.
    let mut tier = SpillTier::open(Box::new(FsSpillDir::new(&dir)), 64 << 20, 0).unwrap();
    assert_eq!(tier.adoptable_records(), 3, "reopen adopts every record");
    for (n, t) in verified.iter().enumerate() {
        assert_eq!(tier.read_state(t).unwrap(), state_with(n as i64));
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncation_at_every_prefix_is_a_typed_error_or_a_clean_shorter_file() {
    let dir = tmpdir("trunc");
    let (seg, tickets) = seed_segment(&dir);
    let bytes = std::fs::read(&seg).unwrap();

    // The only prefixes at which a strict scan may still succeed: the
    // empty file (created, never written), the bare header, and exact
    // record boundaries — everything else must be a typed error.
    let mut clean_cuts = vec![0u64, 12];
    clean_cuts.extend(tickets.iter().map(|t| t.offset + u64::from(t.len)));

    // Every byte boundary of the header and first record, then sparse
    // samples through the rest so the matrix stays fast.
    let first_end = (tickets[0].offset + u64::from(tickets[0].len)) as usize;
    let cuts = (0..=first_end.min(bytes.len()))
        .chain((first_end..bytes.len()).step_by(7))
        .chain(std::iter::once(bytes.len() - 1));
    let victim = dir.join("cut.seg");
    for cut in cuts {
        std::fs::write(&victim, &bytes[..cut]).unwrap();
        match verify_segment_file(&victim) {
            Ok(recovered) => assert!(
                clean_cuts.contains(&(cut as u64)),
                "cut at {} must not verify (got {} records)",
                cut,
                recovered.len()
            ),
            Err(
                SpillError::Truncated { .. }
                | SpillError::BadMagic { .. }
                | SpillError::Corrupt { .. },
            ) => assert!(
                !clean_cuts.contains(&(cut as u64)),
                "clean boundary {} must verify",
                cut
            ),
            Err(other) => panic!("cut at {}: unexpected error {}", cut, other),
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn flipped_payload_bytes_fail_the_checksum() {
    let dir = tmpdir("flip-payload");
    let (seg, tickets) = seed_segment(&dir);
    let bytes = std::fs::read(&seg).unwrap();
    let victim = dir.join("flip.seg");
    let t = tickets[1];
    for i in (t.offset..t.offset + u64::from(t.len)).step_by(3) {
        let mut damaged = bytes.clone();
        damaged[i as usize] ^= 0x40;
        std::fs::write(&victim, &damaged).unwrap();
        match verify_segment_file(&victim) {
            Err(SpillError::Corrupt { offset, .. }) => {
                assert_eq!(offset, t.offset, "corruption localizes to the record")
            }
            other => panic!(
                "payload flip at byte {} must be Corrupt, got {:?}",
                i,
                other.map(|r| r.len())
            ),
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn flipped_record_header_bytes_never_panic_or_overallocate() {
    let dir = tmpdir("flip-header");
    let (seg, tickets) = seed_segment(&dir);
    let bytes = std::fs::read(&seg).unwrap();
    let victim = dir.join("flip.seg");
    // The len and crc fields of the second record's header (the key is
    // not integrity-protected — a flipped key still names *some* valid
    // record, which adoption simply fails to match). A flipped length
    // either points past end-of-file (Truncated — and the scan must
    // validate that *before* allocating the claimed size) or reframes
    // the payload so the checksum fails (Corrupt).
    let header_at = tickets[1].offset - 16;
    for i in (header_at + 8)..(header_at + 16) {
        for bit in [0x01u8, 0x80] {
            let mut damaged = bytes.clone();
            damaged[i as usize] ^= bit;
            std::fs::write(&victim, &damaged).unwrap();
            match verify_segment_file(&victim) {
                Err(SpillError::Truncated { .. }) | Err(SpillError::Corrupt { .. }) => {}
                other => panic!(
                    "header flip at byte {} (bit {:#x}) must be Truncated or Corrupt, got {:?}",
                    i,
                    bit,
                    other.map(|r| r.len())
                ),
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn wrong_magic_is_rejected() {
    let dir = tmpdir("magic");
    let (seg, _) = seed_segment(&dir);
    let mut bytes = std::fs::read(&seg).unwrap();
    assert_eq!(&bytes[..8], &SPILL_MAGIC);
    bytes[3] ^= 0xFF;
    std::fs::write(&seg, &bytes).unwrap();
    match verify_segment_file(&seg) {
        Err(SpillError::BadMagic { segment: 0 }) => {}
        other => panic!("must be BadMagic, got {:?}", other.map(|r| r.len())),
    }

    // A foreign file wearing the suffix is the same story.
    std::fs::write(&seg, b"not a segment at all, just text\n").unwrap();
    assert!(matches!(
        verify_segment_file(&seg),
        Err(SpillError::BadMagic { .. })
    ));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn future_format_version_is_refused_not_misread() {
    let dir = tmpdir("version");
    let (seg, _) = seed_segment(&dir);
    let mut bytes = std::fs::read(&seg).unwrap();
    bytes[8..12].copy_from_slice(&999u32.to_le_bytes());
    std::fs::write(&seg, &bytes).unwrap();
    match verify_segment_file(&seg) {
        Err(SpillError::UnsupportedVersion {
            found, supported, ..
        }) => {
            assert_eq!(found, 999);
            assert_eq!(supported, SPILL_VERSION);
        }
        other => panic!("must be UnsupportedVersion, got {:?}", other.map(|r| r.len())),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn reopen_skips_damage_but_serves_what_survived() {
    let dir = tmpdir("reopen");
    let (seg, tickets) = seed_segment(&dir);
    // Corrupt the *last* record's payload: a lenient reopen keeps the
    // two records before it and warns about the rest.
    let mut bytes = std::fs::read(&seg).unwrap();
    let last = tickets[2];
    bytes[(last.offset + 2) as usize] ^= 0x10;
    std::fs::write(&seg, &bytes).unwrap();

    let mut tier = SpillTier::open(Box::new(FsSpillDir::new(&dir)), 64 << 20, 0).unwrap();
    let warnings = tier.take_warnings();
    assert_eq!(warnings.len(), 1, "{:?}", warnings);
    assert!(warnings[0].contains("checksum"), "{}", warnings[0]);
    assert_eq!(tier.adoptable_records(), 2);
    assert_eq!(tier.read_state(&tickets[0]).unwrap(), state_with(0));
    // The strict verifier, by contrast, refuses the whole file.
    assert!(matches!(
        verify_segment_file(&seg),
        Err(SpillError::Corrupt { .. })
    ));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn injected_bit_flips_through_the_public_fault_plan_are_typed() {
    let dir = tmpdir("fault-plan");
    // Armed through the unified composable plan (the CLI's
    // `--fault-plan` language); the site-local SpillFaultPlan it carries
    // is what the tier consumes.
    let unified = tango::FaultPlan::parse("seed=0,spill.flip_bit_every=2").unwrap();
    let plan = unified.spill.expect("spill site armed");
    assert_eq!(
        plan,
        SpillFaultPlan {
            flip_bit_every: 2,
            ..SpillFaultPlan::default()
        }
    );
    let faulty: Box<dyn SpillDir> =
        Box::new(FaultySpillDir::new(Box::new(FsSpillDir::new(&dir)), plan));
    let mut tier = SpillTier::open(faulty, 64 << 20, 0).unwrap();
    let t = tier.write_state(1, &state_with(1)).unwrap();
    // Every second read is flipped: over a few attempts both the clean
    // and the corrupt path must appear, and the corrupt one is typed.
    let mut corrupt = 0;
    let mut clean = 0;
    for _ in 0..6 {
        match tier.read_state(&t) {
            Ok(st) => {
                assert_eq!(st, state_with(1));
                clean += 1;
            }
            Err(SpillError::Corrupt { context, .. }) => {
                assert!(context.contains("checksum"), "{}", context);
                corrupt += 1;
            }
            Err(other) => panic!("bit flip must surface as Corrupt, got {}", other),
        }
    }
    assert!(clean > 0 && corrupt > 0, "clean={} corrupt={}", clean, corrupt);
    std::fs::remove_dir_all(&dir).ok();
}
