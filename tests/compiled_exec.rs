//! Compiled-vs-interpreted executor equivalence (DESIGN §6.9).
//!
//! The bytecode VM with its by-control-state dispatch index
//! (`exec_mode = Compiled`, the default) and the tree-walking reference
//! interpreter (`--exec=interp`) must be observationally identical:
//! same fireable sets in the same order, same verdicts, same TE/GE/RE/SA
//! counters, byte-identical single-worker telemetry streams, identical
//! profiler attribution — only transitions-per-second may differ. These
//! tests pin that equivalence across the TP0, LAPD and synthetic
//! protocol families, and at the raw `Machine::generate` level where
//! the dispatch index replaces the linear transition scan.

use estelle_runtime::{
    ExecMode, FireOutcome, InputSource, Machine, OutputSink, QueueHead, Value,
};
use protocols::{lapd, synthetic::SyntheticSpec, tp0};
use std::io::Write;
use std::sync::{Arc, Mutex};
use tango::{
    AnalysisOptions, AnalysisReport, ChoicePolicy, JsonlSink, SearchStats, StaticSource,
    Telemetry, Trace, TraceAnalyzer, Verdict,
};

/// The counters the paper's tables report; `wall_time` is excluded since
/// the two executors differ precisely in how long the same work takes.
fn counters(s: &SearchStats) -> (u64, u64, u64, u64) {
    (s.transitions_executed, s.generates, s.restores, s.saves)
}

fn with_exec(exec: ExecMode) -> AnalysisOptions {
    AnalysisOptions {
        exec_mode: exec,
        ..AnalysisOptions::default()
    }
}

fn invalid_tp0_trace() -> Trace {
    tp0::invalidate_last_data(&tp0::complete_valid_trace(3, 3, 1))
        .expect("complete trace has a data output to corrupt")
}

/// A `Write` target the test can still read after the sink is boxed away
/// inside the telemetry handle.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn contents(&self) -> String {
        String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn traced_handle() -> (Telemetry, SharedBuf) {
    let buf = SharedBuf::default();
    let tel = Telemetry::off().with_sink(Box::new(JsonlSink::new(buf.clone())));
    (tel, buf)
}

fn count_kind(stream: &str, kind: &str) -> u64 {
    let needle = format!("\"ev\":\"{}\"", kind);
    stream.lines().filter(|l| l.contains(&needle)).count() as u64
}

fn assert_counts_match(report: &AnalysisReport, stream: &str) {
    assert_eq!(count_kind(stream, "fire"), report.stats.transitions_executed);
    assert_eq!(count_kind(stream, "generate"), report.stats.generates);
    assert_eq!(count_kind(stream, "restore"), report.stats.restores);
    assert_eq!(count_kind(stream, "save"), report.stats.saves);
}

/// The differential matrix: every protocol family the benches use, both
/// verdict polarities where a corrupter exists.
fn matrix() -> Vec<(&'static str, TraceAnalyzer, Trace, Option<Verdict>)> {
    let spec = SyntheticSpec::new(6, 60);
    let synth = spec.analyzer();
    let synth_trace = synth
        .generate_trace(&spec.workload(20), ChoicePolicy::First, 10_000)
        .expect("synthetic self-trace");
    vec![
        (
            "tp0-valid",
            tp0::analyzer(),
            tp0::complete_valid_trace(3, 3, 1),
            Some(Verdict::Valid),
        ),
        (
            "tp0-invalid",
            tp0::analyzer(),
            invalid_tp0_trace(),
            Some(Verdict::Invalid),
        ),
        (
            "lapd-valid",
            lapd::analyzer(),
            lapd::valid_trace(2, 2, 1),
            Some(Verdict::Valid),
        ),
        (
            "lapd-expanded",
            lapd::analyzer_expanded(),
            lapd::valid_trace(2, 2, 1),
            Some(Verdict::Valid),
        ),
        ("synthetic", synth, synth_trace, Some(Verdict::Valid)),
    ]
}

#[test]
fn exec_modes_agree_across_the_protocol_matrix() {
    for (name, analyzer, trace, want) in matrix() {
        let compiled = analyzer.analyze(&trace, &with_exec(ExecMode::Compiled)).unwrap();
        let interp = analyzer.analyze(&trace, &with_exec(ExecMode::Interp)).unwrap();
        if let Some(want) = want {
            assert_eq!(compiled.verdict, want, "{}", name);
        }
        assert_eq!(compiled.verdict, interp.verdict, "{}", name);
        assert_eq!(
            counters(&compiled.stats),
            counters(&interp.stats),
            "{}: TE/GE/RE/SA must be identical across executors",
            name
        );
        assert_eq!(compiled.witness, interp.witness, "{}", name);
    }
}

#[test]
fn dfs_streams_are_byte_identical_across_exec_modes() {
    let analyzer = tp0::analyzer();
    let trace = invalid_tp0_trace();
    let mut streams = Vec::new();
    for exec in [ExecMode::Compiled, ExecMode::Interp] {
        let (mut tel, buf) = traced_handle();
        let report = analyzer
            .analyze_with(&trace, &with_exec(exec), &mut tel)
            .unwrap();
        tel.finalize(&report.stats);
        let stream = buf.contents();
        assert_eq!(report.verdict, Verdict::Invalid, "{}", exec.name());
        assert_counts_match(&report, &stream);
        streams.push(stream);
    }
    assert_eq!(
        streams[0], streams[1],
        "the event stream must not betray which executor ran"
    );
}

#[test]
fn mdfs_streams_are_byte_identical_across_exec_modes() {
    let analyzer = tp0::analyzer();
    let trace = invalid_tp0_trace();
    let mut streams = Vec::new();
    for exec in [ExecMode::Compiled, ExecMode::Interp] {
        let (mut tel, buf) = traced_handle();
        let mut source = StaticSource::new(trace.clone());
        let report = analyzer
            .analyze_online_with(&mut source, &with_exec(exec), &mut |_| true, &mut tel)
            .unwrap();
        tel.finalize(&report.stats);
        let stream = buf.contents();
        assert_eq!(report.verdict, Verdict::Invalid, "{}", exec.name());
        assert_counts_match(&report, &stream);
        streams.push(stream);
    }
    assert_eq!(streams[0], streams[1]);
}

/// Satellite: the scratch-buffer `generate` path must still record one
/// latency sample per *Generate* in both executors — the histogram that
/// pins the per-call `Generated::default()` churn fix.
#[test]
fn generate_latency_histogram_counts_ge_in_both_modes() {
    let analyzer = tp0::analyzer();
    let trace = invalid_tp0_trace();
    let mut ge = Vec::new();
    for exec in [ExecMode::Compiled, ExecMode::Interp] {
        let mut tel = Telemetry::off().with_metrics();
        let report = analyzer
            .analyze_with(&trace, &with_exec(exec), &mut tel)
            .unwrap();
        tel.finalize(&report.stats);
        let m = tel.metrics().expect("metrics were requested");
        let h = m
            .histogram("search.generate_latency_us")
            .expect("generate latency is always observed with metrics on");
        assert_eq!(
            h.count(),
            report.stats.generates,
            "{}: one latency sample per GE",
            exec.name()
        );
        assert!(h.sum() >= 0.0);
        ge.push(report.stats.generates);
    }
    assert_eq!(ge[0], ge[1]);
}

/// Satellite: the profiler must attribute fire/fail counts identically
/// under the VM — only the timing column may differ.
#[test]
fn profiler_attribution_is_identical_across_exec_modes() {
    let analyzer = tp0::analyzer();
    let trace = invalid_tp0_trace();
    let n = analyzer.machine.module.transition_count();
    let mut attributions = Vec::new();
    for exec in [ExecMode::Compiled, ExecMode::Interp] {
        let mut tel = Telemetry::off().with_profile(n);
        let report = analyzer
            .analyze_with(&trace, &with_exec(exec), &mut tel)
            .unwrap();
        let p = tel.profile().expect("profile was requested");
        let counts: Vec<(u64, u64)> = p.entries().iter().map(|e| (e.fires, e.fails)).collect();
        assert_eq!(
            counts.iter().map(|(f, x)| f + x).sum::<u64>(),
            report.stats.transitions_executed,
            "{}: per-transition attempts must sum to TE",
            exec.name()
        );
        attributions.push(counts);
    }
    assert_eq!(
        attributions[0], attributions[1],
        "fire/fail attribution must not depend on the executor"
    );
}

// ---------------------------------------------------------------------
// Raw Machine-level equivalence: the dispatch index vs the linear scan.
// ---------------------------------------------------------------------

/// A single-queue scripted environment (same shape as the runtime's own
/// language-feature tests).
struct Env {
    msgs: Vec<(usize, Vec<Value>)>,
    pos: usize,
    outputs: Vec<(usize, usize, Vec<Value>)>,
}

impl Env {
    fn new(msgs: Vec<(usize, Vec<Value>)>) -> Self {
        Env {
            msgs,
            pos: 0,
            outputs: Vec::new(),
        }
    }
}

impl InputSource for Env {
    fn head(&self, _ip: usize) -> QueueHead {
        match self.msgs.get(self.pos) {
            Some((interaction, params)) => QueueHead::Message {
                interaction: *interaction,
                params: params.clone(),
            },
            None => QueueHead::Empty,
        }
    }
    fn consume(&mut self, _ip: usize) {
        self.pos += 1;
    }
}

impl OutputSink for Env {
    fn emit(&mut self, ip: usize, interaction: usize, params: Vec<Value>) -> bool {
        self.outputs.push((ip, interaction, params));
        true
    }
}

/// A spec that exercises every dispatch-index bucket shape: a state with
/// several `when` transitions, a guard with a side-effecting function
/// call (the VM's scratch-clone branch), a spontaneous transition, and a
/// state with no outgoing transitions at all.
const BUCKETS: &str = r#"
    specification buckets;
    channel C(env, m);
        by env: go(n : integer); kick;
        by m: out1(v : integer);
    end;
    module M process; ip P : C(m); end;
    body MB for M;
        var acc : integer;
        function bump(v : integer) : integer;
        begin acc := acc + 1; bump := v + 1 end;
        state A, B, Dead;
        initialize to A begin acc := 0 end;
        trans
        from A to B when P.go provided bump(n) > 3 name HighGo:
            begin output P.out1(n) end;
        from A to B when P.go provided n <= 2 name LowGo:
            begin acc := acc + n end;
        from A to A when P.kick name Kick: begin end;
        from B to A provided acc > 10 name Drain: begin acc := 0 end;
        from B to Dead when P.go name Die: begin end;
    end;
    end.
"#;

fn key(f: &estelle_runtime::Fireable) -> (usize, Vec<Value>, bool) {
    (f.trans, f.params.clone(), f.fabricated)
}

#[test]
fn dispatch_index_matches_linear_scan_step_by_step() {
    let compiled = Machine::from_source(BUCKETS).unwrap();
    let interp = compiled.exec_view(ExecMode::Interp);
    let script = vec![
        (0, vec![Value::Int(9)]), // HighGo and Die candidates
        (0, vec![Value::Int(1)]), // LowGo (guard splits the bucket)
        (1, vec![]),              // Kick self-loop
        (0, vec![Value::Int(4)]),
    ];

    let mut st_c = compiled.initial_state().unwrap();
    let mut st_i = interp.initial_state().unwrap();
    assert_eq!(st_c, st_i, "initialize must agree before any step");

    let mut env_c = Env::new(script.clone());
    let mut env_i = Env::new(script);
    for step in 0..8 {
        let gc = compiled.generate(&mut st_c, &env_c).unwrap();
        let gi = interp.generate(&mut st_i, &env_i).unwrap();
        assert_eq!(
            gc.fireable.iter().map(key).collect::<Vec<_>>(),
            gi.fireable.iter().map(key).collect::<Vec<_>>(),
            "step {}: fireable sets must match element-for-element",
            step
        );
        assert_eq!(gc.incomplete, gi.incomplete, "step {}", step);
        let Some(first) = gc.fireable.first() else {
            break;
        };
        let oc = compiled.fire(&mut st_c, first, &mut env_c).unwrap();
        let oi = interp.fire(&mut st_i, first, &mut env_i).unwrap();
        assert_eq!(oc, FireOutcome::Completed);
        assert_eq!(oc, oi, "step {}", step);
        assert_eq!(st_c, st_i, "step {}: post-fire states must agree", step);
        assert_eq!(env_c.outputs, env_i.outputs, "step {}", step);
    }
    assert!(!env_c.outputs.is_empty(), "the script must reach an output");
}

#[test]
fn dispatch_index_agrees_on_synthetic_and_lapd_machines() {
    let mut sources = vec![SyntheticSpec::new(5, 120).source()];
    sources.push(lapd::source_expanded());
    for src in sources {
        let compiled = Machine::from_source(&src).unwrap();
        let interp = compiled.exec_view(ExecMode::Interp);
        let mut st = compiled.initial_state().unwrap();
        // With no inputs queued only spontaneous transitions are
        // candidates — exactly the bucket walk the index optimises.
        let env = estelle_runtime::env::NullEnv::default();
        let gc = compiled.generate(&mut st, &env).unwrap();
        let gi = interp.generate(&mut st, &env).unwrap();
        assert_eq!(
            gc.fireable.iter().map(key).collect::<Vec<_>>(),
            gi.fireable.iter().map(key).collect::<Vec<_>>()
        );
        assert_eq!(gc.incomplete, gi.incomplete);
    }
}

// ---------------------------------------------------------------------
// Auto selection and profile-guided optimization (this PR's additions).
// ---------------------------------------------------------------------

/// `ExecMode::Auto` must be observationally identical to both fixed
/// executors on every protocol family — it only ever picks one of them.
#[test]
fn auto_mode_agrees_across_the_protocol_matrix() {
    for (name, analyzer, trace, want) in matrix() {
        let auto = analyzer.analyze(&trace, &with_exec(ExecMode::Auto)).unwrap();
        let interp = analyzer.analyze(&trace, &with_exec(ExecMode::Interp)).unwrap();
        if let Some(want) = want {
            assert_eq!(auto.verdict, want, "{}", name);
        }
        assert_eq!(auto.verdict, interp.verdict, "{}", name);
        assert_eq!(counters(&auto.stats), counters(&interp.stats), "{}", name);
        assert_eq!(auto.witness, interp.witness, "{}", name);
    }
}

/// The cost model is calibrated on the bench protocols: compact specs
/// resolve to the tree walker, the 800-transition LAPD expansion to the
/// VM, and the threshold is a pure function of the compiled spec.
#[test]
fn auto_selection_is_deterministic_and_calibrated() {
    use estelle_runtime::AUTO_COMPILED_MIN_TRANSITIONS;
    for (analyzer, want) in [
        (tp0::analyzer(), ExecMode::Interp),
        (lapd::analyzer(), ExecMode::Interp),
        (lapd::analyzer_expanded(), ExecMode::Compiled),
    ] {
        let m = analyzer.machine.exec_view(ExecMode::Auto);
        assert_eq!(m.resolved_exec(), want);
        assert_eq!(
            m.resolved_exec() == ExecMode::Compiled,
            m.module.transition_count() >= AUTO_COMPILED_MIN_TRANSITIONS,
            "selection must follow the documented threshold"
        );
        // Fixed modes pass through untouched.
        assert_eq!(
            analyzer.machine.exec_view(ExecMode::Interp).resolved_exec(),
            ExecMode::Interp
        );
        assert_eq!(
            analyzer.machine.exec_view(ExecMode::Compiled).resolved_exec(),
            ExecMode::Compiled
        );
    }
}

/// A profile-guided program (dispatch buckets reordered by observed fire
/// rate, conj guards re-sorted) must stay bit-identical to the reference
/// interpreter: same verdicts, counters, witnesses — and a byte-identical
/// telemetry stream, which pins the declaration-order restore after
/// reordered-bucket generates.
#[test]
fn pgo_streams_are_byte_identical_to_interp() {
    for (name, analyzer, trace, _) in matrix() {
        // Profile one compiled run, feed it back into the compiler.
        let mut pgo = TraceAnalyzer::from_machine(
            analyzer.machine.exec_view(ExecMode::Compiled),
        );
        let n = pgo.machine.module.transition_count();
        let mut tel = Telemetry::off().with_profile(n);
        pgo.analyze_with(&trace, &with_exec(ExecMode::Compiled), &mut tel)
            .unwrap();
        let profile = pgo.pgo_snapshot(tel.profile().expect("profile on"));
        pgo.apply_pgo(&profile).expect("own profile validates");

        let mut streams = Vec::new();
        for (a, exec) in [(&analyzer, ExecMode::Interp), (&pgo, ExecMode::Compiled)] {
            let (mut tel, buf) = traced_handle();
            let report = a.analyze_with(&trace, &with_exec(exec), &mut tel).unwrap();
            tel.finalize(&report.stats);
            let stream = buf.contents();
            assert_counts_match(&report, &stream);
            streams.push(stream);
        }
        assert_eq!(
            streams[0], streams[1],
            "{}: the event stream must not betray that PGO reordered the program",
            name
        );
    }
}

/// PGO profiles are validated like checkpoints: a profile recorded
/// against a different spec is refused with a typed error and the
/// program is left untouched.
#[test]
fn foreign_pgo_profiles_are_refused() {
    use tango::PgoError;
    let tp0a = tp0::analyzer();
    let n = tp0a.machine.module.transition_count();
    let mut tel = Telemetry::off().with_profile(n);
    tp0a.analyze_with(
        &tp0::complete_valid_trace(2, 2, 1),
        &with_exec(ExecMode::Compiled),
        &mut tel,
    )
    .unwrap();
    let profile = tp0a.pgo_snapshot(tel.profile().unwrap());

    let mut lapda = TraceAnalyzer::from_machine(
        lapd::analyzer().machine.exec_view(ExecMode::Compiled),
    );
    let err = lapda.apply_pgo(&profile).unwrap_err();
    assert!(
        matches!(err, PgoError::SpecMismatch { .. }),
        "wrong-spec profile must be a typed spec mismatch, got {}",
        err
    );

    // Same spec name, truncated rows → transition count mismatch.
    let mut truncated = profile.clone();
    truncated.rows.pop();
    let mut tp0b =
        TraceAnalyzer::from_machine(tp0a.machine.exec_view(ExecMode::Compiled));
    let err = tp0b.apply_pgo(&truncated).unwrap_err();
    assert!(matches!(err, PgoError::TransitionCountMismatch { .. }), "{}", err);

    // Renamed transition → name mismatch at its index.
    let mut renamed = profile.clone();
    renamed.rows[0].name = "imposter".to_string();
    let err = tp0b.apply_pgo(&renamed).unwrap_err();
    assert!(matches!(err, PgoError::TransitionNameMismatch { index: 0, .. }), "{}", err);

    // The untouched analyzer still analyzes normally after refusals.
    let r = tp0b
        .analyze(&tp0::complete_valid_trace(2, 2, 1), &with_exec(ExecMode::Compiled))
        .unwrap();
    assert_eq!(r.verdict, Verdict::Valid);
}
