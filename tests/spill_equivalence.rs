//! RAM/disk equivalence: the spill tier changes where bytes live, never
//! what the search decides.
//!
//! Every test runs the same analysis twice — once all in RAM, once under
//! a snapshot budget tight enough to force constant eviction to disk —
//! and requires the verdict and the paper's TE/GE/RE/SA counters to be
//! bit-identical. Covered: static DFS and the on-line MDFS, both
//! snapshot modes (COW interning and deep clones), and a stop/resume
//! round whose checkpoint travels through a file while the spill
//! directory persists across the "processes".

use protocols::tp0;
use std::path::PathBuf;
use tango::{AnalysisOptions, Checkpoint, SearchStats, SpillMode, StaticSource, Trace, Verdict};

fn counters(s: &SearchStats) -> (u64, u64, u64, u64) {
    (s.transitions_executed, s.generates, s.restores, s.saves)
}

fn invalid_tp0_trace() -> Trace {
    tp0::invalidate_last_data(&tp0::complete_valid_trace(4, 4, 1))
        .expect("complete trace has a data output to corrupt")
}

fn spill_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "tango-spill-equiv-{}-{}",
        tag,
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// `opts` with a budget small enough that essentially every snapshot
/// must leave RAM, spilling into `dir`.
fn spilled(opts: &AnalysisOptions, dir: PathBuf) -> AnalysisOptions {
    let mut o = opts.clone();
    o.limits.max_state_bytes = Some(256);
    o.spill.mode = SpillMode::On;
    o.spill.dir = Some(dir);
    o
}

#[test]
fn dfs_verdict_and_counters_identical_ram_vs_spill() {
    let a = tp0::analyzer();
    let bad = invalid_tp0_trace();
    let good = tp0::complete_valid_trace(3, 3, 1);

    for cow in [true, false] {
        let opts = AnalysisOptions {
            cow_snapshots: cow,
            ..Default::default()
        };

        for (tag, trace, verdict) in [
            ("invalid", &bad, Verdict::Invalid),
            ("valid", &good, Verdict::Valid),
        ] {
            let baseline = a.analyze(trace, &opts).unwrap();
            assert_eq!(baseline.verdict, verdict);

            let dir = spill_dir(&format!("dfs-{}-cow{}", tag, cow));
            let tiered = a.analyze(trace, &spilled(&opts, dir.clone())).unwrap();
            assert_eq!(tiered.verdict, baseline.verdict, "cow={}", cow);
            assert_eq!(
                counters(&tiered.stats),
                counters(&baseline.stats),
                "spill must not change TE/GE/RE/SA (cow={}, {})",
                cow,
                tag
            );
            assert!(
                tiered.stats.spill_evictions > 0,
                "a 256-byte budget must actually evict (cow={})",
                cow
            );
            assert!(tiered.spill_faults.is_empty(), "{:?}", tiered.spill_faults);
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

#[test]
fn dfs_best_effort_localization_identical_ram_vs_spill() {
    let a = tp0::analyzer();
    let bad = invalid_tp0_trace();
    let opts = AnalysisOptions::default();
    let baseline = a.analyze(&bad, &opts).unwrap();

    let dir = spill_dir("best-effort");
    let tiered = a.analyze(&bad, &spilled(&opts, dir.clone())).unwrap();
    let (b, t) = (
        baseline.best_effort.expect("invalid verdict localizes"),
        tiered.best_effort.expect("invalid verdict localizes"),
    );
    assert_eq!(t.events_explained, b.events_explained);
    assert_eq!(t.path, b.path, "the best-effort path itself is unchanged");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mdfs_verdict_and_counters_identical_ram_vs_spill() {
    let a = tp0::analyzer();
    let bad = invalid_tp0_trace();
    let good = tp0::complete_valid_trace(3, 3, 1);

    for cow in [true, false] {
        let opts = AnalysisOptions {
            cow_snapshots: cow,
            ..Default::default()
        };

        for (tag, trace, verdict) in [
            ("invalid", &bad, Verdict::Invalid),
            ("valid", &good, Verdict::Valid),
        ] {
            let mut src = StaticSource::new(trace.clone());
            let baseline = a.analyze_online(&mut src, &opts, &mut |_| true).unwrap();
            assert_eq!(baseline.verdict, verdict);

            let dir = spill_dir(&format!("mdfs-{}-cow{}", tag, cow));
            let mut src = StaticSource::new(trace.clone());
            let tiered = a
                .analyze_online(&mut src, &spilled(&opts, dir.clone()), &mut |_| true)
                .unwrap();
            assert_eq!(tiered.verdict, baseline.verdict, "cow={}", cow);
            assert_eq!(
                counters(&tiered.stats),
                counters(&baseline.stats),
                "spill must not change MDFS TE/GE/RE/SA (cow={}, {})",
                cow,
                tag
            );
            assert!(
                tiered.stats.spill_evictions > 0,
                "a 256-byte budget must actually evict (cow={})",
                cow
            );
            assert!(tiered.spill_faults.is_empty(), "{:?}", tiered.spill_faults);
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

#[test]
fn stop_resume_through_disk_checkpoint_while_spilled_matches_baseline() {
    let a = tp0::analyzer();
    let bad = invalid_tp0_trace();
    let opts = AnalysisOptions::default();
    let baseline = a.analyze(&bad, &opts).unwrap();
    assert_eq!(baseline.verdict, Verdict::Invalid);

    let dir = spill_dir("resume");
    let tmp = std::env::temp_dir().join(format!(
        "tango-spill-equiv-resume-ckpt-{}.bin",
        std::process::id()
    ));

    // Interrupt the spilled run partway with an absolute transition cap,
    // round-trip the checkpoint through a file (the cross-process path),
    // and finish under a fresh options value pointing at the *same*
    // spill directory — the reopened tier adopts the earlier segments.
    let step = (baseline.stats.transitions_executed / 3).max(1);
    let mut cap = step;
    let mut limited = spilled(&opts, dir.clone());
    limited.limits.max_transitions = cap;
    let mut report = a.analyze(&bad, &limited).unwrap();
    let mut rounds = 0;
    while let Verdict::Inconclusive(_) = report.verdict {
        rounds += 1;
        assert!(rounds < 100, "stop/resume chain must converge");
        let cp = report
            .checkpoint
            .take()
            .expect("limit-stopped spilled run must stay resumable");
        cp.write_to(&tmp).expect("checkpoint writes while spilled");
        let cp = Checkpoint::read_from(&tmp).expect("checkpoint reads back");
        cap += step;
        let mut next = spilled(&opts, dir.clone());
        next.limits.max_transitions = cap;
        report = a.analyze_resume(cp, &next).unwrap();
    }
    assert!(rounds >= 1, "the cap must actually interrupt the run");
    assert_eq!(report.verdict, Verdict::Invalid);
    assert_eq!(counters(&report.stats), counters(&baseline.stats));
    assert!(
        report.stats.spill_evictions > 0,
        "the resumed rounds keep spilling"
    );
    assert!(report.spill_faults.is_empty(), "{:?}", report.spill_faults);
    std::fs::remove_file(&tmp).ok();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn memory_limit_never_fires_with_the_tier_enabled() {
    let a = tp0::analyzer();
    let bad = invalid_tp0_trace();
    let opts = AnalysisOptions::default();
    let baseline = a.analyze(&bad, &opts).unwrap();

    // The budget that used to kill the run (`max_state_bytes = 1` is the
    // fault_injection pin for Inconclusive(MemoryLimit)) now completes
    // with identical counters: the tier turns the limit into tiering.
    let dir = spill_dir("no-memlimit");
    let mut o = spilled(&opts, dir.clone());
    o.limits.max_state_bytes = Some(1);
    let report = a.analyze(&bad, &o).unwrap();
    assert_eq!(report.verdict, Verdict::Invalid);
    assert_eq!(counters(&report.stats), counters(&baseline.stats));
    std::fs::remove_dir_all(&dir).ok();
}
