//! Tests for the §2.4 runtime options: initial-state search, IP
//! disabling, and the §5 partial-trace machinery.

use tango::{AnalysisOptions, OrderOptions, Trace, Verdict};
use tango_repro::protocols::{lapd, tp0};

/// §2.4.1: a trace collected after the IUT has been running — no
/// handshake visible — fails from the default initial state but succeeds
/// when the analyzer retries from other FSM states.
#[test]
fn initial_state_search_recovers_mid_connection_traces() {
    let analyzer = tp0::analyzer();
    // Data exchange with no connection establishment in sight: only
    // legal if the machine already was in `data`.
    let trace = "\
in U.tdatreq(5)
out L.dt_req(5)
in L.dt_ind(9)
out U.tdatind(9)
";
    let plain = AnalysisOptions::with_order(OrderOptions::full());
    let r = analyzer.analyze_text(trace, &plain).unwrap();
    assert_eq!(r.verdict, Verdict::Invalid);

    let mut searching = plain.clone();
    searching.initial_state_search = true;
    let r = analyzer.analyze_text(trace, &searching).unwrap();
    assert_eq!(r.verdict, Verdict::Valid);
    assert_eq!(r.initial_state_used.as_deref(), Some("data"));
}

/// §2.4.1's caveat: variables keep their initialize values, so a trace
/// that depends on different variable contents still fails — "this might
/// cause an 'invalid trace' result on a valid trace".
#[test]
fn initial_state_search_cannot_recover_variable_state() {
    let analyzer = tp0::analyzer();
    // An implementation that already had data buffered could emit dt_req
    // without any visible tdatreq. With empty buffers (as initialize
    // leaves them) this is inexplicable from any FSM state.
    let trace = "out L.dt_req(5)\n";
    let mut options = AnalysisOptions::with_order(OrderOptions::full());
    options.initial_state_search = true;
    let r = analyzer.analyze_text(trace, &options).unwrap();
    assert_eq!(r.verdict, Verdict::Invalid);
}

/// §2.4.3: disabling an IP skips checking of its outputs entirely.
#[test]
fn disabled_ip_outputs_are_not_checked() {
    let analyzer = tp0::analyzer();
    // The observer at U records nothing the module sent there: without
    // the tconconf the trace is invalid...
    let trace = "\
in U.tconreq
out L.cr_req
in L.cc_ind
in U.tdatreq(3)
out L.dt_req(3)
";
    let plain = AnalysisOptions::with_order(OrderOptions::full());
    let r = analyzer.analyze_text(trace, &plain).unwrap();
    assert_eq!(r.verdict, Verdict::Invalid);

    // ... but with U's outputs disabled, the trace checks out.
    let disabled = plain.clone().disable_ip("U");
    let r = analyzer.analyze_text(trace, &disabled).unwrap();
    assert_eq!(r.verdict, Verdict::Valid);
}

/// Disabling still checks everything else: a wrong output at the
/// *enabled* IP keeps the trace invalid.
#[test]
fn disabled_ip_does_not_mask_other_violations() {
    let analyzer = tp0::analyzer();
    let trace = "\
in U.tconreq
out L.cr_req
in L.cc_ind
in U.tdatreq(3)
out L.dt_req(99)
";
    let options = AnalysisOptions::with_order(OrderOptions::full()).disable_ip("U");
    let r = analyzer.analyze_text(trace, &options).unwrap();
    assert_eq!(r.verdict, Verdict::Invalid);
}

/// §5.2: with the upper interface unobserved, lower-interface traces
/// verify, with fabricated undefined inputs standing in for U's events.
#[test]
fn unobserved_ip_explains_lower_interface_trace() {
    let analyzer = lapd::analyzer();
    let full = lapd::valid_trace(3, 0, 5);
    let lower = Trace::new(
        full.events
            .iter()
            .filter(|e| e.ip.eq_ignore_ascii_case("L"))
            .cloned()
            .collect(),
    );
    let options = AnalysisOptions::with_order(OrderOptions::none()).unobserved_ip("U");
    let r = analyzer.analyze(&lower, &options).unwrap();
    assert_eq!(r.verdict, Verdict::Valid);
    // The witness must include fabricated U consumption (Tc1 reads
    // dl_est_req that nobody observed).
    assert!(r.witness.unwrap().iter().any(|t| t == "Tc1"));
}

/// §5.1: undefined parameters compare equal to anything — the fabricated
/// dl_data_req carries an undefined byte, yet the concrete I-frame data
/// on the line verifies.
#[test]
fn undefined_parameters_match_concrete_trace_values() {
    let analyzer = lapd::analyzer();
    let trace = "\
in L.sabme
out L.ua
in L.iframe(0, 0, 42)
out L.rr(1)
";
    let options = AnalysisOptions::with_order(OrderOptions::none()).unobserved_ip("U");
    // dl_est_ind and dl_data_ind go to the unobserved U: unchecked.
    let r = analyzer.analyze_text(trace, &options).unwrap();
    assert_eq!(r.verdict, Verdict::Valid);
}

/// The barren-steps bound keeps partial-trace refutation finite (§5.4's
/// infinite-depth hazard) without breaking valid analyses.
#[test]
fn barren_bound_terminates_partial_refutation() {
    let analyzer = lapd::analyzer();
    // An RR acknowledging frame 5 when nothing was ever sent: the line
    // protocol can never produce it... as an *output*. (Inputs are free.)
    let trace = "\
in L.sabme
out L.ua
out L.rr(5)
";
    let mut options = AnalysisOptions::with_order(OrderOptions::none()).unobserved_ip("U");
    options.limits.max_barren_steps = 4;
    options.limits.max_transitions = 5_000_000;
    let r = analyzer.analyze_text(trace, &options).unwrap();
    // rr(5) needs vr=5, which needs five in-sequence I-frames from the
    // line — none are in the trace, and the line is observed.
    assert_eq!(r.verdict, Verdict::Invalid);
    assert!(r.stats.barren_prunes > 0);
}

/// Combining §2.4 options: order checking plus disable_ip.
#[test]
fn order_checking_composes_with_disable() {
    let analyzer = tp0::analyzer();
    let trace = tp0::complete_valid_trace(3, 2, 8);
    // Drop all U-side outputs from the trace, keep its inputs.
    let partial = Trace::new(
        trace
            .events
            .iter()
            .filter(|e| {
                !(e.ip.eq_ignore_ascii_case("U") && e.dir == tango::Dir::Out)
            })
            .cloned()
            .collect(),
    );
    let options = AnalysisOptions::with_order(OrderOptions::full()).disable_ip("U");
    let r = analyzer.analyze(&partial, &options).unwrap();
    assert_eq!(r.verdict, Verdict::Valid);
}
