//! Durable stop/resume: library-level recovery tests.
//!
//! PR 1 established that an in-memory checkpoint resumes to the exact
//! totals of an uninterrupted run. These tests push the same equivalence
//! through the on-disk codec: stop, serialize, *forget everything*,
//! deserialize in what may as well be a different process, resume — and
//! the verdict and TE/GE/RE/SA totals must still match, including across
//! `--cow=off`-save/`--cow=on`-resume mode changes and over multiple
//! rounds of accumulated CPU time. (The actual SIGKILL harness lives in
//! `crates/tango-cli/tests/crash_recovery.rs`, next to the binary it
//! kills.)

use protocols::tp0;
use std::path::PathBuf;
use tango::{AnalysisOptions, Checkpoint, SearchStats, Trace, Verdict};

fn counters(s: &SearchStats) -> (u64, u64, u64, u64) {
    (s.transitions_executed, s.generates, s.restores, s.saves)
}

fn with_cow(cow: bool) -> AnalysisOptions {
    AnalysisOptions {
        cow_snapshots: cow,
        ..AnalysisOptions::default()
    }
}

fn invalid_tp0_trace() -> Trace {
    tp0::invalidate_last_data(&tp0::complete_valid_trace(3, 3, 1))
        .expect("complete trace has a data output to corrupt")
}

fn temp_file(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "tango-crash-recovery-{}-{}",
        tag,
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join("checkpoint.bin")
}

/// Stop a third of the way in, write the checkpoint to disk, read it
/// back, resume with raised limits: identical verdict and totals.
#[test]
fn resume_from_disk_with_raised_limits_matches_uninterrupted_run() {
    let a = tp0::analyzer();
    let bad = invalid_tp0_trace();
    let opts = AnalysisOptions::default();
    let baseline = a.analyze(&bad, &opts).unwrap();
    assert_eq!(baseline.verdict, Verdict::Invalid);

    let mut limited = opts.clone();
    limited.limits.max_transitions = (baseline.stats.transitions_executed / 3).max(1);
    let stopped = a.analyze(&bad, &limited).unwrap();
    let cp = stopped.checkpoint.expect("limit stop must be resumable");

    let path = temp_file("raised-limits");
    cp.write_to(&path).expect("checkpoint writes");
    drop(cp); // everything the resume uses comes from the file

    let cp = Checkpoint::read_from(&path).expect("checkpoint reads");
    let resumed = a.analyze_resume(cp, &opts).unwrap();
    assert_eq!(resumed.verdict, Verdict::Invalid);
    assert_eq!(counters(&resumed.stats), counters(&baseline.stats));
}

/// The checkpoint carries each frame's intern key and charged bytes, so
/// a file saved under `--cow=off` resumes correctly under `--cow=on` and
/// vice versa — the search totals are mode-independent.
#[test]
fn cross_mode_save_and_resume_through_disk() {
    let a = tp0::analyzer();
    let bad = invalid_tp0_trace();
    let baseline = a.analyze(&bad, &with_cow(true)).unwrap();
    assert_eq!(baseline.verdict, Verdict::Invalid);

    for (save_cow, resume_cow) in [(false, true), (true, false)] {
        let mut limited = with_cow(save_cow);
        limited.limits.max_transitions = (baseline.stats.transitions_executed / 3).max(1);
        let stopped = a.analyze(&bad, &limited).unwrap();
        let cp = stopped.checkpoint.expect("limit stop must be resumable");

        let path = temp_file(if save_cow { "cow-to-deep" } else { "deep-to-cow" });
        cp.write_to(&path).expect("checkpoint writes");
        let cp = Checkpoint::read_from(&path).expect("checkpoint reads");

        let resumed = a.analyze_resume(cp, &with_cow(resume_cow)).unwrap();
        assert_eq!(
            resumed.verdict,
            Verdict::Invalid,
            "save cow={} resume cow={}",
            save_cow,
            resume_cow
        );
        assert_eq!(
            counters(&resumed.stats),
            counters(&baseline.stats),
            "save cow={} resume cow={}",
            save_cow,
            resume_cow
        );
    }
}

/// A checkpoint carries search structure, not executor artifacts: a file
/// saved while running the tree-walking interpreter (`--exec=interp`)
/// resumes under the bytecode VM (and vice versa) with the verdict and
/// TE/GE/RE/SA totals of an uninterrupted run in either mode.
#[test]
fn cross_exec_mode_save_and_resume_through_disk() {
    use estelle_runtime::ExecMode;
    let with_exec = |exec| AnalysisOptions {
        exec_mode: exec,
        ..AnalysisOptions::default()
    };
    let a = tp0::analyzer();
    let bad = invalid_tp0_trace();
    let baseline = a.analyze(&bad, &with_exec(ExecMode::Compiled)).unwrap();
    assert_eq!(baseline.verdict, Verdict::Invalid);

    for (save_exec, resume_exec) in [
        (ExecMode::Interp, ExecMode::Compiled),
        (ExecMode::Compiled, ExecMode::Interp),
    ] {
        let mut limited = with_exec(save_exec);
        limited.limits.max_transitions = (baseline.stats.transitions_executed / 3).max(1);
        let stopped = a.analyze(&bad, &limited).unwrap();
        let cp = stopped.checkpoint.expect("limit stop must be resumable");

        let path = temp_file(if save_exec == ExecMode::Interp {
            "interp-to-compiled"
        } else {
            "compiled-to-interp"
        });
        cp.write_to(&path).expect("checkpoint writes");
        let cp = Checkpoint::read_from(&path).expect("checkpoint reads");

        let resumed = a.analyze_resume(cp, &with_exec(resume_exec)).unwrap();
        assert_eq!(
            resumed.verdict,
            Verdict::Invalid,
            "save exec={} resume exec={}",
            save_exec.name(),
            resume_exec.name()
        );
        assert_eq!(
            counters(&resumed.stats),
            counters(&baseline.stats),
            "save exec={} resume exec={}",
            save_exec.name(),
            resume_exec.name()
        );
    }
}

/// `SearchStats::wall_time` must accumulate across stop/resume rounds —
/// each round adds its own elapsed time to the total carried by the
/// checkpoint (in memory and through the file's nanosecond encoding)
/// instead of restarting the clock.
#[test]
fn wall_time_accumulates_across_disk_resume_rounds() {
    let a = tp0::analyzer();
    let bad = invalid_tp0_trace();
    let opts = AnalysisOptions::default();
    let baseline = a.analyze(&bad, &opts).unwrap();

    let step = (baseline.stats.transitions_executed / 4).max(1);
    let mut cap = step;
    let mut limited = opts.clone();
    limited.limits.max_transitions = cap;
    let mut report = a.analyze(&bad, &limited).unwrap();
    let path = temp_file("cpu-time");
    let mut rounds = 0;
    let mut last_cpu = report.stats.wall_time;
    while let Verdict::Inconclusive(_) = report.verdict {
        rounds += 1;
        assert!(rounds < 100, "stop/resume chain must converge");
        let cp = report.checkpoint.take().expect("resumable");

        // Round-trip through disk: the file stores wall_time at
        // nanosecond resolution, so the carried total survives exactly.
        cp.write_to(&path).expect("checkpoint writes");
        let cp = Checkpoint::read_from(&path).expect("checkpoint reads");
        assert_eq!(cp.stats().wall_time, report.stats.wall_time);

        cap += step;
        let mut next = opts.clone();
        next.limits.max_transitions = cap;
        report = a.analyze_resume(cp, &next).unwrap();
        assert!(
            report.stats.wall_time >= last_cpu,
            "wall_time went backwards across a resume: {:?} -> {:?}",
            last_cpu,
            report.stats.wall_time
        );
        last_cpu = report.stats.wall_time;
    }
    assert!(rounds >= 2, "the cap steps must actually interrupt the run");
    assert_eq!(report.verdict, Verdict::Invalid);
    assert_eq!(counters(&report.stats), counters(&baseline.stats));
}

/// Saving the same stop twice and resuming each copy independently is
/// safe: reading a checkpoint does not consume or mutate the file.
#[test]
fn checkpoint_file_is_reusable() {
    let a = tp0::analyzer();
    let bad = invalid_tp0_trace();
    let opts = AnalysisOptions::default();
    let baseline = a.analyze(&bad, &opts).unwrap();

    let mut limited = opts.clone();
    limited.limits.max_transitions = (baseline.stats.transitions_executed / 2).max(1);
    let stopped = a.analyze(&bad, &limited).unwrap();
    let cp = stopped.checkpoint.expect("resumable");
    let path = temp_file("reusable");
    cp.write_to(&path).unwrap();

    let first = a
        .analyze_resume(Checkpoint::read_from(&path).unwrap(), &opts)
        .unwrap();
    let second = a
        .analyze_resume(Checkpoint::read_from(&path).unwrap(), &opts)
        .unwrap();
    assert_eq!(first.verdict, second.verdict);
    assert_eq!(counters(&first.stats), counters(&second.stats));
    assert_eq!(counters(&first.stats), counters(&baseline.stats));
}

/// `--exec=auto` round-trips through save/resume: the cost model is a
/// pure function of the compiled spec (transition count), so a resumed
/// run re-selects the same executor the saving run used, on both sides
/// of the selection threshold, with uninterrupted totals.
#[test]
fn auto_exec_mode_round_trips_through_checkpoint() {
    use estelle_runtime::{ExecMode, AUTO_COMPILED_MIN_TRANSITIONS};
    use protocols::synthetic::SyntheticSpec;
    use tango::ChoicePolicy;

    let with_auto = || AnalysisOptions {
        exec_mode: ExecMode::Auto,
        ..AnalysisOptions::default()
    };

    // Small spec (below the threshold → interp) and large spec (above
    // → compiled), both stopped mid-run and resumed under Auto.
    let small = tp0::analyzer();
    let small_trace = invalid_tp0_trace();

    let big_spec = SyntheticSpec::new(4, AUTO_COMPILED_MIN_TRANSITIONS + 20);
    let big = big_spec.analyzer();
    let big_trace = big
        .generate_trace(&big_spec.workload(40), ChoicePolicy::First, 100_000)
        .expect("workload runs");

    for (tag, a, trace, want_exec) in [
        ("small", &small, &small_trace, ExecMode::Interp),
        ("big", &big, &big_trace, ExecMode::Compiled),
    ] {
        assert_eq!(
            a.machine.exec_view(ExecMode::Auto).resolved_exec(),
            want_exec,
            "{}: cost model must resolve as calibrated",
            tag
        );
        let baseline = a.analyze(trace, &with_auto()).unwrap();

        let mut limited = with_auto();
        limited.limits.max_transitions = (baseline.stats.transitions_executed / 3).max(1);
        let stopped = a.analyze(trace, &limited).unwrap();
        let cp = stopped.checkpoint.expect("limit stop must be resumable");
        let path = temp_file(&format!("auto-{}", tag));
        cp.write_to(&path).expect("checkpoint writes");

        let cp = Checkpoint::read_from(&path).expect("checkpoint reads");
        let resumed = a.analyze_resume(cp, &with_auto()).unwrap();
        assert_eq!(resumed.verdict, baseline.verdict, "{}", tag);
        assert_eq!(
            counters(&resumed.stats),
            counters(&baseline.stats),
            "{}: auto resume must re-select the same executor and finish \
             with uninterrupted totals",
            tag
        );
    }
}
