//! The standalone `.est` files under `specs/` (used by the CLI docs and
//! examples) must stay in sync with the sources embedded in the
//! `protocols` crate, and must all build.

use tango_repro::protocols::{abp, lapd, tp0};

fn read_spec(name: &str) -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/specs");
    std::fs::read_to_string(format!("{}/{}.est", path, name))
        .unwrap_or_else(|e| panic!("specs/{}.est unreadable: {}", name, e))
}

#[test]
fn spec_files_match_embedded_sources() {
    for (name, embedded) in [
        ("tp0", tp0::SOURCE),
        ("lapd", lapd::SOURCE),
        ("abp", abp::SOURCE),
    ] {
        assert_eq!(
            read_spec(name).trim(),
            embedded.trim(),
            "specs/{}.est diverged from protocols::{}::SOURCE",
            name,
            name
        );
    }
}

#[test]
fn all_spec_files_generate_analyzers() {
    for name in ["ack", "tp0", "lapd", "abp"] {
        let src = read_spec(name);
        tango::Tango::generate(&src)
            .unwrap_or_else(|e| panic!("specs/{}.est failed to build: {}", name, e));
    }
}
