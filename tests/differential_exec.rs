//! Random-spec differential testing: interp vs compiled vs auto vs PGO.
//!
//! `protocols::randspec` generates small deterministic-per-seed
//! specifications covering the shapes the bytecode compiler optimizes
//! (quick guards, conjunctive `and`-chains, superinstruction windows,
//! `mod`/`div` arithmetic, `if`/`case` control flow). For every seed,
//! every execution configuration — the tree walker, the plain VM, the
//! cost-model auto selection, and the VM with a profile-guided program —
//! must produce identical fireable sets, verdicts, witnesses and
//! TE/GE/RE/SA counters. This is the seed of the ROADMAP
//! scenario-diversity item's differential-fuzzing front (3c).

use estelle_runtime::{ExecMode, Machine};
use protocols::randspec::RandSpec;
use tango::{AnalysisOptions, ChoicePolicy, Tango, Telemetry, Trace, TraceAnalyzer, Verdict};

const SEEDS: u64 = 12;

fn with_exec(exec: ExecMode) -> AnalysisOptions {
    AnalysisOptions {
        exec_mode: exec,
        ..AnalysisOptions::default()
    }
}

/// Build the analyzer and a self-generated valid trace for a seed.
fn setup(seed: u64) -> (TraceAnalyzer, Trace) {
    let spec = RandSpec::new(seed);
    let analyzer = Tango::generate(&spec.source()).expect("randspec sources are valid");
    let trace = analyzer
        .generate_trace(&spec.workload(10), ChoicePolicy::First, 100_000)
        .expect("catch-all transitions keep the workload running");
    (analyzer, trace)
}

/// Clone of `analyzer` with a profile from one compiled run fed back
/// into the compiler (dispatch reorder + conj-guard re-sort).
fn pgo_analyzer(analyzer: &TraceAnalyzer, trace: &Trace) -> TraceAnalyzer {
    let mut opt = TraceAnalyzer::from_machine(analyzer.machine.exec_view(ExecMode::Compiled));
    let n = opt.machine.module.transition_count();
    let mut tel = Telemetry::off().with_profile(n);
    opt.analyze_with(trace, &with_exec(ExecMode::Compiled), &mut tel)
        .expect("profiling run");
    let profile = opt.pgo_snapshot(tel.profile().expect("profile on"));
    opt.apply_pgo(&profile).expect("own profile validates");
    opt
}

/// Everything observable about one analysis: verdict, TE/GE/RE/SA,
/// and the witness transition sequence.
#[derive(Debug, PartialEq)]
struct Signature {
    verdict: String,
    totals: (u64, u64, u64, u64),
    witness: Option<Vec<String>>,
}

fn signature(analyzer: &TraceAnalyzer, trace: &Trace, exec: ExecMode) -> Signature {
    let r = analyzer.analyze(trace, &with_exec(exec)).expect("analysis runs");
    Signature {
        verdict: r.verdict.to_string(),
        totals: (
            r.stats.transitions_executed,
            r.stats.generates,
            r.stats.restores,
            r.stats.saves,
        ),
        witness: r.witness,
    }
}

#[test]
fn all_exec_configurations_agree_on_random_specs() {
    for seed in 0..SEEDS {
        let (analyzer, trace) = setup(seed);
        let pgo = pgo_analyzer(&analyzer, &trace);

        let interp = signature(&analyzer, &trace, ExecMode::Interp);
        assert_eq!(interp.verdict, Verdict::Valid.to_string(), "seed {}: self-trace", seed);
        for (label, sig) in [
            ("compiled", signature(&analyzer, &trace, ExecMode::Compiled)),
            ("auto", signature(&analyzer, &trace, ExecMode::Auto)),
            ("compiled+pgo", signature(&pgo, &trace, ExecMode::Compiled)),
            ("auto+pgo", signature(&pgo, &trace, ExecMode::Auto)),
        ] {
            assert_eq!(
                sig, interp,
                "seed {}: {} must match the tree walker exactly",
                seed, label
            );
        }
    }
}

#[test]
fn corrupted_traces_keep_exec_configurations_in_agreement() {
    for seed in 0..SEEDS {
        let (analyzer, trace) = setup(seed);
        // Corrupt the last output event's parameter (if the workload
        // produced one) so the verdict flips away from Valid — the
        // interesting regime for backtracking-heavy disagreement.
        let mut bad = trace.clone();
        let Some(e) = bad
            .events
            .iter_mut()
            .rev()
            .find(|e| e.dir == tango::Dir::Out && !e.params.is_empty())
        else {
            continue;
        };
        if let Some(estelle_runtime::Value::Int(v)) = e.params.first_mut() {
            *v += 1000;
        }
        let pgo = pgo_analyzer(&analyzer, &bad);
        let interp = signature(&analyzer, &bad, ExecMode::Interp);
        assert_ne!(interp.verdict, Verdict::Valid.to_string(), "seed {}: corrupted", seed);
        for (label, sig) in [
            ("compiled", signature(&analyzer, &bad, ExecMode::Compiled)),
            ("auto", signature(&analyzer, &bad, ExecMode::Auto)),
            ("compiled+pgo", signature(&pgo, &bad, ExecMode::Compiled)),
        ] {
            assert_eq!(sig, interp, "seed {}: {} on corrupted trace", seed, label);
        }
    }
}

/// On-line signature of a trace at a given MDFS worker count.
fn online_signature(analyzer: &TraceAnalyzer, trace: &Trace, workers: usize) -> Signature {
    let options = AnalysisOptions {
        workers,
        ..Default::default()
    };
    let mut src = tango::StaticSource::new(trace.clone());
    let r = analyzer
        .analyze_online(&mut src, &options, &mut |_| true)
        .expect("analysis runs");
    Signature {
        verdict: r.verdict.to_string(),
        totals: (
            r.stats.transitions_executed,
            r.stats.generates,
            r.stats.restores,
            r.stats.saves,
        ),
        witness: r.witness,
    }
}

/// The workers=1 vs workers=4 column of the randspec matrix: the
/// work-stealing search must agree with the single-threaded one on
/// verdict, witness and every counter — on the self-generated valid
/// trace and on its corrupted variant.
#[test]
fn multi_worker_mdfs_agrees_with_single_worker_on_random_specs() {
    for seed in 0..SEEDS {
        let (analyzer, trace) = setup(seed);
        let one = online_signature(&analyzer, &trace, 1);
        assert_eq!(one.verdict, Verdict::Valid.to_string(), "seed {}: self-trace", seed);
        let four = online_signature(&analyzer, &trace, 4);
        assert_eq!(four, one, "seed {}: workers=4 drifted on the valid trace", seed);

        let mut bad = trace.clone();
        let corrupted = bad
            .events
            .iter_mut()
            .rev()
            .find(|e| e.dir == tango::Dir::Out && !e.params.is_empty())
            .map(|e| {
                if let Some(estelle_runtime::Value::Int(v)) = e.params.first_mut() {
                    *v += 1000;
                }
            })
            .is_some();
        if !corrupted {
            continue;
        }
        let one = online_signature(&analyzer, &bad, 1);
        let four = online_signature(&analyzer, &bad, 4);
        assert_eq!(four, one, "seed {}: workers=4 drifted on the corrupted trace", seed);
    }
}

/// Raw `Machine::generate` differential: the dispatch index (plain and
/// PGO-reordered) must produce the same fireable list, in declaration
/// order, as the interpreter's linear scan — stepped through a script.
#[test]
fn machine_level_fireable_sets_match_across_configurations() {
    for seed in 0..SEEDS {
        let spec = RandSpec::new(seed);
        let compiled = Machine::from_source(&spec.source()).expect("valid source");
        let interp = compiled.exec_view(ExecMode::Interp);

        // A PGO view with synthetic monotone-decreasing hints: index 0
        // hottest. This exercises the reordered-bucket replay path
        // without needing a real profile.
        let mut pgo = compiled.exec_view(ExecMode::Compiled);
        let n = pgo.module.transition_count();
        let hints = estelle_runtime::PgoHints {
            fires: (0..n as u64).rev().collect(),
            fails: vec![0; n],
        };
        pgo.apply_pgo(&hints);

        let mut st_i = interp.initial_state().expect("initializes");
        let mut st_c = compiled.initial_state().expect("initializes");
        let mut st_p = pgo.initial_state().expect("initializes");
        assert_eq!(st_i, st_c, "seed {}", seed);
        assert_eq!(st_i, st_p, "seed {}", seed);

        let mut env_i = estelle_runtime::env::NullEnv::default();
        let mut env_c = estelle_runtime::env::NullEnv::default();
        let mut env_p = estelle_runtime::env::NullEnv::default();
        for step in 0..6 {
            let gi = interp.generate(&mut st_i, &env_i).expect("generate");
            let gc = compiled.generate(&mut st_c, &env_c).expect("generate");
            let gp = pgo.generate(&mut st_p, &env_p).expect("generate");
            let key = |g: &estelle_runtime::Generated| {
                g.fireable
                    .iter()
                    .map(|f| (f.trans, f.params.clone(), f.fabricated))
                    .collect::<Vec<_>>()
            };
            assert_eq!(key(&gi), key(&gc), "seed {} step {}: compiled", seed, step);
            assert_eq!(
                key(&gi),
                key(&gp),
                "seed {} step {}: pgo-reordered dispatch must restore declaration order",
                seed,
                step
            );
            let Some(first) = gi.fireable.first().cloned() else {
                break;
            };
            interp.fire(&mut st_i, &first, &mut env_i).expect("fire");
            compiled.fire(&mut st_c, &first, &mut env_c).expect("fire");
            pgo.fire(&mut st_p, &first, &mut env_p).expect("fire");
            assert_eq!(st_i, st_c, "seed {} step {}: post-fire state", seed, step);
            assert_eq!(st_i, st_p, "seed {} step {}: post-fire state", seed, step);
        }
    }
}
