//! §3.2.1 — "Degenerate Cases when using MDFS".
//!
//! "Some protocol specifications have multiple IPs of which, during a
//! typical test case execution, not all are in use. In such cases, the
//! unused IPs will have empty queues during the entire search … each
//! state generated during the MDFS becomes a PG-node, and thus must be
//! saved … MDFS will waste all of the available memory very quickly. If
//! it is known before the trace analysis that no inputs will ever arrive
//! at a particular IP, using the disable_ip runtime option will prevent
//! this degenerate MDFS case from occurring."

use tango::{AnalysisOptions, ChannelSource, Event, Feed, OrderOptions, Verdict};
use tango_repro::protocols::ip3;
use tango_repro::tango::InconclusiveReason;

/// Drive ip3' on-line with traffic only at B/C; IP `A` never sees an
/// interaction, so without countermeasures every node is PG.
fn run(disable_a: bool, max_pg: usize) -> tango::AnalysisReport {
    let analyzer = ip3::analyzer_prime();
    let (tx, mut source) = ChannelSource::pair();
    for _ in 0..6 {
        tx.send(Feed::Event(Event::input("B", "data", vec![]))).unwrap();
        tx.send(Feed::Event(Event::output("C", "data", vec![]))).unwrap();
    }
    // The trace stays OPEN (no eof): that is what makes empty queues
    // "may grow" and nodes partially generated. Stop at the first interim
    // verdict and inspect the bookkeeping.
    let mut options = AnalysisOptions::with_order(OrderOptions::none());
    if disable_a {
        // Both quiet IPs: A never sees traffic, and C only ever receives
        // outputs — their input queues are known to stay empty.
        options = options.disable_ip("A").disable_ip("C");
    }
    options.limits.max_pg_nodes = max_pg;
    analyzer
        .analyze_online(&mut source, &options, &mut |_| false)
        .unwrap()
}

#[test]
fn unused_ip_creates_pg_nodes_everywhere() {
    let report = run(false, 1_000_000);
    // Everything received so far is explained: valid so far.
    assert_eq!(report.verdict, Verdict::ValidSoFar);
    // Every node along the search kept waiting on A: PG bookkeeping at
    // nearly every step.
    assert!(
        report.stats.pg_nodes >= 6,
        "expected pervasive PG-nodes, got {}",
        report.stats.pg_nodes
    );
}

#[test]
fn disable_ip_prevents_the_degenerate_case() {
    let degenerate = run(false, 1_000_000);
    let disabled = run(true, 1_000_000);
    assert_eq!(disabled.verdict, Verdict::ValidSoFar);
    assert!(
        disabled.stats.pg_nodes < degenerate.stats.pg_nodes,
        "disable_ip should reduce PG-node churn: {} vs {}",
        disabled.stats.pg_nodes,
        degenerate.stats.pg_nodes
    );
}

#[test]
fn pg_node_limit_guards_memory() {
    // The §3.2.1 memory hazard, bounded: an open-ended analysis whose
    // PG list would grow past the cap stops inconclusively instead of
    // "wasting all of the available memory".
    let analyzer = ip3::analyzer_prime();
    let (tx, mut source) = ChannelSource::pair();
    // A long stream with NO eof: nodes keep getting parked.
    for _ in 0..64 {
        tx.send(Feed::Event(Event::input("B", "data", vec![]))).unwrap();
        tx.send(Feed::Event(Event::output("C", "data", vec![]))).unwrap();
    }
    let mut options = AnalysisOptions::with_order(OrderOptions::none());
    options.limits.max_pg_nodes = 8;
    let report = analyzer
        .analyze_online(&mut source, &options, &mut |_| true)
        .unwrap();
    assert_eq!(
        report.verdict,
        Verdict::Inconclusive(InconclusiveReason::PgNodeLimit)
    );
}
