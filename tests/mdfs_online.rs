//! Integration tests for on-line trace analysis (paper §3).
//!
//! These exercise the multi-threaded depth-first search end-to-end on the
//! paper's own examples: the `ack` specification of Figure 1 (where plain
//! DFS would deadlock) and the `ip3`/`ip3'` pair of Figure 2 (where MDFS
//! stays inconclusive unless `t4`/`t5` exist).

use protocols::{ack, ip3};
use tango::{
    AnalysisOptions, ChannelSource, Event, Feed, OrderOptions, StaticSource, Verdict,
};

fn nr_options() -> AnalysisOptions {
    AnalysisOptions::with_order(OrderOptions::none())
}

/// §3.1: the greedy path T1,T1,T1 consumes all the x's and dead-ends;
/// MDFS must keep the earlier states alive and find T1 T2 T3 T1.
#[test]
fn ack_scenario_resolves_online() {
    let analyzer = ack::analyzer();
    let (tx, mut source) = ChannelSource::pair();
    // Feed everything up front, then close the trace.
    for line in [
        Event::input("A", "x", vec![]),
        Event::input("A", "x", vec![]),
        Event::input("B", "y", vec![]),
        Event::output("A", "ack", vec![]),
        Event::input("A", "x", vec![]),
    ] {
        tx.send(Feed::Event(line)).unwrap();
    }
    tx.send(Feed::Eof).unwrap();

    let report = analyzer
        .analyze_online(&mut source, &nr_options(), &mut |_| true)
        .unwrap();
    assert_eq!(report.verdict, Verdict::Valid);
    let witness = report.witness.unwrap();
    assert!(witness.contains(&"T3".to_string()));
}

/// The same scenario delivered one event at a time from another thread.
#[test]
fn ack_scenario_with_incremental_feed() {
    let analyzer = ack::analyzer();
    let (tx, mut source) = ChannelSource::pair();
    let feeder = std::thread::spawn(move || {
        let events = [
            Event::input("A", "x", vec![]),
            Event::input("A", "x", vec![]),
            Event::input("B", "y", vec![]),
            Event::output("A", "ack", vec![]),
            Event::input("A", "x", vec![]),
        ];
        for e in events {
            tx.send(Feed::Event(e)).unwrap();
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        tx.send(Feed::Eof).unwrap();
    });
    let report = analyzer
        .analyze_online(&mut source, &nr_options(), &mut |_| true)
        .unwrap();
    feeder.join().unwrap();
    assert_eq!(report.verdict, Verdict::Valid);
    // Incremental arrival forces PG-node bookkeeping.
    assert!(report.stats.pg_nodes > 0, "expected PG-nodes: {:?}", report.stats);
}

/// §3.1.2, `ip3'`: the traced output `o` can never be generated, but the
/// TAM keeps verifying B/C data and waiting — the verdict stays "likely
/// invalid" while the trace remains open.
#[test]
fn ip3_prime_is_inconclusive_while_open() {
    let analyzer = ip3::analyzer_prime();
    let (tx, mut source) = ChannelSource::pair();
    tx.send(Feed::Event(Event::input("A", "x", vec![]))).unwrap();
    tx.send(Feed::Event(Event::output("A", "o", vec![]))).unwrap();
    // Keep the trace open: B/C might still deliver data.
    let mut statuses = Vec::new();
    let report = analyzer
        .analyze_online(&mut source, &nr_options(), &mut |v| {
            statuses.push(v.clone());
            false // stop at the first interim verdict
        })
        .unwrap();
    assert_eq!(report.verdict, Verdict::LikelyInvalid);
    assert_eq!(statuses.last(), Some(&Verdict::LikelyInvalid));
}

/// §3.1.2, `ip3'` continued: as new data interactions keep arriving at B,
/// they are verified and the analyzer keeps waiting — still inconclusive.
#[test]
fn ip3_prime_keeps_consuming_data_but_stays_inconclusive() {
    let analyzer = ip3::analyzer_prime();
    let (tx, mut source) = ChannelSource::pair();
    tx.send(Feed::Event(Event::input("A", "x", vec![]))).unwrap();
    tx.send(Feed::Event(Event::output("A", "o", vec![]))).unwrap();
    let mut seen = 0;
    let report = analyzer
        .analyze_online(&mut source, &nr_options(), &mut |v| {
            assert_eq!(v, &Verdict::LikelyInvalid);
            seen += 1;
            if seen <= 3 {
                // More relayed data arrives; the verdict must not improve.
                tx.send(Feed::Event(Event::input("B", "data", vec![]))).unwrap();
                tx.send(Feed::Event(Event::output("C", "data", vec![]))).unwrap();
                true
            } else {
                false
            }
        })
        .unwrap();
    assert_eq!(report.verdict, Verdict::LikelyInvalid);
    assert_eq!(seen, 4);
}

/// §3.1.2, full `ip3`: once `finished` arrives at B, t4 then t5 explain
/// the `o` and the trace becomes valid.
#[test]
fn ip3_full_resolves_once_finished_arrives() {
    let analyzer = ip3::analyzer_full();
    let (tx, mut source) = ChannelSource::pair();
    tx.send(Feed::Event(Event::input("A", "x", vec![]))).unwrap();
    tx.send(Feed::Event(Event::output("A", "o", vec![]))).unwrap();
    let mut fed_finished = false;
    let report = analyzer
        .analyze_online(&mut source, &nr_options(), &mut |_| {
            if !fed_finished {
                fed_finished = true;
                tx.send(Feed::Event(Event::input("B", "finished", vec![]))).unwrap();
                tx.send(Feed::Eof).unwrap();
            }
            true
        })
        .unwrap();
    assert_eq!(report.verdict, Verdict::Valid);
    let witness = report.witness.unwrap();
    assert_eq!(witness, vec!["t4".to_string(), "t5".to_string()]);
}

/// A PGAV-node yields "valid so far": everything received is explained,
/// the trace just is not finished.
#[test]
fn valid_prefix_reports_valid_so_far() {
    let analyzer = ack::analyzer();
    let (tx, mut source) = ChannelSource::pair();
    tx.send(Feed::Event(Event::input("A", "x", vec![]))).unwrap();
    let report = analyzer
        .analyze_online(&mut source, &nr_options(), &mut |_| false)
        .unwrap();
    assert_eq!(report.verdict, Verdict::ValidSoFar);
}

/// Invalid input that no future data can repair gives a conclusive
/// `Invalid` even though the trace is still open (§3.1.2: "this can
/// happen only if invalid interactions exist … early enough").
#[test]
fn conclusively_invalid_without_eof() {
    // ack: an `ack` output with no `y` ever consumable — feed `out ack`
    // with no inputs at all; B may still grow, so the root stays PG and
    // the verdict is only "likely invalid". But an *input* the spec can
    // never consume from its current states is conclusive: use ip3'
    // where `finished` has no receiving transition.
    let analyzer = ip3::analyzer_prime();
    let (tx, mut source) = ChannelSource::pair();
    tx.send(Feed::Event(Event::input("B", "finished", vec![]))).unwrap();
    tx.send(Feed::Event(Event::input("B", "data", vec![]))).unwrap();
    // `finished` blocks B's FIFO forever; A/C queues stay open though, so
    // the analyzer can only say "likely invalid" until we close the trace.
    tx.send(Feed::Eof).unwrap();
    let report = analyzer
        .analyze_online(&mut source, &nr_options(), &mut |_| true)
        .unwrap();
    assert_eq!(report.verdict, Verdict::Invalid);
}

/// MDFS over a static source agrees with plain DFS.
#[test]
fn mdfs_agrees_with_dfs_on_static_traces() {
    let analyzer = protocols::tp0::analyzer();
    for seed in [1, 5] {
        let trace = protocols::tp0::valid_trace(3, 2, seed);
        let dfs = analyzer.analyze(&trace, &nr_options()).unwrap();
        let mut source = StaticSource::new(trace);
        let mdfs = analyzer
            .analyze_online(&mut source, &nr_options(), &mut |_| true)
            .unwrap();
        assert_eq!(dfs.verdict, mdfs.verdict);
        assert_eq!(dfs.verdict, Verdict::Valid);
    }

    let bad = protocols::tp0::invalidate_last_data(&protocols::tp0::valid_trace(2, 2, 9)).unwrap();
    let dfs = analyzer
        .analyze(&bad, &AnalysisOptions::with_order(OrderOptions::full()))
        .unwrap();
    let mut source = StaticSource::new(bad);
    let mdfs = analyzer
        .analyze_online(
            &mut source,
            &AnalysisOptions::with_order(OrderOptions::full()),
            &mut |_| true,
        )
        .unwrap();
    assert_eq!(dfs.verdict, Verdict::Invalid);
    assert_eq!(mdfs.verdict, Verdict::Invalid);
}

/// §3.1.3: basic MDFS and reordering MDFS agree on verdicts; reordering
/// reaches them with no more saved states when fresh input extends the
/// most recent partial solution.
#[test]
fn basic_and_reordering_mdfs_agree() {
    let analyzer = protocols::ack::analyzer();
    for reorder in [true, false] {
        let (tx, mut source) = ChannelSource::pair();
        for e in [
            Event::input("A", "x", vec![]),
            Event::input("A", "x", vec![]),
            Event::input("B", "y", vec![]),
            Event::output("A", "ack", vec![]),
        ] {
            tx.send(Feed::Event(e)).unwrap();
        }
        tx.send(Feed::Eof).unwrap();
        let mut options = nr_options();
        options.mdfs_reorder = reorder;
        let report = analyzer
            .analyze_online(&mut source, &options, &mut |_| true)
            .unwrap();
        assert_eq!(report.verdict, Verdict::Valid, "reorder={}", reorder);
    }
}
