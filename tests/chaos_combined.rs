//! All three fault sites armed in ONE run, pinned to the fault-free
//! outcome — the composition guarantee of the unified chaos layer.
//!
//! A hand-built lossless plan arms the source feed (read errors under
//! restart recovery), the disk spill tier (transient write errors) and
//! the checkpoint writes (transient I/O errors) simultaneously; the
//! run must retry through every one of them and still produce the
//! exact verdict and TE/GE/RE/SA counters of a pristine run, with
//! every site's retries visible in the stats. Plus the regression test
//! for the autosave warn-and-continue contract: a checkpoint write
//! that gives up is *recorded* in `AnalysisReport::checkpoint_faults`,
//! not just printed and lost.

use protocols::tp0;
use std::path::PathBuf;
use tango::{
    AnalysisOptions, Checkpoint, FaultPlan, InconclusiveReason, RetryPolicy, SearchStats,
    SpillMode, Trace, TraceSource, Verdict,
};

fn counters(s: &SearchStats) -> (u64, u64, u64, u64) {
    (s.transitions_executed, s.generates, s.restores, s.saves)
}

fn invalid_tp0_trace() -> Trace {
    tp0::invalidate_last_data(&tp0::complete_valid_trace(4, 4, 1))
        .expect("complete trace has a data output to corrupt")
}

fn scratch(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("tango-chaos-combined-{}-{}", tag, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn all_three_sites_armed_still_match_the_fault_free_run() {
    let a = tp0::analyzer();
    let bad = invalid_tp0_trace();

    // Reference under the same spill configuration (the tier is
    // verdict-transparent, but sharing it keeps the comparison exact),
    // with no faults anywhere.
    let dir = scratch("combined");
    let mut opts = AnalysisOptions::default();
    opts.limits.max_state_bytes = Some(256);
    opts.spill.mode = SpillMode::On;
    opts.spill.dir = Some(dir.join("spill-ref"));
    let reference = a.analyze(&bad, &opts).unwrap();
    assert_eq!(reference.verdict, Verdict::Invalid);
    assert!(reference.stats.spill_evictions > 0, "budget must evict");

    // One plan, three armed sites, all individually lossless.
    let plan = FaultPlan::parse(
        "seed=7,source.read_error_every=3,source.short_read_every=4,source.recovery=restart,\
         spill.write_error_every=3,spill.read_error_every=5,\
         checkpoint.io_error_every=2",
    )
    .unwrap();
    assert!(plan.is_lossless());
    assert!(plan.source.is_some() && plan.spill.is_some() && plan.checkpoint.is_some());

    // Source site: drain the trace text through the injector.
    let text = tango::render_trace(&bad, Some(a.module()), true);
    let mut src = plan
        .build_source(&text, Some(a.module().clone()))
        .expect("armed");
    let (effective, _faults) = tango::fault::drain_source(&mut src, 1_000_000).unwrap();
    assert!(
        src.fault_retries() > 0,
        "read faults under restart must retry"
    );

    // Spill site rides on the options; checkpoint site on the autosaves
    // of a stop/resume chain.
    let mut chaos_opts = opts.clone();
    chaos_opts.spill.dir = Some(dir.join("spill-chaos"));
    plan.apply(&mut chaos_opts);
    let mut injector = plan.checkpoint_injector();
    let cp_path = dir.join("checkpoint.bin");

    let step = (reference.stats.transitions_executed / 4).max(1);
    let mut cap = step;
    let mut round = chaos_opts.clone();
    round.limits.max_transitions = cap;
    let mut report = a.analyze(&effective, &round).unwrap();
    let (mut ck_retries, mut ck_giveups) = (0u64, 0u64);
    let mut rounds = 0;
    while let Verdict::Inconclusive(InconclusiveReason::TransitionLimit) = report.verdict {
        rounds += 1;
        assert!(rounds < 100, "must converge");
        let cp = *report.checkpoint.take().expect("limit stops are resumable");
        let out = cp.write_to_with(&cp_path, &RetryPolicy::checkpoint(), injector.as_mut());
        ck_retries += u64::from(out.retries);
        cap += step;
        let mut next = chaos_opts.clone();
        next.limits.max_transitions = cap;
        report = match out.result {
            Ok(()) => {
                // Resume from disk — the crashed-process path.
                drop(cp);
                let from_disk = Checkpoint::read_from(&cp_path).unwrap();
                a.analyze_resume(from_disk, &next).unwrap()
            }
            Err(_) => {
                ck_giveups += 1;
                a.analyze_resume(cp, &next).unwrap()
            }
        };
    }
    report.stats.source_retries += src.fault_retries();
    report.stats.checkpoint_retries += ck_retries;
    report.stats.checkpoint_giveups += ck_giveups;

    assert!(rounds >= 2, "the cap steps must actually interrupt the run");
    // Pinned: the fault-free outcome, bit for bit on the paper's
    // counters, with every site's recovery work on the record.
    assert_eq!(report.verdict, reference.verdict);
    assert_eq!(counters(&report.stats), counters(&reference.stats));
    assert!(report.stats.source_retries > 0, "source site exercised");
    assert!(report.stats.spill_retries > 0, "spill site exercised");
    assert!(
        report.stats.checkpoint_retries > 0,
        "checkpoint site exercised"
    );
    assert_eq!(report.stats.spill_giveups, 0, "lossless plan never gives up");
    assert!(
        report.stats.total_fault_retries()
            >= report.stats.source_retries + report.stats.spill_retries,
        "heartbeat total sums the sites"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Regression: an autosave that exhausts its retries must land in
/// `AnalysisReport::checkpoint_faults` (the warn-and-continue record),
/// and the analysis must still reach its verdict.
#[test]
fn exhausted_autosave_is_recorded_not_just_printed() {
    let a = tp0::analyzer();
    let bad = invalid_tp0_trace();
    let dir = scratch("autosave-record");
    let cp_path = dir.join("checkpoint.bin");

    // Disk full after the very first write attempt: every autosave
    // fails permanently after its bounded retries.
    let plan = FaultPlan::parse("seed=1,checkpoint.disk_full_after=1").unwrap();
    let mut injector = plan.checkpoint_injector();
    let opts = AnalysisOptions::default();
    let reference = a.analyze(&bad, &opts).unwrap();

    let step = (reference.stats.transitions_executed / 3).max(1);
    let mut cap = step;
    let mut round = opts.clone();
    round.limits.max_transitions = cap;
    let mut report = a.analyze(&bad, &round).unwrap();
    let mut faults: Vec<String> = Vec::new();
    let mut giveups = 0u64;
    while let Verdict::Inconclusive(InconclusiveReason::TransitionLimit) = report.verdict {
        let cp = *report.checkpoint.take().unwrap();
        let out = cp.write_to_with(&cp_path, &RetryPolicy::checkpoint(), injector.as_mut());
        if let Err(e) = out.result {
            giveups += 1;
            faults.push(e.to_string());
        }
        cap += step;
        let mut next = opts.clone();
        next.limits.max_transitions = cap;
        // Warn-and-continue: the failed save never kills the search.
        report = a.analyze_resume(cp, &next).unwrap();
    }
    report.stats.checkpoint_giveups += giveups;
    report.checkpoint_faults = faults;

    assert_eq!(report.verdict, reference.verdict);
    assert_eq!(counters(&report.stats), counters(&reference.stats));
    assert!(report.stats.checkpoint_giveups > 0, "disk full must bite");
    assert!(
        !report.checkpoint_faults.is_empty(),
        "the giveup must be recorded on the report, not just stderr"
    );
    assert!(
        report.checkpoint_faults.iter().all(|f| f.contains("injected")),
        "{:?}",
        report.checkpoint_faults
    );
    std::fs::remove_dir_all(&dir).ok();
}
