//! End-to-end pipeline tests: Estelle source → generated analyzer →
//! trace verdicts, including the failure paths a user will hit.

use tango::{AnalysisOptions, OrderOptions, Tango, TangoError, Verdict};
use tango_repro::protocols::{ack, lapd, synthetic::SyntheticSpec, tp0};

#[test]
fn all_bundled_specs_generate_analyzers() {
    for (name, src) in [
        ("ack", ack::SOURCE.to_string()),
        ("ip3", tango_repro::protocols::ip3::source_full()),
        ("ip3'", tango_repro::protocols::ip3::source_prime()),
        ("tp0", tp0::SOURCE.to_string()),
        ("lapd", lapd::SOURCE.to_string()),
    ] {
        let analyzer = Tango::generate(&src)
            .unwrap_or_else(|e| panic!("{} failed to build: {}", name, e));
        assert!(
            analyzer.machine.module.transition_count() > 0,
            "{} compiled no transitions",
            name
        );
    }
}

#[test]
fn bundled_specs_have_no_lint_warnings() {
    for (name, src) in [
        ("tp0", tp0::SOURCE.to_string()),
        ("lapd", lapd::SOURCE.to_string()),
    ] {
        let analyzer = Tango::generate(&src).unwrap();
        assert!(
            analyzer.module().warnings.is_empty(),
            "{} has warnings: {:?}",
            name,
            analyzer.module().warnings
        );
    }
}

#[test]
fn empty_trace_is_valid_for_quiet_specs() {
    // An implementation that was never stimulated produces no trace; the
    // specification explains that trivially.
    let analyzer = tp0::analyzer();
    let r = analyzer
        .analyze_text("", &AnalysisOptions::default())
        .unwrap();
    assert_eq!(r.verdict, Verdict::Valid);
    assert_eq!(r.witness.as_deref(), Some(&[][..]));
}

#[test]
fn malformed_trace_file_reports_line() {
    let analyzer = tp0::analyzer();
    let err = analyzer
        .analyze_text("in U.tconreq\nnonsense\n", &AnalysisOptions::default())
        .unwrap_err();
    match err {
        TangoError::TraceParse(e) => assert_eq!(e.line, 2),
        other => panic!("expected a parse error, got {}", other),
    }
}

#[test]
fn trace_with_unknown_ip_reports_resolution_error() {
    let analyzer = tp0::analyzer();
    let err = analyzer
        .analyze_text("in X.tconreq\n", &AnalysisOptions::default())
        .unwrap_err();
    assert!(matches!(err, TangoError::TraceResolve(_)));
}

#[test]
fn unknown_option_ip_is_rejected() {
    let analyzer = tp0::analyzer();
    let options = AnalysisOptions::default().disable_ip("nosuch");
    let err = analyzer.analyze_text("", &options).unwrap_err();
    assert!(matches!(err, TangoError::Env(_)));
}

#[test]
fn multi_module_spec_rejected_with_explanation() {
    let src = r#"
        specification two;
        module A process; end;
        module B process; end;
        body AB for A; state S; initialize to S begin end; end;
        body BB for B; state S; initialize to S begin end; end;
        end.
    "#;
    let err = Tango::generate(src).unwrap_err();
    assert!(err.to_string().contains("single-module"));
}

#[test]
fn delay_clause_rejected_like_the_paper() {
    let src = r#"
        specification timed;
        module M process; end;
        body MB for M;
            state S;
            initialize to S begin end;
            trans
            from S to S delay(10) begin end;
        end;
        end.
    "#;
    let err = Tango::generate(src).unwrap_err();
    assert!(err.to_string().contains("delay"));
}

#[test]
fn interleaved_bidirectional_data_all_modes() {
    // The §4.2 scenario: both testers send simultaneously; any
    // interleaving the implementation chose must be accepted.
    let analyzer = tp0::analyzer();
    for seed in 0..6 {
        let trace = tp0::valid_trace(4, 4, seed);
        for order in [
            OrderOptions::none(),
            OrderOptions::io(),
            OrderOptions::ip(),
            OrderOptions::full(),
        ] {
            let r = analyzer
                .analyze(&trace, &AnalysisOptions::with_order(order))
                .unwrap();
            assert_eq!(
                r.verdict,
                Verdict::Valid,
                "seed {} mode {}",
                seed,
                order.label()
            );
        }
    }
}

#[test]
fn witness_replays_the_trace_length() {
    let analyzer = tp0::analyzer();
    let trace = tp0::complete_valid_trace(3, 3, 5);
    let r = analyzer
        .analyze(&trace, &AnalysisOptions::with_order(OrderOptions::full()))
        .unwrap();
    let witness = r.witness.unwrap();
    // For a complete initiator-side run: t10 and t11 handle two events
    // each (input + output), every data interaction costs two transitions
    // (read, forward) covering two events, and t17 covers the final two.
    // So |witness| = 3 + 2·(up+down) while |events| = 6 + 2·(up+down).
    assert_eq!(witness.len(), 3 + 2 * (3 + 3));
    assert_eq!(trace.len(), 6 + 2 * (3 + 3));
}

#[test]
fn synthetic_specs_scale_to_large_transition_counts() {
    let spec = SyntheticSpec::new(8, 800);
    let analyzer = spec.analyzer();
    assert_eq!(analyzer.module().declared_transition_count(), 800);
    let trace = analyzer
        .generate_trace(&spec.workload(40), tango::ChoicePolicy::First, 10_000)
        .unwrap();
    let r = analyzer
        .analyze(&trace, &AnalysisOptions::default())
        .unwrap();
    assert_eq!(r.verdict, Verdict::Valid);
}

#[test]
fn state_hashing_preserves_verdicts() {
    let analyzer = tp0::analyzer();
    let good = tp0::valid_trace(3, 3, 2);
    let bad = tp0::invalidate_last_data(&tp0::complete_valid_trace(3, 3, 2)).unwrap();
    for trace in [&good, &bad] {
        let mut plain = AnalysisOptions::with_order(OrderOptions::io());
        plain.limits.max_transitions = 10_000_000;
        let mut hashed = plain.clone();
        hashed.state_hashing = true;
        let a = analyzer.analyze(trace, &plain).unwrap();
        let b = analyzer.analyze(trace, &hashed).unwrap();
        assert_eq!(a.verdict, b.verdict);
        assert!(
            b.stats.transitions_executed <= a.stats.transitions_executed,
            "hashing should never search more"
        );
    }
}

#[test]
fn analysis_reports_spec_errors_on_abandoned_branches() {
    // A specification with a division that explodes on one branch; the
    // other branch explains the trace, so the verdict is still valid but
    // the report carries the diagnostic.
    let src = r#"
        specification diverr;
        channel C(env, m); by env: go(n : integer); by m: done(v : integer); end;
        module M process; ip P : C(m); end;
        body MB for M;
            state S;
            initialize to S begin end;
            trans
            from S to S when P.go name Crash:
                begin output P.done(100 div n); end;
            from S to S when P.go name Safe:
                begin output P.done(n); end;
        end;
        end.
    "#;
    let analyzer = Tango::generate(src).unwrap();
    let r = analyzer
        .analyze_text("in P.go(0)\nout P.done(0)\n", &AnalysisOptions::default())
        .unwrap();
    assert_eq!(r.verdict, Verdict::Valid);
    assert_eq!(r.stats.error_branches, 1);
    assert!(r.spec_errors[0].to_string().contains("div"));
}

#[test]
fn invalid_traces_carry_failure_localization() {
    let analyzer = tp0::analyzer();
    let trace = tp0::complete_valid_trace(3, 3, 5);
    let bad = tp0::invalidate_last_data(&trace).unwrap();
    let r = analyzer
        .analyze(&bad, &AnalysisOptions::with_order(OrderOptions::full()))
        .unwrap();
    assert_eq!(r.verdict, Verdict::Invalid);
    let best = r.best_effort.expect("invalid verdicts localize the failure");
    assert_eq!(best.events_total, bad.len());
    // Only the mutated tail resists explanation: the best attempt gets
    // within a few events of the end.
    assert!(
        best.events_explained >= bad.len() - 4,
        "best effort explained only {}/{}",
        best.events_explained,
        best.events_total
    );
    assert!(!best.path.is_empty());

    // Valid traces carry no failure localization.
    let r = analyzer
        .analyze(&trace, &AnalysisOptions::with_order(OrderOptions::full()))
        .unwrap();
    assert!(r.best_effort.is_none());
}
