//! Seeded chaos runner: composed fault plans over random specifications.
//!
//! For every (spec seed × plan seed) cell, [`tango::FaultPlan::random`]
//! composes 1–3 armed fault sites (source feed, disk spill tier,
//! checkpoint writes) and the runner drives a full analysis through
//! them, on valid and corrupted traces, with SIGKILL-style aborts
//! between checkpoint rounds (all in-memory state is dropped and the
//! run resumes from the bytes on disk). The invariants, for every cell:
//!
//! - no panic escapes — every failure is a typed error or a typed
//!   degraded verdict;
//! - the run terminates with a verdict;
//! - **lossless** plans (every armed fault retry-recovers or is
//!   warn-and-continue, so the search sees the same events) must match
//!   the fault-free reference's verdict and TE/GE/RE/SA counters
//!   exactly — unless the spill tier degraded, which must surface as
//!   `Inconclusive(SpillFailure)` with the fault on the record;
//! - crash+resume chains re-converge to the same totals.
//!
//! Every cell is reproducible from its log line alone:
//! `tango analyze spec.est trace.txt --fault-plan '<describe()>'`.

use protocols::randspec::RandSpec;
use std::path::PathBuf;
use tango::{
    AnalysisOptions, AnalysisReport, Checkpoint, ChoicePolicy, FaultPlan, InconclusiveReason,
    RetryPolicy, SearchStats, SpillMode, Tango, Trace, TraceAnalyzer, TraceSource, Verdict,
};

/// 12 random specs × 9 plans = 108 composed fault plans, beyond the
/// 10-spec / 100-plan floor the chaos gate promises.
const SPEC_SEEDS: u64 = 12;
const PLAN_SEEDS: u64 = 9;

fn counters(s: &SearchStats) -> (u64, u64, u64, u64) {
    (s.transitions_executed, s.generates, s.restores, s.saves)
}

/// Build the analyzer and a self-generated valid trace for a seed.
fn setup(seed: u64) -> (TraceAnalyzer, Trace) {
    let spec = RandSpec::new(seed);
    let analyzer = Tango::generate(&spec.source()).expect("randspec sources are valid");
    let trace = analyzer
        .generate_trace(&spec.workload(10), ChoicePolicy::First, 100_000)
        .expect("catch-all transitions keep the workload running");
    (analyzer, trace)
}

/// Damage the trace the way an interoperability arbiter sees real
/// damage: one output parameter off by a thousand. `None` when the
/// trace has no parameterized output to corrupt.
fn corrupted(trace: &Trace) -> Option<Trace> {
    use estelle_runtime::Value;
    let mut t = trace.clone();
    let idx = t
        .events
        .iter()
        .rposition(|e| e.dir == tango::Dir::Out && !e.params.is_empty())?;
    if let Value::Int(v) = t.events[idx].params[0] {
        t.events[idx].params[0] = Value::Int(v + 1000);
    } else {
        t.events[idx].params[0] = Value::Int(1000);
    }
    Some(t)
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tango-chaos-{}-{}", tag, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A cap both the reference and the chaos run share, so pathological
/// invalid-trace searches stay bounded and equivalence still holds.
const USER_CAP: u64 = 200_000;

fn base_options() -> AnalysisOptions {
    let mut o = AnalysisOptions::default();
    o.limits.max_transitions = USER_CAP;
    o
}

/// Arm the plan's sites onto the options: the spill site needs the tier
/// actually engaged (tight budget, on-disk directory) to see any I/O.
fn chaos_options(plan: &FaultPlan, dir: &std::path::Path) -> AnalysisOptions {
    let mut o = base_options();
    if plan.spill.is_some() {
        o.limits.max_state_bytes = Some(256);
        o.spill.mode = SpillMode::On;
        o.spill.dir = Some(dir.join("spill"));
    }
    plan.apply(&mut o);
    o
}

/// Drive one full chaos analysis: source drained through the injector,
/// checkpoint rounds with faulty autosaves and SIGKILL-style aborts
/// (resume strictly from the bytes on disk whenever a save landed).
fn run_chaos(
    analyzer: &TraceAnalyzer,
    trace: &Trace,
    plan: &FaultPlan,
    dir: &std::path::Path,
) -> AnalysisReport {
    let opts = chaos_options(plan, dir);

    // Source site: the search analyzes whatever the degraded feed
    // actually delivered.
    let module = analyzer.module().clone();
    let text = tango::render_trace(trace, Some(&module), true);
    let mut source_faults = Vec::new();
    let (mut source_retries, mut source_giveups) = (0u64, 0u64);
    let effective = match plan.build_source(&text, Some(module)) {
        Some(mut src) => {
            let (t, faults) = tango::fault::drain_source(&mut src, 1_000_000)
                .expect("composed plans have bounded stalls");
            source_faults = faults;
            source_retries = src.fault_retries();
            source_giveups = src.fault_giveups();
            t
        }
        None => trace.clone(),
    };

    let mut report = if plan.checkpoint.is_some() {
        // Checkpoint site armed: run in capped rounds, autosave through
        // the injector, and abort ("SIGKILL") after every successful
        // save — the next round must re-converge from the file alone.
        let mut injector = plan.checkpoint_injector();
        let cp_path = dir.join("checkpoint.bin");
        let mut ck_faults = Vec::new();
        let (mut ck_retries, mut ck_giveups) = (0u64, 0u64);

        let step = 50u64;
        let mut cap = step;
        let mut round_opts = opts.clone();
        round_opts.limits.max_transitions = cap.min(USER_CAP);
        let mut r = analyzer.analyze(&effective, &round_opts).unwrap();
        let mut rounds = 0;
        loop {
            rounds += 1;
            assert!(rounds < 10_000, "chaos rounds must converge: {:?}", plan);
            let synthetic = matches!(
                r.verdict,
                Verdict::Inconclusive(InconclusiveReason::TransitionLimit)
            ) && r.stats.transitions_executed < USER_CAP
                && r.checkpoint.is_some();
            if !synthetic {
                break;
            }
            let cp = *r.checkpoint.take().expect("checked above");
            let out = cp.write_to_with(&cp_path, &RetryPolicy::checkpoint(), injector.as_mut());
            ck_retries += u64::from(out.retries);
            cap = cap.saturating_add(step);
            let mut next = opts.clone();
            next.limits.max_transitions = cap.min(USER_CAP);
            r = match out.result {
                Ok(()) => {
                    // SIGKILL: nothing in memory survives; resume from
                    // the last save on disk.
                    drop(cp);
                    let from_disk = Checkpoint::read_from(&cp_path).expect("saved checkpoint reads back");
                    analyzer.analyze_resume(from_disk, &next).unwrap()
                }
                Err(e) => {
                    // The autosave gave up after its bounded retries —
                    // a typed error, recorded, and the analysis itself
                    // carries on from memory (warn-and-continue).
                    ck_giveups += 1;
                    ck_faults.push(e.to_string());
                    analyzer.analyze_resume(cp, &next).unwrap()
                }
            };
        }
        r.stats.checkpoint_retries += ck_retries;
        r.stats.checkpoint_giveups += ck_giveups;
        r.checkpoint_faults = ck_faults;
        r
    } else {
        analyzer.analyze(&effective, &opts).unwrap()
    };

    report.stats.source_retries += source_retries;
    report.stats.source_giveups += source_giveups;
    if !source_faults.is_empty() {
        report.source_faults = source_faults;
    }
    report
}

/// One chaos cell: run the plan, check the invariants against the
/// fault-free reference on the same trace.
fn check_cell(
    analyzer: &TraceAnalyzer,
    trace: &Trace,
    reference: &AnalysisReport,
    plan: &FaultPlan,
    tag: &str,
) {
    let dir = scratch_dir(tag);
    let report = run_chaos(analyzer, trace, plan, &dir);
    let ctx = || format!("cell {} plan `{}`", tag, plan.describe());

    // Typed degradation: a spill-armed plan may exhaust the tier's
    // retries, but only into the documented verdict with the fault on
    // the record — never a panic, never silence.
    let spill_degraded = report.verdict == Verdict::Inconclusive(InconclusiveReason::SpillFailure);
    if spill_degraded {
        assert!(plan.spill.is_some(), "{}", ctx());
        assert!(
            !report.spill_faults.is_empty(),
            "{}: degraded run must carry its diagnostic",
            ctx()
        );
    } else if plan.is_lossless() {
        // The search saw the same events as the reference: verdict and
        // the paper's counters must match exactly, across retries,
        // spilling, faulty autosaves and SIGKILL-resume chains.
        assert_eq!(report.verdict, reference.verdict, "{}", ctx());
        assert_eq!(
            counters(&report.stats),
            counters(&reference.stats),
            "{}",
            ctx()
        );
    }

    // Giveups without a recorded diagnostic would be silent data loss.
    if report.stats.checkpoint_giveups > 0 {
        assert!(!report.checkpoint_faults.is_empty(), "{}", ctx());
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn chaos_matrix_over_random_specs() {
    let mut cells = 0u64;
    for spec_seed in 0..SPEC_SEEDS {
        let (analyzer, valid) = setup(spec_seed);
        let bad = corrupted(&valid);
        let ref_valid = analyzer.analyze(&valid, &base_options()).unwrap();
        assert_eq!(
            ref_valid.verdict,
            Verdict::Valid,
            "self-generated trace must be valid (spec seed {})",
            spec_seed
        );
        let ref_bad = bad
            .as_ref()
            .map(|t| analyzer.analyze(t, &base_options()).unwrap());

        for plan_seed in 0..PLAN_SEEDS {
            let plan = FaultPlan::random(spec_seed * PLAN_SEEDS + plan_seed);
            assert!(plan.is_armed(), "random plans always arm a site");
            cells += 1;
            // Alternate valid and corrupted traces across the matrix so
            // both see every plan shape.
            match (&bad, &ref_bad) {
                (Some(bad_trace), Some(bad_ref)) if plan_seed % 2 == 1 => check_cell(
                    &analyzer,
                    bad_trace,
                    bad_ref,
                    &plan,
                    &format!("s{}p{}-bad", spec_seed, plan_seed),
                ),
                _ => check_cell(
                    &analyzer,
                    &valid,
                    &ref_valid,
                    &plan,
                    &format!("s{}p{}-valid", spec_seed, plan_seed),
                ),
            }
        }
    }
    assert!(
        cells >= 100,
        "the chaos gate promises at least 100 composed plans, ran {}",
        cells
    );
}

/// The fault counters the runner folds into the final stats are
/// exported as `fault.<site>.*` metrics — the observability half of the
/// chaos contract.
#[test]
fn chaos_fault_counters_reach_the_metrics_registry() {
    let (analyzer, valid) = setup(0);
    // Restart-recovery read errors: lossless, but every error is a
    // retry the stats must count.
    let plan = FaultPlan::parse("seed=42,source.read_error_every=2,source.recovery=restart")
        .unwrap();
    let dir = scratch_dir("metrics");
    let report = run_chaos(&analyzer, &valid, &plan, &dir);
    assert_eq!(report.verdict, Verdict::Valid);
    assert!(report.stats.source_retries > 0);
    assert!(report.stats.total_fault_retries() > 0);

    let mut tel = tango::Telemetry::off().with_metrics();
    tel.finalize(&report.stats);
    let m = tel.metrics().expect("metrics enabled");
    assert_eq!(
        m.counter("fault.source.retries"),
        Some(report.stats.source_retries)
    );
    assert_eq!(m.counter("fault.source.giveups"), Some(0));
    assert_eq!(
        m.counter("fault.spill.retries"),
        None,
        "unarmed sites export nothing"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The multi-core cell: a spill-armed plan under the work-stealing
/// search. Four workers hammer the sharded store through a faulty disk
/// tier; the run must either recover losslessly to the single-worker
/// fault-free verdict and counters, or degrade into the typed
/// `Inconclusive(SpillFailure)` with its diagnostic — never panic,
/// never drift.
#[test]
fn chaos_spill_faults_under_four_workers() {
    for (tag, plan_spec) in [
        ("retry", "seed=11,spill.write_error_every=4"),
        ("corrupt", "seed=12,spill.flip_bit_every=3"),
        ("hard", "seed=13,spill.hard_writes_after=20"),
    ] {
        let plan = FaultPlan::parse(plan_spec).unwrap();
        for spec_seed in [0u64, 5, 9] {
            let (analyzer, valid) = setup(spec_seed);
            let dir = scratch_dir(&format!("mdfs4-{}-{}", tag, spec_seed));

            // Fault-free sequential reference, spill engaged the same way.
            let mut ref_opts = base_options();
            ref_opts.limits.max_state_bytes = Some(256);
            ref_opts.spill.mode = SpillMode::On;
            ref_opts.spill.dir = Some(dir.join("ref-spill"));
            let mut src = tango::StaticSource::new(valid.clone());
            let reference = analyzer
                .analyze_online(&mut src, &ref_opts, &mut |_| true)
                .unwrap();
            assert_eq!(reference.verdict, Verdict::Valid, "spec seed {}", spec_seed);

            let mut opts = chaos_options(&plan, &dir);
            opts.workers = 4;
            let mut src = tango::StaticSource::new(valid.clone());
            let report = analyzer
                .analyze_online(&mut src, &opts, &mut |_| true)
                .unwrap();
            let ctx = || format!("mdfs4 cell {} spec {} plan `{}`", tag, spec_seed, plan.describe());
            if report.verdict == Verdict::Inconclusive(InconclusiveReason::SpillFailure) {
                assert!(
                    !report.spill_faults.is_empty(),
                    "{}: degraded run must carry its diagnostic",
                    ctx()
                );
            } else {
                assert_eq!(report.verdict, reference.verdict, "{}", ctx());
                assert_eq!(
                    counters(&report.stats),
                    counters(&reference.stats),
                    "{}",
                    ctx()
                );
            }
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

/// Reproduce-by-seed: the same seed builds the same plan, and the
/// described plan re-parses to itself — the CLI's `--chaos-seed N` and
/// the log line's `--fault-plan '<spec>'` both re-run the same cell.
#[test]
fn chaos_cells_are_reproducible_from_their_seed() {
    for seed in [3u64, 17, 92] {
        let plan = FaultPlan::random(seed);
        assert_eq!(plan, FaultPlan::random(seed));
        assert_eq!(FaultPlan::parse(&plan.describe()).unwrap(), plan);

        let (analyzer, valid) = setup(1);
        let d1 = scratch_dir(&format!("repro-a-{}", seed));
        let d2 = scratch_dir(&format!("repro-b-{}", seed));
        let a = run_chaos(&analyzer, &valid, &plan, &d1);
        let b = run_chaos(&analyzer, &valid, &plan, &d2);
        assert_eq!(a.verdict, b.verdict, "seed {}", seed);
        assert_eq!(counters(&a.stats), counters(&b.stats), "seed {}", seed);
        std::fs::remove_dir_all(&d1).ok();
        std::fs::remove_dir_all(&d2).ok();
    }
}
