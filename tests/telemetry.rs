//! Telemetry stream invariants (DESIGN §6.8).
//!
//! Two properties make the event stream trustworthy as an analysis
//! record rather than best-effort logging:
//!
//! * **Determinism** — for a fixed trace, options and a single worker,
//!   the JSONL bytes are identical across runs (no wall-clock values,
//!   no map iteration order, no addresses in the stream);
//! * **Completeness** — the final `SearchStats` counters equal the
//!   per-kind event counts: TE = fire events, GE = generate events,
//!   RE = restore events, SA = save events, for both DFS and MDFS.

use protocols::tp0;
use std::io::Write;
use std::sync::{Arc, Mutex};
use tango::{
    AnalysisOptions, AnalysisReport, JsonlSink, OrderOptions, StaticSource, Telemetry, Trace,
    Verdict,
};

/// A `Write` target the test can still read after the sink is boxed away
/// inside the telemetry handle.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn contents(&self) -> String {
        String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn traced_handle() -> (Telemetry, SharedBuf) {
    let buf = SharedBuf::default();
    let tel = Telemetry::off().with_sink(Box::new(JsonlSink::new(buf.clone())));
    (tel, buf)
}

/// A trace whose last DATA is corrupted: the DFS backtracks over every
/// interleaving before rejecting, so the stream exercises generate,
/// fire (both outcomes), save, restore and prune events.
fn invalid_trace() -> Trace {
    tp0::invalidate_last_data(&tp0::complete_valid_trace(3, 3, 1))
        .expect("complete trace ends in DATA")
}

fn dfs_run(trace: &Trace, options: &AnalysisOptions) -> (AnalysisReport, String) {
    let analyzer = tp0::analyzer();
    let (mut tel, buf) = traced_handle();
    let report = analyzer.analyze_with(trace, options, &mut tel).unwrap();
    tel.finalize(&report.stats);
    (report, buf.contents())
}

fn mdfs_run(trace: Trace, options: &AnalysisOptions) -> (AnalysisReport, String) {
    let analyzer = tp0::analyzer();
    let (mut tel, buf) = traced_handle();
    let mut source = StaticSource::new(trace);
    let report = analyzer
        .analyze_online_with(&mut source, options, &mut |_| true, &mut tel)
        .unwrap();
    tel.finalize(&report.stats);
    (report, buf.contents())
}

fn count_kind(stream: &str, kind: &str) -> u64 {
    let needle = format!("\"ev\":\"{}\"", kind);
    stream.lines().filter(|l| l.contains(&needle)).count() as u64
}

fn assert_counts_match(report: &AnalysisReport, stream: &str) {
    assert_eq!(
        count_kind(stream, "fire"),
        report.stats.transitions_executed,
        "TE must equal the fire-event count"
    );
    assert_eq!(
        count_kind(stream, "generate"),
        report.stats.generates,
        "GE must equal the generate-event count"
    );
    assert_eq!(
        count_kind(stream, "restore"),
        report.stats.restores,
        "RE must equal the restore-event count"
    );
    assert_eq!(
        count_kind(stream, "save"),
        report.stats.saves,
        "SA must equal the save-event count"
    );
}

#[test]
fn dfs_stream_is_byte_identical_across_runs() {
    let trace = invalid_trace();
    let options = AnalysisOptions::with_order(OrderOptions::none());
    let (r1, s1) = dfs_run(&trace, &options);
    let (r2, s2) = dfs_run(&trace, &options);
    assert_eq!(r1.verdict, Verdict::Invalid);
    assert_eq!(r1.verdict, r2.verdict);
    assert!(s1.lines().count() > 10, "expected a substantial stream");
    assert_eq!(s1, s2, "single-worker stream must be deterministic");
}

#[test]
fn dfs_stream_headers_and_sequence_numbers() {
    let (_, stream) = dfs_run(
        &invalid_trace(),
        &AnalysisOptions::with_order(OrderOptions::none()),
    );
    let first = stream.lines().next().unwrap();
    assert!(first.contains("\"ev\":\"meta\""), "{}", first);
    assert!(first.contains("\"schema\":\"tango-trace\""), "{}", first);
    assert!(first.contains("\"mode\":\"dfs\""), "{}", first);
    for (i, line) in stream.lines().enumerate() {
        assert!(
            line.starts_with(&format!("{{\"seq\":{},\"w\":0,", i)),
            "contiguous seq numbers, single worker: line {} = {}",
            i,
            line
        );
    }
    let last = stream.lines().last().unwrap();
    assert!(last.contains("\"ev\":\"verdict\""), "{}", last);
}

#[test]
fn dfs_event_counts_equal_final_stats() {
    let (report, stream) = dfs_run(
        &invalid_trace(),
        &AnalysisOptions::with_order(OrderOptions::none()),
    );
    assert!(report.stats.restores > 0, "workload must backtrack");
    assert_counts_match(&report, &stream);
}

#[test]
fn dfs_valid_trace_event_counts_equal_final_stats() {
    let (report, stream) = dfs_run(
        &tp0::valid_trace(2, 1, 3),
        &AnalysisOptions::with_order(OrderOptions::full()),
    );
    assert!(report.verdict.is_valid());
    assert_counts_match(&report, &stream);
}

#[test]
fn mdfs_stream_is_byte_identical_across_runs() {
    let options = AnalysisOptions::with_order(OrderOptions::none());
    let (r1, s1) = mdfs_run(invalid_trace(), &options);
    let (r2, s2) = mdfs_run(invalid_trace(), &options);
    assert_eq!(r1.verdict, r2.verdict);
    assert!(s1.lines().next().unwrap().contains("\"mode\":\"mdfs\""));
    assert_eq!(s1, s2, "static-source MDFS stream must be deterministic");
}

#[test]
fn mdfs_event_counts_equal_final_stats() {
    let options = AnalysisOptions::with_order(OrderOptions::none());
    for trace in [invalid_trace(), tp0::complete_valid_trace(3, 3, 1)] {
        let (report, stream) = mdfs_run(trace, &options);
        assert_counts_match(&report, &stream);
        let last = stream.lines().last().unwrap();
        assert!(last.contains("\"ev\":\"verdict\""), "{}", last);
        assert!(
            last.contains(&format!("\"te\":{}", report.stats.transitions_executed)),
            "verdict event carries the final TE: {}",
            last
        );
    }
}
