//! Copy-on-write Save/Restore equivalence tests.
//!
//! The COW snapshot path (`cow_snapshots = true`, the default) and the
//! eager deep-clone baseline (`--cow=off`) must be observationally
//! identical: same verdicts, same TE/GE/RE/SA counters, same behaviour
//! across checkpoint/resume — only the cost differs. These tests pin that
//! equivalence, the snapshot-interning dedup, and the saturating
//! `snapshot_bytes` accounting that must never wrap across stop/resume.

use protocols::tp0;
use tango::{
    AnalysisOptions, ChoicePolicy, ScriptedInput, SearchStats, Tango, Trace, Verdict,
};

/// The counters the paper's tables report; `wall_time` is excluded since
/// the two modes differ precisely in how long the same work takes.
fn counters(s: &SearchStats) -> (u64, u64, u64, u64) {
    (s.transitions_executed, s.generates, s.restores, s.saves)
}

fn with_cow(cow: bool) -> AnalysisOptions {
    AnalysisOptions {
        cow_snapshots: cow,
        ..AnalysisOptions::default()
    }
}

fn invalid_tp0_trace() -> Trace {
    tp0::invalidate_last_data(&tp0::complete_valid_trace(3, 3, 1))
        .expect("complete trace has a data output to corrupt")
}

#[test]
fn cow_and_deep_agree_on_valid_and_invalid_tp0() {
    let a = tp0::analyzer();
    for (trace, want) in [
        (tp0::complete_valid_trace(3, 3, 1), Verdict::Valid),
        (invalid_tp0_trace(), Verdict::Invalid),
    ] {
        let cow = a.analyze(&trace, &with_cow(true)).unwrap();
        let deep = a.analyze(&trace, &with_cow(false)).unwrap();
        assert_eq!(cow.verdict, want);
        assert_eq!(deep.verdict, want);
        assert_eq!(counters(&cow.stats), counters(&deep.stats));
        assert_eq!(
            deep.stats.intern_hits, 0,
            "the deep baseline never interns"
        );
        assert!(
            cow.stats.peak_snapshot_bytes <= deep.stats.peak_snapshot_bytes,
            "deduplicated accounting can only shrink the peak"
        );
    }
}

#[test]
fn checkpoint_resume_totals_match_under_both_modes() {
    let a = tp0::analyzer();
    let bad = invalid_tp0_trace();
    let mut totals = Vec::new();
    for cow in [true, false] {
        let opts = with_cow(cow);
        let baseline = a.analyze(&bad, &opts).unwrap();
        assert_eq!(baseline.verdict, Verdict::Invalid);

        // Interrupt a third of the way in, then resume with the cap lifted.
        let mut limited = opts.clone();
        limited.limits.max_transitions = (baseline.stats.transitions_executed / 3).max(1);
        let stopped = a.analyze(&bad, &limited).unwrap();
        let cp = stopped.checkpoint.expect("limit stop must be resumable");
        let resumed = a.analyze_resume(*cp, &opts).unwrap();

        assert_eq!(resumed.verdict, Verdict::Invalid);
        assert_eq!(counters(&resumed.stats), counters(&baseline.stats));
        totals.push((baseline.verdict.clone(), counters(&baseline.stats)));
    }
    assert_eq!(
        totals[0], totals[1],
        "COW and deep-clone modes must do identical search work"
    );
}

#[test]
fn snapshot_bytes_never_wraps_across_stop_resume_rounds() {
    let a = tp0::analyzer();
    let bad = invalid_tp0_trace();
    let opts = with_cow(true);
    let baseline = a.analyze(&bad, &opts).unwrap();

    // Force several stop/resume rounds; a subtraction wrap anywhere in
    // the rebuilt accounting would catapult `snapshot_bytes` toward
    // `usize::MAX` and trip the sanity bound (or the debug assertion in
    // debug builds).
    let sane = 1usize << 40;
    let step = (baseline.stats.transitions_executed / 5).max(1);
    let mut cap = step;
    let mut limited = opts.clone();
    limited.limits.max_transitions = cap;
    let mut report = a.analyze(&bad, &limited).unwrap();
    let mut rounds = 0;
    while let Verdict::Inconclusive(_) = report.verdict {
        rounds += 1;
        assert!(rounds < 100, "stop/resume chain must converge");
        assert!(
            report.stats.snapshot_bytes < sane,
            "snapshot_bytes wrapped: {}",
            report.stats.snapshot_bytes
        );
        assert!(report.stats.peak_snapshot_bytes < sane);
        assert!(report.stats.snapshot_bytes <= report.stats.peak_snapshot_bytes);
        let cp = report.checkpoint.take().expect("resumable");
        cap += step;
        let mut next = opts.clone();
        next.limits.max_transitions = cap;
        report = a.analyze_resume(*cp, &next).unwrap();
    }
    assert!(rounds >= 2, "the cap steps must actually interrupt the run");
    assert_eq!(report.verdict, Verdict::Invalid);
    assert_eq!(counters(&report.stats), counters(&baseline.stats));
    assert_eq!(
        report.stats.snapshot_bytes, 0,
        "an exhausted search must release every snapshot byte"
    );
}

/// A specification whose machine state never changes: every consumed
/// `ping` fires one of two observationally identical transitions, so the
/// DFS branches at each event while every saved node is the *same* state
/// — the snapshot-interning cache's best case.
const PING_SOURCE: &str = r#"
specification pinger;

channel C(user, station);
    by user: ping;
    by station: pong;
end;

module M process;
    ip U : C(station);
end;

body MB for M;
    state s0;
    initialize to s0 begin end;
    trans
    from s0 to same when U.ping name ta:
        begin end;
    from s0 to same when U.ping name tb:
        begin end;
end;
end.
"#;

#[test]
fn identical_states_are_interned_in_cow_mode_only() {
    let a = Tango::generate(PING_SOURCE).expect("pinger spec is valid");
    let script: Vec<ScriptedInput> = (0..8)
        .map(|_| ScriptedInput::new("U", "ping", vec![]))
        .collect();
    let trace = a
        .generate_trace(&script, ChoicePolicy::Random(1), 1_000)
        .expect("pinger consumes its workload");

    let cow = a.analyze(&trace, &with_cow(true)).unwrap();
    let deep = a.analyze(&trace, &with_cow(false)).unwrap();
    assert_eq!(cow.verdict, Verdict::Valid);
    assert_eq!(counters(&cow.stats), counters(&deep.stats));
    assert!(cow.stats.saves > 1, "two candidates per node force saves");
    assert!(
        cow.stats.intern_hits > 0,
        "every save after the first holds the same machine state"
    );
    assert_eq!(deep.stats.intern_hits, 0);
    assert!(
        cow.stats.peak_snapshot_bytes < deep.stats.peak_snapshot_bytes,
        "interned duplicates must be charged once (cow {} vs deep {})",
        cow.stats.peak_snapshot_bytes,
        deep.stats.peak_snapshot_bytes
    );
}
