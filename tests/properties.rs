//! Cross-crate randomized-sweep tests: the analyzer's soundness and
//! sensitivity contracts, and verdict preservation under the normal-form
//! transform.
//!
//! Formerly `proptest`-based; now deterministic seeded sweeps (the
//! workspace builds offline with no registry dependencies).

use tango::rng::SplitMix64;
use tango::{AnalysisOptions, ChoicePolicy, Dir, OrderOptions, Tango, Verdict};
use tango_repro::protocols::{synthetic::SyntheticSpec, tp0};
use tango_repro::runtime::normal_form::normalize_specification;
use tango_repro::runtime::Value;

/// Soundness: anything the specification's own implementation does is
/// accepted by the analyzer, in every checking mode.
#[test]
fn tp0_self_traces_always_verify() {
    let analyzer = tp0::analyzer();
    for case in 0..24u64 {
        let mut rng = SplitMix64::new(case);
        let up = rng.gen_index(5);
        let down = rng.gen_index(5);
        let seed = rng.next_u64() % 1000;
        let trace = tp0::valid_trace(up, down, seed);
        for order in [
            OrderOptions::none(),
            OrderOptions::io(),
            OrderOptions::ip(),
            OrderOptions::full(),
        ] {
            let r = analyzer
                .analyze(&trace, &AnalysisOptions::with_order(order))
                .unwrap();
            assert_eq!(
                r.verdict,
                Verdict::Valid,
                "up={} down={} seed={} mode={}",
                up,
                down,
                seed,
                order.label()
            );
        }
    }
}

/// Sensitivity: changing any data-bearing *output* parameter to a
/// different value makes the trace invalid under full checking.
#[test]
fn tp0_output_mutations_always_detected() {
    let analyzer = tp0::analyzer();
    for case in 0..24u64 {
        let mut rng = SplitMix64::new(1000 + case);
        let seed = rng.next_u64() % 500;
        let pick = rng.gen_index(100);
        let trace = tp0::complete_valid_trace(3, 2, seed);
        let data_outputs: Vec<usize> = trace
            .events
            .iter()
            .enumerate()
            .filter(|(_, e)| e.dir == Dir::Out && !e.params.is_empty())
            .map(|(i, _)| i)
            .collect();
        assert!(!data_outputs.is_empty());
        let idx = data_outputs[pick % data_outputs.len()];
        let mut bad = trace.clone();
        if let Value::Int(v) = bad.events[idx].params[0] {
            bad.events[idx].params[0] = Value::Int(v + 1);
        }
        let mut options = AnalysisOptions::with_order(OrderOptions::full());
        options.limits.max_transitions = 10_000_000;
        let r = analyzer.analyze(&bad, &options).unwrap();
        assert_eq!(r.verdict, Verdict::Invalid, "case {}", case);
    }
}

/// Dropping any single *input* event from a complete trace is
/// detected under full order checking: some later event loses its
/// explanation. (Dropping an output is not always detectable — t17
/// legally discards buffered data at disconnect, so a missing dt_req
/// can be explained by an earlier disconnect decision.)
#[test]
fn tp0_dropped_inputs_detected() {
    let analyzer = tp0::analyzer();
    for case in 0..16u64 {
        let mut rng = SplitMix64::new(2000 + case);
        let seed = rng.next_u64() % 200;
        let pick = rng.gen_index(100);
        let trace = tp0::complete_valid_trace(2, 2, seed);
        let inputs: Vec<usize> = trace
            .events
            .iter()
            .enumerate()
            .filter(|(_, e)| e.dir == Dir::In)
            .map(|(i, _)| i)
            .collect();
        let idx = inputs[pick % inputs.len()];
        let mut bad = trace.clone();
        bad.events.remove(idx);
        let mut options = AnalysisOptions::with_order(OrderOptions::full());
        options.limits.max_transitions = 10_000_000;
        let r = analyzer.analyze(&bad, &options).unwrap();
        assert_eq!(r.verdict, Verdict::Invalid, "dropped event {}", idx);
    }
}

/// Synthetic ring specs of arbitrary size verify their own traces.
#[test]
fn synthetic_self_traces_verify() {
    for case in 0..16u64 {
        let mut rng = SplitMix64::new(3000 + case);
        let states = 1 + rng.gen_index(5);
        let extra = rng.gen_index(40);
        let steps = rng.gen_index(30);
        let spec = SyntheticSpec::new(states, states + extra);
        let analyzer = spec.analyzer();
        let trace = analyzer
            .generate_trace(&spec.workload(steps), ChoicePolicy::First, 100_000)
            .unwrap();
        let r = analyzer
            .analyze(&trace, &AnalysisOptions::default())
            .unwrap();
        assert_eq!(r.verdict, Verdict::Valid, "case {}", case);
    }
}

/// A branching specification used for the normal-form property.
const BRANCHY: &str = r#"
specification branchy;
channel C(env, m);
    by env: put(n : integer);
    by m: small(n : integer); big(n : integer); zero;
end;
module M process; ip P : C(m); end;
body MB for M;
    var seen : integer;
    state S;
    initialize to S begin seen := 0 end;
    trans
    from S to S when P.put name Classify:
    begin
        if n = 0 then output P.zero
        else begin
            if n < 10 then output P.small(n)
            else output P.big(n);
        end;
        seen := seen + 1;
    end;
end;
end.
"#;

/// §5.3: the normal-form transformation preserves verdicts — any
/// trace gets the same valid/invalid answer from the original and the
/// normalized specification.
#[test]
fn normal_form_preserves_verdicts() {
    let original = Tango::generate(BRANCHY).unwrap();
    let spec = tango_repro::frontend::parse_specification(BRANCHY).unwrap();
    let normalized_src =
        tango_repro::ast::print::print_specification(&normalize_specification(&spec).unwrap());
    let normalized = Tango::generate(&normalized_src).unwrap();

    for case in 0..32u64 {
        let mut rng = SplitMix64::new(4000 + case);
        let values: Vec<i64> = (0..1 + rng.gen_index(7))
            .map(|_| rng.gen_range_i64(-20, 29))
            .collect();
        let corrupt = rng.gen_bool();

        // Build a trace from the original implementation...
        let script: Vec<_> = values
            .iter()
            .map(|&v| tango::ScriptedInput::new("P", "put", vec![Value::Int(v)]))
            .collect();
        let mut trace = original
            .generate_trace(&script, ChoicePolicy::First, 10_000)
            .unwrap();
        // ... optionally corrupting one output parameter.
        if corrupt {
            if let Some(e) = trace
                .events
                .iter_mut()
                .find(|e| e.dir == Dir::Out && !e.params.is_empty())
            {
                if let Value::Int(v) = e.params[0] {
                    e.params[0] = Value::Int(v + 1);
                }
            }
        }
        let options = AnalysisOptions::default();
        let a = original.analyze(&trace, &options).unwrap();
        let b = normalized.analyze(&trace, &options).unwrap();
        assert_eq!(a.verdict, b.verdict, "case {}", case);
    }
}

/// The normalized BRANCHY spec is genuinely branch-free.
#[test]
fn normal_form_eliminates_branches() {
    let spec = tango_repro::frontend::parse_specification(BRANCHY).unwrap();
    let normalized = normalize_specification(&spec).unwrap();
    let body = &normalized.body.bodies[0];
    assert!(body.transitions.len() >= 3);
    for t in &body.transitions {
        assert!(
            !t.block.iter().any(|s| s.kind.is_control()),
            "transition {} still branches",
            t.name.as_ref().map(|n| n.text.as_str()).unwrap_or("?")
        );
        assert!(t.provided.is_some());
    }
}
