//! Corruption matrix for the durable checkpoint codec.
//!
//! A checkpoint file can be damaged in every way a filesystem and an
//! unlucky crash allow: truncated at any point, a single bit flipped in
//! any section, replaced by a different file format, written by a future
//! version of the tool, or empty. Each case must surface as the *right*
//! typed [`CheckpointError`] — never a panic, and never a silent partial
//! load that would resume a half-real search.

use protocols::tp0;
use std::path::PathBuf;
use tango::{AnalysisOptions, Checkpoint, CheckpointError, Verdict};

fn temp_file(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "tango-checkpoint-codec-{}-{}",
        tag,
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join("checkpoint.bin")
}

/// Produce a real limit-stopped checkpoint (with frames, interned
/// states, a resolved trace and non-trivial counters) and its file.
fn stopped_checkpoint() -> Checkpoint {
    let a = tp0::analyzer();
    let bad = tp0::invalidate_last_data(&tp0::complete_valid_trace(3, 3, 1))
        .expect("complete trace has a data output to corrupt");
    let full = a.analyze(&bad, &AnalysisOptions::default()).unwrap();
    let mut limited = AnalysisOptions::default();
    limited.limits.max_transitions = (full.stats.transitions_executed / 2).max(1);
    let stopped = a.analyze(&bad, &limited).unwrap();
    assert!(matches!(stopped.verdict, Verdict::Inconclusive(_)));
    *stopped.checkpoint.expect("limit stop must carry a checkpoint")
}

fn checkpoint_bytes(tag: &str) -> (Checkpoint, Vec<u8>, PathBuf) {
    let cp = stopped_checkpoint();
    let path = temp_file(tag);
    cp.write_to(&path).expect("checkpoint writes");
    let bytes = std::fs::read(&path).expect("checkpoint file exists");
    (cp, bytes, path)
}

#[test]
fn roundtrip_preserves_progress_and_stats() {
    let (cp, _, path) = checkpoint_bytes("roundtrip");
    let back = Checkpoint::read_from(&path).expect("clean file reads");
    assert_eq!(back.depth(), cp.depth());
    assert_eq!(back.pending_frames(), cp.pending_frames());
    assert_eq!(back.events_total(), cp.events_total());
    assert_eq!(
        back.stats().transitions_executed,
        cp.stats().transitions_executed
    );
    assert_eq!(back.stats().saves, cp.stats().saves);
    assert_eq!(back.stats().wall_time, cp.stats().wall_time);
    assert_eq!(back.stats().snapshot_bytes, cp.stats().snapshot_bytes);

    let info = Checkpoint::read_info(&path).expect("info reads");
    assert_eq!(info.depth, cp.depth());
    assert_eq!(info.pending_frames, cp.pending_frames());
    assert_eq!(info.events_total, cp.events_total());
    assert_eq!(info.stats.restores, cp.stats().restores);
}

#[test]
fn deterministic_encoding() {
    let (cp, bytes, path) = checkpoint_bytes("deterministic");
    cp.write_to(&path).expect("rewrite");
    assert_eq!(
        bytes,
        std::fs::read(&path).unwrap(),
        "the same checkpoint must always produce the same bytes"
    );
}

#[test]
fn zero_length_file_is_a_typed_error() {
    let path = temp_file("zero");
    std::fs::write(&path, b"").unwrap();
    match Checkpoint::read_from(&path) {
        Err(CheckpointError::Truncated { .. }) => {}
        other => panic!("zero-length file must be Truncated, got {:?}", other.err()),
    }
    assert!(Checkpoint::read_info(&path).is_err());
}

#[test]
fn wrong_magic_is_a_typed_error() {
    let (_, mut bytes, path) = checkpoint_bytes("magic");
    bytes[..8].copy_from_slice(b"NOTTANGO");
    std::fs::write(&path, &bytes).unwrap();
    assert!(matches!(
        Checkpoint::read_from(&path),
        Err(CheckpointError::BadMagic)
    ));
    assert!(matches!(
        Checkpoint::read_info(&path),
        Err(CheckpointError::BadMagic)
    ));
}

#[test]
fn future_version_is_refused_not_misread() {
    let (_, mut bytes, path) = checkpoint_bytes("version");
    // The version field sits right after the 8-byte magic.
    bytes[8..12].copy_from_slice(&999u32.to_le_bytes());
    std::fs::write(&path, &bytes).unwrap();
    match Checkpoint::read_from(&path) {
        Err(CheckpointError::UnsupportedVersion { found, supported }) => {
            assert_eq!(found, 999);
            assert!(supported < 999);
        }
        other => panic!("future version must be refused, got {:?}", other.err()),
    }
}

#[test]
fn truncation_at_every_length_is_a_typed_error() {
    let (_, bytes, path) = checkpoint_bytes("truncate");
    // Every strict prefix: step through short prefixes exhaustively and
    // longer ones sparsely to keep the test fast.
    let mut lengths: Vec<usize> = (0..bytes.len().min(64)).collect();
    lengths.extend((64..bytes.len()).step_by(97));
    lengths.push(bytes.len() - 1);
    for n in lengths {
        std::fs::write(&path, &bytes[..n]).unwrap();
        match Checkpoint::read_from(&path) {
            Err(
                CheckpointError::Truncated { .. }
                | CheckpointError::BadMagic
                | CheckpointError::ChecksumMismatch { .. },
            ) => {}
            Err(other) => panic!("prefix of {} bytes: unexpected error {:?}", n, other),
            Ok(_) => panic!("prefix of {} bytes decoded successfully", n),
        }
        assert!(Checkpoint::read_info(&path).is_err());
    }
}

#[test]
fn flipped_byte_in_each_section_is_caught_by_its_checksum() {
    let (_, bytes, path) = checkpoint_bytes("flip");
    // Walk the real section table so each corruption lands squarely
    // inside one section's payload.
    let sections = walk_sections(&bytes);
    assert_eq!(sections.len(), 4, "META, TRACE, STATES, DFS");
    for (name, start, len) in &sections {
        if *len == 0 {
            continue;
        }
        let mut corrupt = bytes.clone();
        let target = start + len / 2;
        corrupt[target] ^= 0x40;
        std::fs::write(&path, &corrupt).unwrap();
        match Checkpoint::read_from(&path) {
            Err(CheckpointError::ChecksumMismatch { section }) => {
                assert_eq!(
                    &section, name,
                    "flip at {} must be pinned to the {} section",
                    target, name
                );
            }
            other => panic!(
                "flip in {} must be a checksum mismatch, got {:?}",
                name,
                other.err()
            ),
        }
    }
}

#[test]
fn flipped_section_header_byte_is_still_a_typed_error() {
    let (_, bytes, path) = checkpoint_bytes("header-flip");
    let sections = walk_sections(&bytes);
    // The tag of the first section lives 12 bytes into the header region
    // that per-section CRCs do not cover; the whole-file digest must.
    let first_payload_start = sections[0].1;
    let tag_byte = first_payload_start - 12;
    let mut corrupt = bytes.clone();
    corrupt[tag_byte] ^= 0x08;
    std::fs::write(&path, &corrupt).unwrap();
    match Checkpoint::read_from(&path) {
        Err(
            CheckpointError::ChecksumMismatch { .. }
            | CheckpointError::Truncated { .. }
            | CheckpointError::Malformed(_),
        ) => {}
        other => panic!("header flip must be a typed error, got {:?}", other.err()),
    }
}

#[test]
fn flipped_file_digest_is_caught() {
    let (_, mut bytes, path) = checkpoint_bytes("digest-flip");
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF;
    std::fs::write(&path, &bytes).unwrap();
    match Checkpoint::read_from(&path) {
        Err(CheckpointError::ChecksumMismatch { section }) => assert_eq!(section, "file"),
        other => panic!("digest flip must be caught, got {:?}", other.err()),
    }
}

#[test]
fn resume_refuses_a_checkpoint_from_a_different_specification() {
    let (cp, _, path) = checkpoint_bytes("cross-spec");
    drop(cp);
    let cp = Checkpoint::read_from(&path).unwrap();
    // A different machine: one IP, different transitions. Resuming the
    // TP0 checkpoint into it must be an error, not an out-of-range panic
    // deep inside the search.
    let other = tango::Tango::generate(
        r#"
        specification mini;
        channel C(user, station); by user: a; by station: b; end;
        module M process; ip P : C(station); end;
        body MB for M;
            state S;
            initialize to S begin end;
            trans from S to same when P.a begin output P.b end;
        end;
        end.
        "#,
    )
    .expect("mini spec is valid");
    let err = other
        .analyze_resume(cp, &AnalysisOptions::default())
        .expect_err("cross-spec resume must be refused");
    assert!(
        err.to_string().contains("resume"),
        "error should point at the resume validation: {}",
        err
    );
}

/// Independently parse the file structure: `(section name, payload
/// offset, payload length)` for each section. Kept deliberately separate
/// from the production decoder so a decoder bug cannot hide a layout bug.
fn walk_sections(bytes: &[u8]) -> Vec<(&'static str, usize, usize)> {
    let u32_at = |p: usize| u32::from_le_bytes(bytes[p..p + 4].try_into().unwrap());
    let u64_at = |p: usize| u64::from_le_bytes(bytes[p..p + 8].try_into().unwrap());
    assert_eq!(&bytes[..8], b"TANGOCKP");
    let nsections = u32_at(12) as usize;
    let mut pos = 16;
    let mut out = Vec::new();
    for _ in 0..nsections {
        let tag = u32_at(pos);
        let len = u64_at(pos + 4) as usize;
        let name = match tag {
            1 => "meta",
            2 => "trace",
            3 => "states",
            4 => "dfs",
            _ => "unknown",
        };
        out.push((name, pos + 12, len));
        pos += 12 + len + 4;
    }
    assert_eq!(pos + 4, bytes.len(), "file digest must close the file");
    out
}
