//! Fault-injection and resource-governance integration tests.
//!
//! Exercises the resilience layer end to end: wall-clock deadlines and
//! snapshot-memory budgets stopping a static DFS with a resumable
//! checkpoint, stop/resume chains preserving the paper's TE/GE/RE/SA
//! counters exactly, and dynamic sources that corrupt, stall, duplicate,
//! truncate or rotate — none of which may panic, wedge the monitor, or
//! lose the diagnostic explaining what went wrong.

use protocols::tp0;
use std::time::Duration;
use tango::{
    AnalysisOptions, FaultPlan, FaultySource, FollowFileSource, InconclusiveReason,
    RecoveryPolicy, SearchStats, SourceFaultPlan, Trace, TraceSource, Verdict,
};

/// The counters the paper's tables report; `wall_time` is excluded since
/// wall-clock obviously differs between interrupted and straight runs.
fn counters(s: &SearchStats) -> (u64, u64, u64, u64) {
    (s.transitions_executed, s.generates, s.restores, s.saves)
}

fn invalid_tp0_trace() -> Trace {
    tp0::invalidate_last_data(&tp0::complete_valid_trace(4, 4, 1))
        .expect("complete trace has a data output to corrupt")
}

#[test]
fn deadline_stops_with_checkpoint_and_resume_matches_uninterrupted() {
    let a = tp0::analyzer();
    let bad = invalid_tp0_trace();
    let opts = AnalysisOptions::default();

    let baseline = a.analyze(&bad, &opts).unwrap();
    assert_eq!(baseline.verdict, Verdict::Invalid);

    let mut tight = opts.clone();
    tight.limits.max_wall_time = Some(Duration::from_micros(1));
    let stopped = a.analyze(&bad, &tight).unwrap();
    assert_eq!(
        stopped.verdict,
        Verdict::Inconclusive(InconclusiveReason::TimeLimit)
    );
    let cp = stopped.checkpoint.expect("limit stop must be resumable");
    assert_eq!(cp.events_total(), bad.len());

    // Resume with the deadline lifted: same verdict, same totals.
    let resumed = a.analyze_resume(*cp, &opts).unwrap();
    assert_eq!(resumed.verdict, Verdict::Invalid);
    assert_eq!(counters(&resumed.stats), counters(&baseline.stats));
    let (rb, bb) = (
        resumed.best_effort.expect("invalid verdict localizes"),
        baseline.best_effort.expect("invalid verdict localizes"),
    );
    assert_eq!(rb.events_explained, bb.events_explained);
    assert_eq!(rb.path, bb.path);
}

#[test]
fn memory_budget_stops_with_checkpoint_and_resume_matches_uninterrupted() {
    let a = tp0::analyzer();
    let bad = invalid_tp0_trace();
    let opts = AnalysisOptions::default();

    let baseline = a.analyze(&bad, &opts).unwrap();
    assert_eq!(baseline.verdict, Verdict::Invalid);

    let mut tiny = opts.clone();
    tiny.limits.max_state_bytes = Some(1);
    let stopped = a.analyze(&bad, &tiny).unwrap();
    assert_eq!(
        stopped.verdict,
        Verdict::Inconclusive(InconclusiveReason::MemoryLimit)
    );
    assert!(stopped.stats.peak_snapshot_bytes > 1);
    let cp = stopped.checkpoint.expect("limit stop must be resumable");

    let resumed = a.analyze_resume(*cp, &opts).unwrap();
    assert_eq!(resumed.verdict, Verdict::Invalid);
    assert_eq!(counters(&resumed.stats), counters(&baseline.stats));
}

#[test]
fn chained_stop_resume_rounds_preserve_counter_totals() {
    let a = tp0::analyzer();
    let bad = invalid_tp0_trace();
    let opts = AnalysisOptions::default();
    let baseline = a.analyze(&bad, &opts).unwrap();
    assert_eq!(baseline.verdict, Verdict::Invalid);

    // Raise the (absolute, since counters continue) transition cap a
    // fifth of the uninterrupted total at a time, forcing several
    // stop/resume rounds before the search can finish.
    let step = (baseline.stats.transitions_executed / 5).max(1);
    let mut cap = step;
    let mut limited = opts.clone();
    limited.limits.max_transitions = cap;
    let mut report = a.analyze(&bad, &limited).unwrap();
    let mut rounds = 0;
    while let Verdict::Inconclusive(_) = report.verdict {
        rounds += 1;
        assert!(rounds < 100, "stop/resume chain must converge");
        let cp = report
            .checkpoint
            .take()
            .expect("every limit-stopped round must be resumable");
        cap += step;
        let mut next = opts.clone();
        next.limits.max_transitions = cap;
        report = a.analyze_resume(*cp, &next).unwrap();
    }
    assert!(rounds >= 2, "the cap steps must actually interrupt the run");
    assert_eq!(report.verdict, Verdict::Invalid);
    assert_eq!(counters(&report.stats), counters(&baseline.stats));
    assert_eq!(
        report.best_effort.unwrap().events_explained,
        baseline.best_effort.unwrap().events_explained
    );
}

#[test]
fn corrupted_online_feed_is_skipped_and_diagnosed() {
    let a = tp0::analyzer();
    let good = tp0::complete_valid_trace(2, 2, 1);
    let text = tango::render_trace(&good, Some(a.module()), true);
    let plan = SourceFaultPlan {
        corrupt_every: 5,
        ..SourceFaultPlan::default()
    };
    let mut src = FaultySource::new(&text, Some(a.module().clone()), plan);
    let report = a
        .analyze_online(&mut src, &AnalysisOptions::default(), &mut |_| true)
        .unwrap();
    // Events were lost, so the verdict is whatever the damaged trace
    // deserves — but the run must terminate conclusively (the eof still
    // arrives) and the corruption must be visible in the report.
    assert!(report.verdict.is_conclusive());
    assert!(src.skipped_lines() > 0);
    assert!(!report.source_faults.is_empty());
}

#[test]
fn duplicating_and_stalling_online_feed_terminates() {
    let a = tp0::analyzer();
    let good = tp0::complete_valid_trace(1, 1, 1);
    let text = tango::render_trace(&good, Some(a.module()), true);
    let plan = SourceFaultPlan {
        duplicate_every: 3,
        stall_every: 2,
        stall_polls: 3,
        ..SourceFaultPlan::default()
    };
    let mut src = FaultySource::new(&text, Some(a.module().clone()), plan);
    let report = a
        .analyze_online(&mut src, &AnalysisOptions::default(), &mut |_| true)
        .unwrap();
    assert!(report.verdict.is_conclusive());
}

#[test]
fn midline_truncation_in_feed_is_diagnosed() {
    let a = tp0::analyzer();
    let good = tp0::complete_valid_trace(1, 1, 1);
    let text = tango::render_trace(&good, Some(a.module()), true);
    let plan = SourceFaultPlan {
        truncate_every: 4,
        ..SourceFaultPlan::default()
    };
    let mut src = FaultySource::new(&text, Some(a.module().clone()), plan);
    let report = a
        .analyze_online(&mut src, &AnalysisOptions::default(), &mut |_| true)
        .unwrap();
    assert!(report.verdict.is_conclusive());
    assert!(src.skipped_lines() > 0, "cut lines must surface as skips");
    assert!(!report.source_faults.is_empty());
}

#[test]
fn stalled_source_cannot_wedge_a_deadlined_monitor() {
    let a = tp0::analyzer();
    // One event, then the source stalls forever: without a deadline the
    // monitor would poll indefinitely waiting for the eof.
    let plan = SourceFaultPlan {
        stall_every: 1,
        stall_polls: usize::MAX,
        ..SourceFaultPlan::default()
    };
    let mut src = FaultySource::new("in U.tconreq\n", Some(a.module().clone()), plan);
    let mut opts = AnalysisOptions::default();
    opts.limits.max_wall_time = Some(Duration::from_millis(40));
    let report = a.analyze_online(&mut src, &opts, &mut |_| true).unwrap();
    assert_eq!(
        report.verdict,
        Verdict::Inconclusive(InconclusiveReason::TimeLimit)
    );
}

#[test]
fn injected_read_errors_retry_under_restart_policy() {
    let a = tp0::analyzer();
    let good = tp0::complete_valid_trace(2, 2, 1);
    let text = tango::render_trace(&good, Some(a.module()), true);
    // Every third read attempt errors; Restart retries the same line on
    // the next poll, so no data is lost and the verdict stays Valid.
    let plan = SourceFaultPlan {
        read_error_every: 3,
        ..SourceFaultPlan::default()
    };
    let mut src = FaultySource::new(&text, Some(a.module().clone()), plan)
        .with_recovery(RecoveryPolicy::Restart);
    let report = a
        .analyze_online(&mut src, &AnalysisOptions::default(), &mut |_| true)
        .unwrap();
    assert_eq!(report.verdict, Verdict::Valid);
    assert!(
        report
            .source_faults
            .iter()
            .any(|f| f.contains("injected read error") && f.contains("retrying")),
        "{:?}",
        report.source_faults
    );
}

#[test]
fn injected_read_error_fails_closed_under_fail_policy() {
    let a = tp0::analyzer();
    let good = tp0::complete_valid_trace(2, 2, 1);
    let text = tango::render_trace(&good, Some(a.module()), true);
    let plan = SourceFaultPlan {
        read_error_every: 3,
        ..SourceFaultPlan::default()
    };
    // Default policy is Fail: the first injected error reads as
    // end-of-trace, so the analysis terminates conclusively on the
    // delivered prefix with the fault on the record.
    let mut src = FaultySource::new(&text, Some(a.module().clone()), plan);
    let report = a
        .analyze_online(&mut src, &AnalysisOptions::default(), &mut |_| true)
        .unwrap();
    assert!(report.verdict.is_conclusive());
    assert!(
        report
            .source_faults
            .iter()
            .any(|f| f.contains("injected read error") && f.contains("end-of-trace")),
        "{:?}",
        report.source_faults
    );
}

#[test]
fn short_reads_under_fail_policy_skip_and_diagnose() {
    let a = tp0::analyzer();
    let good = tp0::complete_valid_trace(2, 2, 1);
    let text = tango::render_trace(&good, Some(a.module()), true);
    let plan = SourceFaultPlan {
        short_read_every: 4,
        ..SourceFaultPlan::default()
    };
    let mut src = FaultySource::new(&text, Some(a.module().clone()), plan);
    let report = a
        .analyze_online(&mut src, &AnalysisOptions::default(), &mut |_| true)
        .unwrap();
    // Partial data is delivered as-is under Fail; the half-lines fail to
    // parse, the monitor keeps going, and the eof still terminates it.
    assert!(report.verdict.is_conclusive());
    assert!(src.skipped_lines() > 0, "half-lines must surface as skips");
    assert!(
        report
            .source_faults
            .iter()
            .any(|f| f.contains("injected short read")),
        "{:?}",
        report.source_faults
    );

    // Restart discards the partial read and redelivers the whole line:
    // nothing is lost and the trace stays Valid.
    let mut src = FaultySource::new(&text, Some(a.module().clone()), plan)
        .with_recovery(RecoveryPolicy::Restart);
    let report = a
        .analyze_online(&mut src, &AnalysisOptions::default(), &mut |_| true)
        .unwrap();
    assert_eq!(report.verdict, Verdict::Valid);
    assert_eq!(src.skipped_lines(), 0, "retried reads lose nothing");
}

fn temp_trace_path(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "tango-fault-injection-{}-{}",
        tag,
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join("trace.txt")
}

/// The first two events of a valid TP0 run — a fully explainable prefix,
/// so the monitor reaches a `ValidSoFar` interim verdict (which is when
/// the `on_status` callback fires and the tests below mutate the file).
fn tp0_prefix_text(a: &tango::TraceAnalyzer) -> String {
    let full = tp0::complete_valid_trace(1, 1, 1);
    let prefix = Trace::new(full.events[..2].to_vec());
    tango::render_trace(&prefix, Some(a.module()), false)
}

#[test]
fn follow_file_truncation_fails_closed_with_diagnostic() {
    let a = tp0::analyzer();
    let path = temp_trace_path("fail");
    std::fs::write(&path, tp0_prefix_text(&a)).unwrap();

    let mut src = FollowFileSource::new(&path, Some(a.module().clone()))
        .with_recovery(RecoveryPolicy::Fail);
    let mut shrunk = false;
    let report = a
        .analyze_online(&mut src, &AnalysisOptions::default(), &mut |_| {
            // The prefix is explained and the monitor is idle: shrink the
            // file under it, as a crashing writer would.
            if !shrunk {
                shrunk = true;
                std::fs::write(&path, "").unwrap();
            }
            true
        })
        .unwrap();
    // Fail-closed: truncation reads as end-of-trace, so the explained
    // prefix concludes Valid — with the fault on the record, not silent.
    assert_eq!(report.verdict, Verdict::Valid);
    assert_eq!(src.rotations_seen(), 1);
    assert!(report
        .source_faults
        .iter()
        .any(|f| f.contains("truncated")));
    std::fs::remove_dir_all(path.parent().unwrap()).ok();
}

#[test]
fn follow_file_rotation_restarts_from_the_top() {
    let a = tp0::analyzer();
    let path = temp_trace_path("restart");
    std::fs::write(&path, tp0_prefix_text(&a)).unwrap();

    let mut src = FollowFileSource::new(&path, Some(a.module().clone()))
        .with_recovery(RecoveryPolicy::Restart);
    let mut rotated = false;
    let report = a
        .analyze_online(&mut src, &AnalysisOptions::default(), &mut |_| {
            // Rotate: replace the log with a shorter file that closes the
            // trace. The source must restart from offset 0 and read it.
            if !rotated {
                rotated = true;
                std::fs::write(&path, "eof\n").unwrap();
            }
            true
        })
        .unwrap();
    assert_eq!(report.verdict, Verdict::Valid);
    assert_eq!(src.rotations_seen(), 1);
    assert!(report
        .source_faults
        .iter()
        .any(|f| f.contains("restarting")));
    std::fs::remove_dir_all(path.parent().unwrap()).ok();
}

#[test]
fn unified_plan_arms_the_source_site_like_a_hand_built_one() {
    let a = tp0::analyzer();
    let good = tp0::complete_valid_trace(2, 2, 1);
    let text = tango::render_trace(&good, Some(a.module()), true);
    // The composed plan spec is the CLI's `--fault-plan` language; the
    // source it builds must behave exactly like the struct-literal plan
    // the pre-unification tests used.
    let plan =
        FaultPlan::parse("seed=1,source.read_error_every=3,source.recovery=restart").unwrap();
    let mut src = plan
        .build_source(&text, Some(a.module().clone()))
        .expect("source site armed");
    let report = a
        .analyze_online(&mut src, &AnalysisOptions::default(), &mut |_| true)
        .unwrap();
    assert_eq!(report.verdict, Verdict::Valid);
    assert!(src.fault_retries() > 0, "restart policy counts retries");
    assert_eq!(src.fault_giveups(), 0);
    assert!(report
        .source_faults
        .iter()
        .any(|f| f.contains("injected read error")));
}

#[test]
fn deprecated_source_plan_alias_still_compiles() {
    // `tango::trace::source::FaultPlan` was the site-local name before
    // the unified `tango::FaultPlan` took it; the alias stays one
    // release so existing callers get a deprecation warning, not a break.
    #[allow(deprecated)]
    let plan: tango::trace::source::FaultPlan = SourceFaultPlan {
        corrupt_every: 2,
        ..SourceFaultPlan::default()
    };
    assert_eq!(plan.corrupt_every, 2);
}
