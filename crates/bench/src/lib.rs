//! Shared harness for regenerating the paper's tables and figures.
//!
//! Each binary in `src/bin/` reproduces one experiment (see DESIGN.md's
//! per-experiment index); this library holds the row/table plumbing they
//! share. The Criterion benches under `benches/` measure the same
//! workloads at reduced sizes for statistically solid timing.

use tango::{
    AnalysisOptions, AnalysisReport, MetricsRegistry, OrderOptions, TraceAnalyzer, Verdict,
};
use tango::Trace;

pub mod json;

/// Render a report's counters as a `tango-metrics` JSON document (the
/// same schema `tango analyze --metrics-out` writes), for embedding in
/// benchmark records. Hand-rolled like every other record in this crate;
/// [`json::validate`] guards it against bit-rot.
pub fn metrics_json(report: &AnalysisReport) -> String {
    let mut m = MetricsRegistry::new();
    m.record_stats(&report.stats);
    m.to_json()
}

/// One row of a paper-style results table.
#[derive(Clone, Debug)]
pub struct Row {
    /// First column: DI, depth, #declarations, … depending on the table.
    pub key: String,
    pub cpu_seconds: f64,
    pub te: u64,
    pub ge: u64,
    pub re: u64,
    pub sa: u64,
    pub verdict: Verdict,
    pub fanout: f64,
}

impl Row {
    pub fn from_report(key: impl Into<String>, r: &AnalysisReport) -> Self {
        Row {
            key: key.into(),
            cpu_seconds: r.stats.wall_time.as_secs_f64(),
            te: r.stats.transitions_executed,
            ge: r.stats.generates,
            re: r.stats.restores,
            sa: r.stats.saves,
            verdict: r.verdict.clone(),
            fanout: r.stats.average_fanout(),
        }
    }
}

/// Render rows in the paper's column layout:
/// `KEY  CPUT  TE  GE  RE  SA`.
pub fn print_table(title: &str, key_header: &str, rows: &[Row]) {
    println!("\n== {} ==", title);
    println!(
        "{key_header:>8} {:>10} {:>10} {:>10} {:>10} {:>10}  verdict",
        "CPUT(s)", "TE", "GE", "RE", "SA"
    );
    for r in rows {
        println!(
            "{:>8} {:>10.3} {:>10} {:>10} {:>10} {:>10}  {}",
            r.key, r.cpu_seconds, r.te, r.ge, r.re, r.sa, r.verdict
        );
    }
}

/// Analyze `trace` under an order-checking preset, returning a table row.
pub fn analyze_row(
    analyzer: &TraceAnalyzer,
    trace: &Trace,
    order: OrderOptions,
    key: impl Into<String>,
    max_transitions: u64,
) -> Row {
    let mut options = AnalysisOptions::with_order(order);
    options.limits.max_transitions = max_transitions;
    let report = analyzer.analyze(trace, &options).expect("analysis runs");
    Row::from_report(key, &report)
}

/// The four presets in the order the paper's Figure 3 lists them.
pub fn order_presets() -> [(OrderOptions, &'static str); 4] {
    [
        (OrderOptions::none(), "NR"),
        (OrderOptions::io(), "IO"),
        (OrderOptions::ip(), "IP"),
        (OrderOptions::full(), "FULL"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_captures_report_counters() {
        let a = protocols::tp0::analyzer();
        let t = protocols::tp0::valid_trace(2, 1, 3);
        let row = analyze_row(&a, &t, OrderOptions::full(), "x", 1_000_000);
        assert!(row.verdict.is_valid());
        assert!(row.te > 0);
        assert!(row.ge > 0);
    }

    #[test]
    fn metrics_json_is_well_formed_and_matches_counters() {
        let a = protocols::tp0::analyzer();
        let t = protocols::tp0::valid_trace(2, 1, 3);
        let report = a
            .analyze(&t, &AnalysisOptions::with_order(OrderOptions::full()))
            .unwrap();
        let doc = metrics_json(&report);
        json::validate(&doc).expect("metrics document is well-formed JSON");
        assert!(doc.contains("\"schema\": \"tango-metrics\""));
        assert!(doc.contains(&format!(
            "\"search.te\": {}",
            report.stats.transitions_executed
        )));
    }

    #[test]
    fn presets_are_the_paper_rows() {
        let labels: Vec<_> = order_presets().iter().map(|(_, l)| *l).collect();
        assert_eq!(labels, ["NR", "IO", "IP", "FULL"]);
    }
}
