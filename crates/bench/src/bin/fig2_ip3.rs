//! Figure 2 / §3.1.2: MDFS termination behaviour on `ip3` vs `ip3'`.
//!
//! Feeds the paper's scenario — an `x` input and a traced `o` output,
//! followed by relayed B/C data — to both variants on-line:
//!
//! * `ip3'` (t1–t3 only): `o` can never be generated, yet the analyzer
//!   keeps verifying B/C data and can only report **likely invalid**;
//! * full `ip3`: once `finished` arrives, t4+t5 explain `o` → **valid**.
//!
//! ```sh
//! cargo run -p bench --bin fig2_ip3 --release
//! ```

use protocols::ip3;
use tango::{AnalysisOptions, ChannelSource, Event, Feed, OrderOptions, Verdict};

fn scenario(tx: &std::sync::mpsc::Sender<Feed>, rounds: usize) {
    tx.send(Feed::Event(Event::input("A", "x", vec![]))).unwrap();
    tx.send(Feed::Event(Event::output("A", "o", vec![]))).unwrap();
    for _ in 0..rounds {
        tx.send(Feed::Event(Event::input("B", "data", vec![]))).unwrap();
        tx.send(Feed::Event(Event::output("C", "data", vec![]))).unwrap();
    }
}

fn main() {
    let options = AnalysisOptions::with_order(OrderOptions::none());

    println!("ip3' (t1-t3 only): the o output is unexplainable, but data keeps verifying");
    {
        let analyzer = ip3::analyzer_prime();
        let (tx, mut source) = ChannelSource::pair();
        scenario(&tx, 3);
        let mut polls = 0;
        let report = analyzer
            .analyze_online(&mut source, &options, &mut |v| {
                polls += 1;
                println!("  status after drain #{}: {}", polls, v);
                if polls < 3 {
                    // More relayed data arrives; the verdict cannot improve.
                    tx.send(Feed::Event(Event::input("B", "data", vec![]))).unwrap();
                    tx.send(Feed::Event(Event::output("C", "data", vec![]))).unwrap();
                    true
                } else {
                    false
                }
            })
            .expect("online analysis runs");
        println!("  final: {}  [{}]", report.verdict, report.stats);
        assert_eq!(report.verdict, Verdict::LikelyInvalid);
    }

    println!("\nip3 (t1-t5): a finished at B resolves the o");
    {
        let analyzer = ip3::analyzer_full();
        let (tx, mut source) = ChannelSource::pair();
        scenario(&tx, 3);
        let mut sent = false;
        let report = analyzer
            .analyze_online(&mut source, &options, &mut |v| {
                println!("  status: {}", v);
                if !sent {
                    sent = true;
                    tx.send(Feed::Event(Event::input("B", "finished", vec![]))).unwrap();
                    tx.send(Feed::Eof).unwrap();
                }
                true
            })
            .expect("online analysis runs");
        println!("  final: {}  [{}]", report.verdict, report.stats);
        assert_eq!(report.verdict, Verdict::Valid);
    }
}
