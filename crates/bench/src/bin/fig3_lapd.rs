//! Figure 3: execution of a TAM on valid LAPD traces of various sizes.
//!
//! The paper's table analyzes seven valid LAPD traces (DI = data
//! interactions sent by the user module ∈ {5, 10, 15, 25, 50, 75, 100})
//! under the four relative-order-checking presets, reporting CPUT, TE,
//! (the peer sends DI I-frames of its own, so the piggybacked-ack
//! nondeterminism is live during re-analysis),
//! GE, RE and SA. Expected shape: every counter grows roughly linearly
//! with DI; NR is the most expensive mode and FULL the cheapest, with
//! RE collapsing to ~1 under FULL (the trace pins the interleaving).
//!
//! ```sh
//! cargo run -p bench --bin fig3_lapd --release
//! ```

use bench::{analyze_row, order_presets, print_table, Row};
use protocols::lapd;

fn main() {
    let analyzer = lapd::analyzer();
    let dis = [5usize, 10, 15, 25, 50, 75, 100];
    // The paper collected traces from 7 runs of the generated
    // implementation; one seed per DI plays the same role here.
    println!("LAPD: {} compiled transitions ({} declarations)",
        analyzer.machine.module.transition_count(),
        analyzer.module().declared_transition_count());

    for (order, label) in order_presets() {
        let rows: Vec<Row> = dis
            .iter()
            .map(|&di| {
                let trace = lapd::valid_trace(di, di, di as u64);
                analyze_row(&analyzer, &trace, order, di.to_string(), 50_000_000)
            })
            .collect();
        print_table(
            &format!("Figure 3 — LAPD valid traces, mode {}", label),
            "DI",
            &rows,
        );
    }
}
