//! Memory tiering under pressure: finish on disk instead of dying.
//!
//! ROADMAP item 4's acceptance story in one harness. The workload is an
//! NR-order invalid TP0 trace — the worst-fanout backtracking blowup —
//! run once unlimited (the all-RAM baseline), then under a ladder of
//! snapshot budgets taken as fractions of the measured peak residency
//! (50% / 25% / 10% / 5%), each with the spill tier enabled. Every
//! tiered row must reproduce the baseline verdict and TE/GE/RE/SA
//! exactly: the tier trades disk bandwidth for memory, never search
//! decisions. The final row reruns the tightest budget with spilling
//! *off* and must die `Inconclusive(MemoryLimit)` — the before/after
//! proof that a run which previously could not complete now does.
//!
//! ```sh
//! cargo run -p bench --bin spill --release            # full record
//! cargo run -p bench --bin spill --release -- --quick # CI smoke (<5 s)
//! cargo run -p bench --bin spill -- --check FILE      # validate JSON
//! ```

use bench::json;
use protocols::tp0;
use std::path::{Path, PathBuf};
use tango::{
    AnalysisOptions, InconclusiveReason, OrderOptions, SpillMode, Trace, TraceAnalyzer, Verdict,
};

const OUT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_spill.json");

struct RowResult {
    label: String,
    budget_bytes: Option<usize>,
    spill: bool,
    cpu_seconds: f64,
    nodes_per_sec: f64,
    te: u64,
    ge: u64,
    re: u64,
    sa: u64,
    peak_snapshot_bytes: usize,
    peak_spilled_bytes: usize,
    spill_writes: u64,
    spill_reads: u64,
    spill_retries: u64,
    spill_evictions: u64,
    verdict: Verdict,
}

fn run_row(
    analyzer: &TraceAnalyzer,
    trace: &Trace,
    label: &str,
    budget: Option<usize>,
    spill: bool,
    dir: &Path,
) -> RowResult {
    let mut options = AnalysisOptions::with_order(OrderOptions::none());
    options.limits.max_state_bytes = budget;
    if spill {
        options.spill.mode = SpillMode::On;
        options.spill.dir = Some(dir.to_path_buf());
    }
    let r = analyzer.analyze(trace, &options).expect("analysis runs");
    assert!(
        r.spill_faults.is_empty(),
        "{}: a healthy disk must not fault: {:?}",
        label,
        r.spill_faults
    );
    RowResult {
        label: label.to_string(),
        budget_bytes: budget,
        spill,
        cpu_seconds: r.stats.wall_time.as_secs_f64(),
        nodes_per_sec: r.stats.transitions_per_second(),
        te: r.stats.transitions_executed,
        ge: r.stats.generates,
        re: r.stats.restores,
        sa: r.stats.saves,
        peak_snapshot_bytes: r.stats.peak_snapshot_bytes,
        peak_spilled_bytes: r.stats.peak_spilled_bytes,
        spill_writes: r.stats.spill_writes,
        spill_reads: r.stats.spill_reads,
        spill_retries: r.stats.spill_retries,
        spill_evictions: r.stats.spill_evictions,
        verdict: r.verdict,
    }
}

fn row_json(m: &RowResult) -> String {
    format!(
        "    {{\"label\": \"{}\", \"budget_bytes\": {}, \"spill\": {}, \
         \"cpu_seconds\": {}, \"nodes_per_sec\": {}, \
         \"te\": {}, \"ge\": {}, \"re\": {}, \"sa\": {}, \
         \"peak_snapshot_bytes\": {}, \"peak_spilled_bytes\": {}, \
         \"spill_writes\": {}, \"spill_reads\": {}, \"spill_retries\": {}, \
         \"spill_evictions\": {}, \"verdict\": \"{}\"}}",
        json::escape(&m.label),
        m.budget_bytes
            .map(|b| b.to_string())
            .unwrap_or_else(|| "null".to_string()),
        m.spill,
        json::number(m.cpu_seconds),
        json::number(m.nodes_per_sec),
        m.te,
        m.ge,
        m.re,
        m.sa,
        m.peak_snapshot_bytes,
        m.peak_spilled_bytes,
        m.spill_writes,
        m.spill_reads,
        m.spill_retries,
        m.spill_evictions,
        json::escape(&m.verdict.to_string())
    )
}

fn spill_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tango-bench-spill-{}-{}", tag, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--check") {
        let path = args.get(1).map(String::as_str).unwrap_or(OUT_PATH);
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("spill --check: cannot read {}: {}", path, e);
                std::process::exit(1);
            }
        };
        if let Err(e) = json::validate(&text) {
            eprintln!("spill --check: {}: {}", path, e);
            std::process::exit(1);
        }
        if !text.contains("\"benchmark\": \"spill\"") {
            eprintln!("spill --check: {}: not a spill record", path);
            std::process::exit(1);
        }
        println!("{}: well-formed spill record", path);
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");

    // NR keeps the fanout at its worst, and corrupting the trailing DATA
    // forces the search to backtrack over every interleaving before it
    // can reject — peak snapshot residency scales with the blowup.
    let (up, down) = if quick { (2, 2) } else { (4, 4) };
    let analyzer = tp0::analyzer();
    let trace = tp0::invalidate_last_data(&tp0::complete_valid_trace(up, down, 13))
        .expect("complete trace ends in DATA");

    println!(
        "{:>18} {:>12} {:>6} {:>10} {:>12} {:>12} {:>10} {:>8}",
        "row", "budget", "spill", "CPUT(s)", "peak RAM", "peak disk", "evict", "verdict"
    );
    let show = |m: &RowResult| {
        println!(
            "{:>18} {:>12} {:>6} {:>10.3} {:>12} {:>12} {:>10} {:>8}",
            m.label,
            m.budget_bytes
                .map(|b| b.to_string())
                .unwrap_or_else(|| "-".to_string()),
            m.spill,
            m.cpu_seconds,
            m.peak_snapshot_bytes,
            m.peak_spilled_bytes,
            m.spill_evictions,
            m.verdict
        )
    };

    let mut rows = Vec::new();
    let dir = spill_dir("baseline");
    let baseline = run_row(&analyzer, &trace, "all-ram", None, false, &dir);
    assert_eq!(baseline.verdict, Verdict::Invalid, "the workload is conclusive");
    show(&baseline);

    // Budget ladder: fractions of the baseline's measured peak residency.
    let peak = baseline.peak_snapshot_bytes;
    let fractions: &[(u32, &str)] = if quick {
        &[(50, "50%"), (10, "10%")]
    } else {
        &[(50, "50%"), (25, "25%"), (10, "10%"), (5, "5%")]
    };
    let mut tightest = peak;
    for &(pct, label) in fractions {
        let budget = (peak * pct as usize / 100).max(1);
        tightest = tightest.min(budget);
        let dir = spill_dir(label.trim_end_matches('%'));
        let row = run_row(
            &analyzer,
            &trace,
            &format!("spill-{}", label),
            Some(budget),
            true,
            &dir,
        );
        show(&row);
        assert_eq!(
            (row.verdict.clone(), row.te, row.ge, row.re, row.sa),
            (
                baseline.verdict.clone(),
                baseline.te,
                baseline.ge,
                baseline.re,
                baseline.sa
            ),
            "{}: the tier must not change the verdict or TE/GE/RE/SA",
            row.label
        );
        assert!(
            row.spill_evictions > 0,
            "{}: a {} budget must actually evict",
            row.label,
            label
        );
        assert!(
            row.peak_snapshot_bytes <= budget.max(baseline.peak_snapshot_bytes / 2),
            "{}: residency must track the budget (peak {} vs budget {})",
            row.label,
            row.peak_snapshot_bytes,
            budget
        );
        std::fs::remove_dir_all(&dir).ok();
        rows.push(row);
    }

    // The before/after proof: the tightest budget with spilling off is
    // the run that used to die. It must stop Inconclusive(MemoryLimit) —
    // the exact kill this PR turns into tiering.
    let dir = spill_dir("no-spill");
    let died = run_row(&analyzer, &trace, "no-spill", Some(tightest), false, &dir);
    show(&died);
    assert_eq!(
        died.verdict,
        Verdict::Inconclusive(InconclusiveReason::MemoryLimit),
        "without the tier the tightest budget must still be a kill switch"
    );
    assert!(
        died.te < baseline.te,
        "the killed run must have stopped short of the full search"
    );

    rows.insert(0, baseline);
    rows.push(died);
    let doc = format!(
        "{{\n  \"benchmark\": \"spill\",\n  \"quick\": {},\n  \
         \"workload\": \"tp0-invalid-{}+{}-NR\",\n  \"trace_len\": {},\n  \"rows\": [\n{}\n  ]\n}}\n",
        quick,
        up,
        down,
        trace.len(),
        rows.iter().map(row_json).collect::<Vec<_>>().join(",\n")
    );
    json::validate(&doc).expect("emitted record is well-formed JSON");
    std::fs::write(OUT_PATH, &doc).expect("write BENCH_spill.json");
    println!("\nwrote {}", OUT_PATH);
}
