//! §4.2: analysis of *valid* TP0 traces is linear in trace length.
//!
//! "Taking any sequence of transitions (T13 through T16) which consume
//! input when available … would eventually consume all inputs and verify
//! all outputs … there are an exponential number of solutions … finding
//! one of them requires no backtracking. Therefore, the search time would
//! be linear with respect to the length of the trace."
//!
//! Expected shape: TE ≈ trace length, RE ≈ 0, time linear — under every
//! checking mode, since any greedy interleaving works.
//!
//! ```sh
//! cargo run -p bench --bin tp0_valid_scaling --release
//! ```

use bench::{analyze_row, order_presets, print_table, Row};
use protocols::tp0;

fn main() {
    let analyzer = tp0::analyzer();
    for (order, label) in order_presets() {
        let rows: Vec<Row> = [5usize, 10, 20, 40, 80, 160]
            .iter()
            .map(|&n| {
                let trace = tp0::valid_trace(n, n, n as u64);
                analyze_row(
                    &analyzer,
                    &trace,
                    order,
                    format!("{}+{}", n, n),
                    50_000_000,
                )
            })
            .collect();
        print_table(
            &format!("TP0 valid traces, mode {} (expect linear TE, tiny RE)", label),
            "data",
            &rows,
        );
    }
}
