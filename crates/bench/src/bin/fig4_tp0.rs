//! Figure 4: execution of a TAM on *invalid* TP0 traces.
//!
//! The paper's table: a trace with three data interactions each way whose
//! last data parameter is mutated, analyzed under the four checking modes
//! (None explodes: 1469 CPU seconds vs 0.9 under Full in 1995), then
//! longer invalid traces under Full checking showing exponential growth
//! with depth. The same trends should appear here: NR ≫ IP > IO ≈ FULL
//! at fixed size, and super-linear growth in TE as the trace lengthens.
//!
//! Also reproduces the §4.2 fanout observation: full order checking cuts
//! the average fanout (paper: 2.6 → 1.5).
//!
//! ```sh
//! cargo run -p bench --bin fig4_tp0 --release
//! ```

use bench::{analyze_row, order_presets, print_table, Row};
use protocols::tp0;

fn main() {
    let analyzer = tp0::analyzer();
    // Paper: "three data interactions sent by the upper tester, and three
    // sent by the lower tester", last parameter mutated.
    let base = tp0::invalidate_last_data(&tp0::complete_valid_trace(3, 3, 13)).expect("has data");
    println!(
        "invalid TP0 trace, {} events (3 data each way, last output parameter mutated)",
        base.len()
    );

    // Cap NR: the paper measured 1469.5s on a SUN 4; we bound the search
    // and report inconclusive if the cap is hit.
    let mut rows: Vec<Row> = Vec::new();
    for (order, label) in order_presets() {
        let cap = 20_000_000;
        let row = analyze_row(&analyzer, &base, order, label, cap);
        rows.push(row);
    }
    print_table(
        "Figure 4 — invalid TP0 trace (3+3 data), four checking modes",
        "RCM",
        &rows,
    );
    println!(
        "average fanout: NR={:.2}  FULL={:.2}  (paper: 2.6 -> 1.5)",
        rows[0].fanout, rows[3].fanout
    );

    // Longer invalid traces under FULL checking: depth grows by 8 per
    // extra (data, data) pair, time/TE grow super-linearly.
    let mut rows = Vec::new();
    for (up, down) in [(3usize, 3usize), (5, 5), (7, 7)] {
        let bad = tp0::invalidate_last_data(&tp0::complete_valid_trace(up, down, 13)).unwrap();
        let row = analyze_row(
            &analyzer,
            &bad,
            tango::OrderOptions::full(),
            format!("{}+{}", up, down),
            100_000_000,
        );
        rows.push(row);
    }
    print_table(
        "Figure 4 — longer invalid TP0 traces, FULL checking",
        "data",
        &rows,
    );
}
