//! Bytecode VM + dispatch index vs. the tree-walking interpreter.
//!
//! The paper's §4 throughput numbers are dominated by *Generate* and
//! *Update*: every search node scans the transition declarations,
//! re-evaluates `provided` clauses and walks action-block trees. This
//! benchmark runs the same TP0, LAPD and synthetic workloads under
//! `exec_mode = Compiled` (register bytecode executed by a non-recursive
//! VM, transitions pre-bucketed by from-control-state), under
//! `exec_mode = Interp` (the original tree walker with its linear
//! transition scan), and under *compiled + PGO* (a profiling run feeds
//! the per-transition fire counts back into the compiler, which reorders
//! each dispatch bucket by observed fire rate and re-sorts conjunctive
//! guard terms cheapest-first). It checks that the verdicts and the
//! TE/GE/RE/SA counters are identical in all three modes, and records
//! throughput (nodes/sec) and the `search.generate_latency_us`
//! histogram for each mode in `BENCH_generate.json` at the repo root.
//!
//! ```sh
//! cargo run -p bench --bin generate_exec --release            # full record
//! cargo run -p bench --bin generate_exec --release -- --quick # CI smoke (<5 s)
//! cargo run -p bench --bin generate_exec -- --check FILE      # validate JSON
//! ```

use bench::json;
use estelle_runtime::ExecMode;
use protocols::synthetic::SyntheticSpec;
use protocols::{lapd, tp0};
use tango::{
    AnalysisOptions, ChoicePolicy, OrderOptions, StaticSource, Telemetry, Trace, TraceAnalyzer,
    DEFAULT_RING_CAPACITY,
};

/// Profile one compiled run and feed the fire counts back into the
/// compiler (the `--pgo-out` → `--pgo-in` round trip, in-process).
fn apply_pgo(analyzer: &mut TraceAnalyzer, trace: &Trace, order: OrderOptions, cap: u64) {
    let mut options = AnalysisOptions::with_order(order);
    options.exec_mode = ExecMode::Compiled;
    options.limits.max_transitions = cap;
    let n = analyzer.machine.module.transition_count();
    let mut tel = Telemetry::off().with_profile(n);
    analyzer
        .analyze_with(trace, &options, &mut tel)
        .expect("profiling run");
    let profile = analyzer.pgo_snapshot(tel.profile().expect("profile enabled"));
    analyzer.apply_pgo(&profile).expect("profile matches its own spec");
}

const OUT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_generate.json");

/// One analysis run under one executor.
struct ModeResult {
    cpu_seconds: f64,
    nodes_per_sec: f64,
    te: u64,
    ge: u64,
    re: u64,
    sa: u64,
    verdict: String,
    /// `search.generate_latency_us` histogram: sample count and mean.
    gen_count: u64,
    gen_mean_us: f64,
}

fn run_mode(
    analyzer: &TraceAnalyzer,
    trace: &Trace,
    order: OrderOptions,
    exec: ExecMode,
    max_transitions: u64,
    reps: u32,
) -> ModeResult {
    let mut options = AnalysisOptions::with_order(order);
    options.exec_mode = exec;
    options.limits.max_transitions = max_transitions;
    // Short workloads repeat the identical analysis `reps` times and
    // report totals, so the throughput column is not at the mercy of a
    // sub-millisecond timer. The counters are per-run (every repetition
    // does the same search).
    let mut total_seconds = 0.0;
    let mut total_te = 0u64;
    let mut last: Option<ModeResult> = None;
    for _ in 0..reps.max(1) {
        // Metrics stay on in both modes so the timing overhead cancels
        // in the A/B comparison and the latency histogram is always
        // present.
        let mut tel = Telemetry::off().with_metrics();
        let r = analyzer
            .analyze_with(trace, &options, &mut tel)
            .expect("analysis runs");
        tel.finalize(&r.stats);
        let h = tel
            .metrics()
            .and_then(|m| m.histogram("search.generate_latency_us"));
        total_seconds += r.stats.wall_time.as_secs_f64();
        total_te += r.stats.transitions_executed;
        last = Some(ModeResult {
            cpu_seconds: r.stats.wall_time.as_secs_f64(),
            nodes_per_sec: 0.0,
            te: r.stats.transitions_executed,
            ge: r.stats.generates,
            re: r.stats.restores,
            sa: r.stats.saves,
            verdict: r.verdict.to_string(),
            gen_count: h.map_or(0, |h| h.count()),
            gen_mean_us: h.map_or(0.0, |h| h.mean()),
        });
    }
    let mut m = last.expect("at least one repetition");
    m.cpu_seconds = total_seconds;
    m.nodes_per_sec = if total_seconds > 0.0 {
        total_te as f64 / total_seconds
    } else {
        0.0
    };
    m
}

fn mode_json(m: &ModeResult) -> String {
    format!(
        "{{\"cpu_seconds\": {}, \"nodes_per_sec\": {}, \"te\": {}, \"ge\": {}, \
         \"re\": {}, \"sa\": {}, \"verdict\": \"{}\", \
         \"generate_latency_us\": {{\"count\": {}, \"mean\": {}}}}}",
        json::number(m.cpu_seconds),
        json::number(m.nodes_per_sec),
        m.te,
        m.ge,
        m.re,
        m.sa,
        json::escape(&m.verdict),
        m.gen_count,
        json::number(m.gen_mean_us)
    )
}

struct Workload {
    name: String,
    analyzer: TraceAnalyzer,
    order: OrderOptions,
    trace: Trace,
    /// Transition cap: rows that hit it measure a fixed amount of search
    /// work (identical TE in both modes), rows that finish under it
    /// measure the complete analysis.
    cap: u64,
    /// Counts toward the ≥3× (PGO-enabled) LAPD acceptance gate.
    gate: bool,
    /// Repetitions of the identical analysis (totals reported), so short
    /// rows measure above timer noise.
    reps: u32,
}

fn workloads(quick: bool) -> Vec<Workload> {
    let mut w = Vec::new();
    // TP0: one valid linear run and one invalid backtracking run — the
    // paper's Figure 4 regime, where Generate runs once per node and the
    // declaration count is small (19), so the dispatch index matters
    // less than raw action-block execution speed.
    let (up, cap) = if quick { (2, 2_000_000) } else { (4, 50_000_000) };
    w.push(Workload {
        name: format!("tp0-valid-{0}+{0}-FULL", if quick { 20 } else { 200 }),
        analyzer: tp0::analyzer(),
        order: OrderOptions::full(),
        trace: tp0::valid_trace(
            if quick { 20 } else { 200 },
            if quick { 20 } else { 200 },
            7,
        ),
        cap: 50_000_000,
        gate: false,
        reps: if quick { 1 } else { 10 },
    });
    w.push(Workload {
        name: format!("tp0-invalid-{0}+{0}-NR", up),
        analyzer: tp0::analyzer(),
        order: OrderOptions::none(),
        trace: tp0::invalidate_last_data(&tp0::complete_valid_trace(up, up, 13))
            .expect("complete trace ends in DATA"),
        cap,
        gate: false,
        reps: 1,
    });
    // LAPD: the paper's heavyweight spec. The compact form has the
    // paper's FSM; the expanded form multiplies the declarations past
    // 800 compiled transitions, which is exactly where the per-node
    // linear scan hurts and the by-state dispatch index pays off. These
    // are the acceptance-gate rows.
    let di = 100;
    w.push(Workload {
        name: format!("lapd-valid-DI{}-FULL", di),
        analyzer: lapd::analyzer(),
        order: OrderOptions::full(),
        trace: lapd::valid_trace(di, di, di as u64),
        cap: 50_000_000,
        gate: !quick,
        reps: if quick { 1 } else { 30 },
    });
    w.push(Workload {
        name: format!("lapd-800-valid-DI{}-FULL", di),
        analyzer: lapd::analyzer_expanded(),
        order: OrderOptions::full(),
        trace: lapd::valid_trace(di, di, di as u64),
        cap: 50_000_000,
        gate: !quick,
        reps: if quick { 1 } else { 30 },
    });
    // The same spec in the §4 Generate-bound regime: NR order and a
    // setup-phase trace keep the run inside transition-table scans
    // rather than data-phase firing and order bookkeeping, so this row
    // isolates what the dispatch index, the VM fast paths and PGO
    // actually buy on an 800-transition table.
    w.push(Workload {
        name: format!("lapd-800-valid-DI{}-NR", di),
        analyzer: lapd::analyzer_expanded(),
        order: OrderOptions::none(),
        trace: lapd::valid_trace(di, 0, 4),
        cap: 50_000_000,
        gate: !quick,
        reps: if quick { 1 } else { 200 },
    });
    // Synthetic declaration-count sweep: fixed workload, growing spec.
    let sweep: &[usize] = if quick { &[50] } else { &[50, 200, 800] };
    for &decls in sweep {
        let spec = SyntheticSpec::new(4, decls);
        let analyzer = spec.analyzer();
        let steps = if quick { 50 } else { 400 };
        let trace = analyzer
            .generate_trace(&spec.workload(steps), ChoicePolicy::First, 100_000)
            .expect("workload runs");
        w.push(Workload {
            name: format!("synthetic-{}decl-NR", decls),
            analyzer,
            order: OrderOptions::none(),
            trace,
            cap: 50_000_000,
            gate: false,
            reps: if quick { 1 } else { 10 },
        });
    }
    w
}

/// One timed compiled-mode run of a workload with the flight recorder on
/// or off: aggregate nodes/sec over the workload's repetitions, plus the
/// per-run counter signature for the identical-results check.
fn timed_run(w: &Workload, recorder: bool) -> (f64, (u64, u64, u64, u64), String) {
    let mut options = AnalysisOptions::with_order(w.order);
    options.exec_mode = ExecMode::Compiled;
    options.limits.max_transitions = w.cap;
    let mut secs = 0.0;
    let mut te_total = 0u64;
    let mut counters = (0, 0, 0, 0);
    let mut verdict = String::new();
    for _ in 0..w.reps.max(1) {
        let mut tel = if recorder {
            Telemetry::off().with_recorder(DEFAULT_RING_CAPACITY)
        } else {
            Telemetry::off()
        };
        let r = w
            .analyzer
            .analyze_with(&w.trace, &options, &mut tel)
            .expect("analysis runs");
        tel.finalize(&r.stats);
        secs += r.stats.wall_time.as_secs_f64();
        te_total += r.stats.transitions_executed;
        counters = (
            r.stats.transitions_executed,
            r.stats.generates,
            r.stats.restores,
            r.stats.saves,
        );
        verdict = r.verdict.to_string();
    }
    let nps = if secs > 0.0 { te_total as f64 / secs } else { 0.0 };
    (nps, counters, verdict)
}

/// Flight-recorder A/B on one workload: best-of-3 interleaved on/off
/// pairs. Returns (on, off) best nodes/sec; panics if the recorder
/// changes any verdict or counter (it must be pure observation).
fn recorder_overhead(w: &Workload) -> (f64, f64) {
    let mut best_on = 0.0f64;
    let mut best_off = 0.0f64;
    for _ in 0..3 {
        let (off_nps, off_counters, off_verdict) = timed_run(w, false);
        let (on_nps, on_counters, on_verdict) = timed_run(w, true);
        assert_eq!(
            (on_counters, &on_verdict),
            (off_counters, &off_verdict),
            "{}: the flight recorder changed the analysis",
            w.name
        );
        best_off = best_off.max(off_nps);
        best_on = best_on.max(on_nps);
    }
    (best_on, best_off)
}

/// One worker-count row of the multi-core MDFS scaling record.
struct ScaleRow {
    workers: usize,
    wall_seconds: f64,
    nodes_per_sec: f64,
    counters: (u64, u64, u64, u64),
    verdict: String,
}

/// Work-stealing MDFS scaling on the backtracking-heavy invalid TP0
/// trace (the §3.1 NR regime, where the search re-expands millions of
/// nodes): the same analysis at 1/2/4/8 workers. Counters must be
/// bit-identical across every row; the wall-clock column is only a
/// scaling measurement where the host actually has cores to scale onto.
fn mdfs_scaling(quick: bool) -> (String, usize, Vec<ScaleRow>) {
    let up = if quick { 3 } else { 4 };
    let name = format!("tp0-invalid-{0}+{0}-NR", up);
    let analyzer = tp0::analyzer();
    let trace = tp0::invalidate_last_data(&tp0::complete_valid_trace(up, up, 13))
        .expect("complete trace ends in DATA");
    let mut rows = Vec::new();
    for workers in [1usize, 2, 4, 8] {
        let mut options = AnalysisOptions::with_order(OrderOptions::none());
        options.workers = workers;
        let mut src = StaticSource::new(trace.clone());
        let t = std::time::Instant::now();
        let r = analyzer
            .analyze_online(&mut src, &options, &mut |_| true)
            .expect("analysis runs");
        let secs = t.elapsed().as_secs_f64();
        rows.push(ScaleRow {
            workers,
            wall_seconds: secs,
            nodes_per_sec: if secs > 0.0 {
                r.stats.transitions_executed as f64 / secs
            } else {
                0.0
            },
            counters: (
                r.stats.transitions_executed,
                r.stats.generates,
                r.stats.restores,
                r.stats.saves,
            ),
            verdict: r.verdict.to_string(),
        });
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    (name, cores, rows)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--check") {
        let path = args.get(1).map(String::as_str).unwrap_or(OUT_PATH);
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("generate_exec --check: cannot read {}: {}", path, e);
                std::process::exit(1);
            }
        };
        if let Err(e) = json::validate(&text) {
            eprintln!("generate_exec --check: {}: {}", path, e);
            std::process::exit(1);
        }
        if !text.contains("\"benchmark\": \"generate_exec\"") {
            eprintln!("generate_exec --check: {}: not a generate_exec record", path);
            std::process::exit(1);
        }
        if !text.contains("\"mdfs_scaling\"") || !text.contains("\"scaling_gate_ok\": true") {
            eprintln!(
                "generate_exec --check: {}: missing a passing mdfs_scaling record \
                 (identical counters at every worker count, and >=1.7x nodes/sec at \
                 4 workers on hosts with >=4 cores)",
                path
            );
            std::process::exit(1);
        }
        println!("{}: well-formed generate_exec record", path);
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");

    let mut rows = Vec::new();
    let mut gate_speedups: Vec<(String, f64)> = Vec::new();
    println!(
        "{:>24} {:>9} {:>12} {:>12} {:>10} {:>12}",
        "workload", "exec", "CPUT(s)", "nodes/s", "GE", "gen-mean(us)"
    );
    for mut w in workloads(quick) {
        let compiled =
            run_mode(&w.analyzer, &w.trace, w.order, ExecMode::Compiled, w.cap, w.reps);
        let interp = run_mode(&w.analyzer, &w.trace, w.order, ExecMode::Interp, w.cap, w.reps);
        apply_pgo(&mut w.analyzer, &w.trace, w.order, w.cap);
        let pgo = run_mode(&w.analyzer, &w.trace, w.order, ExecMode::Compiled, w.cap, w.reps);
        for (label, m) in [("compiled", &compiled), ("interp", &interp), ("pgo", &pgo)] {
            println!(
                "{:>24} {:>9} {:>12.3} {:>12.0} {:>10} {:>12.2}",
                w.name, label, m.cpu_seconds, m.nodes_per_sec, m.ge, m.gen_mean_us
            );
        }
        let same = compiled.verdict == interp.verdict
            && pgo.verdict == interp.verdict
            && (compiled.te, compiled.ge, compiled.re, compiled.sa)
                == (interp.te, interp.ge, interp.re, interp.sa)
            && (pgo.te, pgo.ge, pgo.re, pgo.sa) == (interp.te, interp.ge, interp.re, interp.sa)
            && compiled.gen_count == compiled.ge
            && interp.gen_count == interp.ge
            && pgo.gen_count == pgo.ge;
        assert!(
            same,
            "{}: executors disagree (verdict {} vs {} vs {}, TE/GE/RE/SA \
             {}/{}/{}/{} vs {}/{}/{}/{} vs {}/{}/{}/{})",
            w.name,
            compiled.verdict,
            interp.verdict,
            pgo.verdict,
            compiled.te,
            compiled.ge,
            compiled.re,
            compiled.sa,
            interp.te,
            interp.ge,
            interp.re,
            interp.sa,
            pgo.te,
            pgo.ge,
            pgo.re,
            pgo.sa
        );
        let speedup = if interp.nodes_per_sec > 0.0 && compiled.nodes_per_sec > 0.0 {
            compiled.nodes_per_sec / interp.nodes_per_sec
        } else {
            0.0
        };
        let pgo_speedup = if interp.nodes_per_sec > 0.0 && pgo.nodes_per_sec > 0.0 {
            pgo.nodes_per_sec / interp.nodes_per_sec
        } else {
            0.0
        };
        let latency_ratio = if compiled.gen_mean_us > 0.0 {
            interp.gen_mean_us / compiled.gen_mean_us
        } else {
            0.0
        };
        if w.gate {
            gate_speedups.push((w.name.clone(), pgo_speedup));
        }
        rows.push(format!(
            "    {{\"name\": \"{}\", \"order\": \"{}\", \"trace_len\": {}, \
             \"max_transitions\": {},\n     \"compiled\": {},\n     \
             \"interp\": {},\n     \"pgo\": {},\n     \
             \"speedup_nodes_per_sec\": {}, \"speedup_pgo_nodes_per_sec\": {}, \
             \"generate_latency_ratio\": {}, \"counters_match\": true}}",
            w.name,
            w.order.label(),
            w.trace.len(),
            w.cap,
            mode_json(&compiled),
            mode_json(&interp),
            mode_json(&pgo),
            json::number(speedup),
            json::number(pgo_speedup),
            json::number(latency_ratio)
        ));
    }

    // Flight-recorder overhead: the always-on black box must cost ≤5%
    // nodes/sec on a real row (best-of-3 interleaved A/B pairs).
    let overhead_row = workloads(quick)
        .into_iter()
        .next()
        .expect("at least one workload");
    let (on_nps, off_nps) = recorder_overhead(&overhead_row);
    let ratio = if off_nps > 0.0 { on_nps / off_nps } else { 0.0 };
    println!(
        "flight recorder on {}: {:.0} vs {:.0} nodes/s (ratio {:.3})",
        overhead_row.name, on_nps, off_nps, ratio
    );

    // Multi-core MDFS: 1/2/4/8-worker rows over the same search. The
    // counter gate is unconditional (the work-stealing schedule may
    // never leak into TE/GE/RE/SA); the throughput gate only binds
    // where the host has the cores to show it — on fewer cores the
    // workers time-slice one CPU and the honest measurement is the
    // bounded coordination overhead, not a speedup.
    let (scale_name, cores, scale_rows) = mdfs_scaling(quick);
    let base = &scale_rows[0];
    for r in &scale_rows {
        println!(
            "{:>24} {:>2} workers {:>10.3}s {:>12.0} nodes/s",
            scale_name, r.workers, r.wall_seconds, r.nodes_per_sec
        );
        assert_eq!(
            (r.counters, &r.verdict),
            (base.counters, &base.verdict),
            "{}: {} workers changed the verdict or a TE/GE/RE/SA counter",
            scale_name,
            r.workers
        );
    }
    let four = scale_rows
        .iter()
        .find(|r| r.workers == 4)
        .expect("4-worker row");
    let speedup_4w = if base.nodes_per_sec > 0.0 {
        four.nodes_per_sec / base.nodes_per_sec
    } else {
        0.0
    };
    println!(
        "{}: 4 workers = {:.2}x single-worker nodes/s on {} core(s)",
        scale_name, speedup_4w, cores
    );
    if !quick {
        if cores >= 4 {
            assert!(
                speedup_4w >= 1.7,
                "acceptance gate: expected >=1.7x nodes/sec at 4 workers on a \
                 {}-core host, got {:.2}x",
                cores,
                speedup_4w
            );
        } else {
            assert!(
                speedup_4w >= 1.0 / 1.6,
                "acceptance gate: 4-worker coordination overhead on a {}-core host \
                 must stay under 1.6x single-worker wall time, got {:.2}x",
                cores,
                1.0 / speedup_4w.max(1e-9)
            );
        }
    }
    let scale_json = scale_rows
        .iter()
        .map(|r| {
            format!(
                "      {{\"workers\": {}, \"wall_seconds\": {}, \"nodes_per_sec\": {}, \
                 \"te\": {}, \"ge\": {}, \"re\": {}, \"sa\": {}, \"verdict\": \"{}\"}}",
                r.workers,
                json::number(r.wall_seconds),
                json::number(r.nodes_per_sec),
                r.counters.0,
                r.counters.1,
                r.counters.2,
                r.counters.3,
                json::escape(&r.verdict)
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");

    let doc = format!(
        "{{\n  \"benchmark\": \"generate_exec\",\n  \"quick\": {},\n  \
         \"recorder_overhead\": {{\"workload\": \"{}\", \
         \"on_nodes_per_sec\": {}, \"off_nodes_per_sec\": {}, \
         \"ratio\": {}, \"counters_match\": true}},\n  \
         \"mdfs_scaling\": {{\"workload\": \"{}\", \"cores\": {}, \
         \"speedup_4_workers\": {}, \"counters_match\": true, \
         \"scaling_gate_ok\": true,\n    \"rows\": [\n{}\n    ]}},\n  \
         \"workloads\": [\n{}\n  ]\n}}\n",
        quick,
        json::escape(&overhead_row.name),
        json::number(on_nps),
        json::number(off_nps),
        json::number(ratio),
        json::escape(&scale_name),
        cores,
        json::number(speedup_4w),
        scale_json,
        rows.join(",\n")
    );
    json::validate(&doc).expect("emitted record is well-formed JSON");
    std::fs::write(OUT_PATH, &doc).expect("write BENCH_generate.json");
    println!("\nwrote {}", OUT_PATH);

    for (name, speedup) in &gate_speedups {
        println!("{}: compiled+pgo {:.2}x interp throughput", name, speedup);
    }
    if !quick {
        assert!(
            gate_speedups.iter().any(|(_, s)| *s >= 3.0),
            "acceptance gate: expected >=3x compiled+PGO speedup on a LAPD workload, got {:?}",
            gate_speedups
        );
        assert!(
            ratio >= 0.95,
            "acceptance gate: flight recorder overhead must be <=5% nodes/sec \
             (on {:.0} vs off {:.0}, ratio {:.3})",
            on_nps,
            off_nps,
            ratio
        );
    }
}
