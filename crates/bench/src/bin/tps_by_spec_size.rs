//! §4 throughput claim: transitions searched per second vs. spec size.
//!
//! "For simple test-specifications with under 10 transition declarations,
//! TAMs can search up to 250 transitions per second. For … TP0 (19
//! transition declarations) … between 40 and 60 … LAPD (over 800
//! transition declarations) … only 10."
//!
//! The absolute numbers belong to a 1995 SUN 4; the *inverse relation*
//! between declaration count and throughput is the claim to reproduce.
//! Synthetic ring specifications give a controlled declaration-count
//! sweep; TP0 and LAPD are measured alongside for reference. Every row
//! is measured under both fixed executors (`--exec` A/B): the bytecode
//! VM with its by-control-state dispatch index, and the tree-walking
//! reference interpreter — the relation must hold in both columns, and
//! the search totals must be identical across them.
//!
//! Each row also records the `auto` column: which executor the default
//! cost model (`ExecMode::Auto`) resolves to for that spec. Auto
//! selection happens once at analyzer-build time, so its throughput *is*
//! the resolved executor's throughput — the row copies it and the
//! `speedup_auto_trans_per_sec` ratio (auto vs. the tree walker) asserts
//! the cost model never picks the slower executor. An untimed Auto run
//! double-checks the verdict and TE/GE/RE/SA totals match.
//!
//! Timing: every measurement loops the analysis until a minimum total
//! duration is reached (200ms full, 5ms quick) and reports the
//! nanosecond-precision *mean* per-run duration — single-shot timing
//! used to flatten fast rows to `cpu_seconds: 0.000`. The best of
//! several passes is kept to shed scheduler noise.
//!
//! The rows are recorded in `BENCH_tps.json` at the repo root.
//!
//! ```sh
//! cargo run -p bench --bin tps_by_spec_size --release            # full record
//! cargo run -p bench --bin tps_by_spec_size --release -- --quick # CI smoke
//! cargo run -p bench --bin tps_by_spec_size -- --check FILE      # validate JSON
//! ```

use bench::json;
use estelle_runtime::ExecMode;
use protocols::synthetic::SyntheticSpec;
use protocols::{lapd, tp0};
use std::time::Duration;
use tango::{AnalysisOptions, ChoicePolicy, OrderOptions, Trace, TraceAnalyzer};

const OUT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_tps.json");

struct Row {
    spec: String,
    decls: usize,
    trace_len: usize,
}

#[derive(Clone)]
struct ExecResult {
    te: u64,
    /// Search totals that must be identical across executors:
    /// (TE, GE, RE, SA).
    totals: (u64, u64, u64, u64),
    /// Mean wall time of one analysis run, seconds (ns precision).
    cpu_seconds: f64,
    tps: f64,
    verdict: String,
}

/// Measure one executor on one workload: loop the analysis until the
/// pass accumulates at least `min_total`, repeat for `passes` passes and
/// keep the fastest (scheduler noise only ever slows a run down).
fn run_exec(analyzer: &TraceAnalyzer, trace: &Trace, exec: ExecMode, quick: bool) -> ExecResult {
    let mut options = AnalysisOptions::with_order(OrderOptions::none());
    options.exec_mode = exec;
    let min_total = if quick {
        Duration::from_millis(5)
    } else {
        Duration::from_millis(200)
    };
    let passes = if quick { 1 } else { 3 };

    // Totals and verdict come from an untimed first run (also a warmup).
    let first = analyzer.analyze(trace, &options).expect("analysis runs");
    let totals = (
        first.stats.transitions_executed,
        first.stats.generates,
        first.stats.restores,
        first.stats.saves,
    );

    let mut best_tps = 0.0f64;
    let mut best_mean = f64::INFINITY;
    for _ in 0..passes {
        let mut total = Duration::ZERO;
        let mut total_te = 0u64;
        let mut reps = 0u32;
        while reps == 0 || total < min_total {
            let report = analyzer.analyze(trace, &options).expect("analysis runs");
            total += report.stats.wall_time;
            total_te += report.stats.transitions_executed;
            reps += 1;
        }
        let secs = total.as_secs_f64();
        let tps = if secs > 0.0 { total_te as f64 / secs } else { 0.0 };
        if tps > best_tps {
            best_tps = tps;
            best_mean = secs / reps as f64;
        }
    }

    ExecResult {
        te: totals.0,
        totals,
        cpu_seconds: best_mean,
        tps: best_tps,
        verdict: first.verdict.to_string(),
    }
}

fn exec_json(r: &ExecResult) -> String {
    format!(
        "{{\"te\": {}, \"cpu_seconds\": {}, \"trans_per_sec\": {}, \"verdict\": \"{}\"}}",
        r.te,
        json::number_ns(r.cpu_seconds),
        json::number(r.tps),
        json::escape(&r.verdict)
    )
}

fn measure(row: Row, analyzer: &TraceAnalyzer, trace: &Trace, quick: bool, rows: &mut Vec<String>) {
    let compiled = run_exec(analyzer, trace, ExecMode::Compiled, quick);
    let interp = run_exec(analyzer, trace, ExecMode::Interp, quick);
    assert_eq!(
        (compiled.totals, &compiled.verdict),
        (interp.totals, &interp.verdict),
        "{}: executors must do identical search work",
        row.spec
    );

    // The cost model resolves Auto once per spec; its throughput is the
    // resolved executor's. An untimed Auto run pins the search totals.
    let resolved = analyzer.machine.exec_view(ExecMode::Auto).resolved_exec();
    let auto = match resolved {
        ExecMode::Interp => interp.clone(),
        _ => compiled.clone(),
    };
    {
        let mut options = AnalysisOptions::with_order(OrderOptions::none());
        options.exec_mode = ExecMode::Auto;
        let check = analyzer.analyze(trace, &options).expect("analysis runs");
        assert_eq!(
            (
                check.stats.transitions_executed,
                check.stats.generates,
                check.stats.restores,
                check.stats.saves,
                check.verdict.to_string(),
            ),
            (
                auto.totals.0,
                auto.totals.1,
                auto.totals.2,
                auto.totals.3,
                auto.verdict.clone(),
            ),
            "{}: auto mode must match its resolved executor exactly",
            row.spec
        );
    }

    for (label, r) in [
        ("compiled", &compiled),
        ("interp", &interp),
        (resolved.name(), &auto),
    ] {
        println!(
            "{:>14} {:>8} {:>9} {:>12} {:>14.9} {:>14.0}",
            row.spec, row.decls, label, r.te, r.cpu_seconds, r.tps
        );
    }
    let speedup = |num: f64, den: f64| if den > 0.0 { num / den } else { 0.0 };
    rows.push(format!(
        "    {{\"spec\": \"{}\", \"decls\": {}, \"trace_len\": {},\n     \
         \"compiled\": {},\n     \"interp\": {},\n     \
         \"auto\": {{\"resolved\": \"{}\", \"trans_per_sec\": {}}},\n     \
         \"speedup_trans_per_sec\": {},\n     \
         \"speedup_auto_trans_per_sec\": {}}}",
        json::escape(&row.spec),
        row.decls,
        row.trace_len,
        exec_json(&compiled),
        exec_json(&interp),
        resolved.name(),
        json::number(auto.tps),
        json::number(speedup(compiled.tps, interp.tps)),
        json::number(speedup(auto.tps, interp.tps)),
    ));
}

fn check(path: &str) {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("tps_by_spec_size --check: cannot read {}: {}", path, e);
            std::process::exit(1);
        }
    };
    if let Err(e) = json::validate(&text) {
        eprintln!("tps_by_spec_size --check: {}: {}", path, e);
        std::process::exit(1);
    }
    // Row schema: every row carries both executor columns plus the
    // auto-selection column.
    for key in [
        "\"benchmark\": \"tps_by_spec_size\"",
        "\"compiled\":",
        "\"interp\":",
        "\"auto\":",
        "\"speedup_trans_per_sec\":",
        "\"speedup_auto_trans_per_sec\":",
    ] {
        if !text.contains(key) {
            eprintln!("tps_by_spec_size --check: {}: missing {} in record", path, key);
            std::process::exit(1);
        }
    }
    // The auto gate: the default executor must never be slower than the
    // tree walker on any recorded row.
    let speedups = json::numbers_for_key(&text, "speedup_auto_trans_per_sec");
    if speedups.is_empty() {
        eprintln!("tps_by_spec_size --check: {}: no auto speedup values", path);
        std::process::exit(1);
    }
    for s in &speedups {
        if *s < 1.0 {
            eprintln!(
                "tps_by_spec_size --check: {}: a row has speedup_auto_trans_per_sec {} < 1.0 — \
                 the auto cost model picked the slower executor",
                path, s
            );
            std::process::exit(1);
        }
    }
    println!(
        "{}: well-formed tps_by_spec_size record, auto speedups all >= 1.0 ({} rows)",
        path,
        speedups.len()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--check") {
        check(args.get(1).map(String::as_str).unwrap_or(OUT_PATH));
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");

    println!(
        "{:>14} {:>8} {:>9} {:>12} {:>14} {:>14}",
        "spec", "decls", "exec", "TE", "mean CPUT(s)", "trans/sec"
    );

    let mut rows = Vec::new();
    let sweep: &[usize] = if quick {
        &[5, 50]
    } else {
        &[5, 19, 50, 100, 200, 400, 800]
    };
    let steps = if quick { 50 } else { 400 };
    for &decls in sweep {
        let spec = SyntheticSpec::new(4, decls);
        let analyzer = spec.analyzer();
        let trace = analyzer
            .generate_trace(&spec.workload(steps), ChoicePolicy::First, 100_000)
            .expect("workload runs");
        measure(
            Row {
                spec: "synthetic".to_string(),
                decls,
                trace_len: trace.len(),
            },
            &analyzer,
            &trace,
            quick,
            &mut rows,
        );
    }

    // Reference points: the paper's two protocols.
    let di = if quick { 10 } else { 60 };
    {
        let analyzer = tp0::analyzer();
        let trace = tp0::valid_trace(di, di, 4);
        measure(
            Row {
                spec: "tp0".to_string(),
                decls: analyzer.module().declared_transition_count(),
                trace_len: trace.len(),
            },
            &analyzer,
            &trace,
            quick,
            &mut rows,
        );
    }
    {
        let analyzer = lapd::analyzer();
        let trace = lapd::valid_trace(di, 0, 4);
        measure(
            Row {
                spec: "lapd".to_string(),
                decls: analyzer.module().declared_transition_count(),
                trace_len: trace.len(),
            },
            &analyzer,
            &trace,
            quick,
            &mut rows,
        );
    }
    {
        // The paper's LAPD size class: 800+ compiled transitions.
        let analyzer = lapd::analyzer_expanded();
        let trace = lapd::valid_trace(di, 0, 4);
        measure(
            Row {
                spec: "lapd-800".to_string(),
                decls: analyzer.machine.module.transition_count(),
                trace_len: trace.len(),
            },
            &analyzer,
            &trace,
            quick,
            &mut rows,
        );
    }

    let doc = format!(
        "{{\n  \"benchmark\": \"tps_by_spec_size\",\n  \"quick\": {},\n  \
         \"rows\": [\n{}\n  ]\n}}\n",
        quick,
        rows.join(",\n")
    );
    json::validate(&doc).expect("emitted record is well-formed JSON");
    std::fs::write(OUT_PATH, &doc).expect("write BENCH_tps.json");
    println!("\nwrote {}", OUT_PATH);
}
