//! §4 throughput claim: transitions searched per second vs. spec size.
//!
//! "For simple test-specifications with under 10 transition declarations,
//! TAMs can search up to 250 transitions per second. For … TP0 (19
//! transition declarations) … between 40 and 60 … LAPD (over 800
//! transition declarations) … only 10."
//!
//! The absolute numbers belong to a 1995 SUN 4; the *inverse relation*
//! between declaration count and throughput is the claim to reproduce.
//! Synthetic ring specifications give a controlled declaration-count
//! sweep; TP0 and LAPD are measured alongside for reference. Every row
//! is measured under both executors (`--exec` A/B): the bytecode VM
//! with its by-control-state dispatch index, and the tree-walking
//! reference interpreter — the relation must hold in both columns, and
//! the search totals must be identical across them. The rows are
//! recorded in `BENCH_tps.json` at the repo root.
//!
//! ```sh
//! cargo run -p bench --bin tps_by_spec_size --release            # full record
//! cargo run -p bench --bin tps_by_spec_size --release -- --quick # CI smoke
//! cargo run -p bench --bin tps_by_spec_size -- --check FILE      # validate JSON
//! ```

use bench::json;
use estelle_runtime::ExecMode;
use protocols::synthetic::SyntheticSpec;
use protocols::{lapd, tp0};
use tango::{AnalysisOptions, ChoicePolicy, OrderOptions, Trace, TraceAnalyzer};

const OUT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_tps.json");

struct Row {
    spec: String,
    decls: usize,
    trace_len: usize,
}

struct ExecResult {
    te: u64,
    cpu_seconds: f64,
    tps: f64,
    verdict: String,
}

fn run_exec(analyzer: &TraceAnalyzer, trace: &Trace, exec: ExecMode) -> ExecResult {
    let mut options = AnalysisOptions::with_order(OrderOptions::none());
    options.exec_mode = exec;
    let report = analyzer.analyze(trace, &options).expect("analysis runs");
    ExecResult {
        te: report.stats.transitions_executed,
        cpu_seconds: report.stats.wall_time.as_secs_f64(),
        tps: report.stats.transitions_per_second(),
        verdict: report.verdict.to_string(),
    }
}

fn exec_json(r: &ExecResult) -> String {
    format!(
        "{{\"te\": {}, \"cpu_seconds\": {}, \"trans_per_sec\": {}, \"verdict\": \"{}\"}}",
        r.te,
        json::number(r.cpu_seconds),
        json::number(r.tps),
        json::escape(&r.verdict)
    )
}

fn measure(row: Row, analyzer: &TraceAnalyzer, trace: &Trace, rows: &mut Vec<String>) {
    let compiled = run_exec(analyzer, trace, ExecMode::Compiled);
    let interp = run_exec(analyzer, trace, ExecMode::Interp);
    assert_eq!(
        (compiled.te, &compiled.verdict),
        (interp.te, &interp.verdict),
        "{}: executors must do identical search work",
        row.spec
    );
    for (label, r) in [("compiled", &compiled), ("interp", &interp)] {
        println!(
            "{:>14} {:>8} {:>9} {:>12} {:>12.3} {:>14.0}",
            row.spec, row.decls, label, r.te, r.cpu_seconds, r.tps
        );
    }
    rows.push(format!(
        "    {{\"spec\": \"{}\", \"decls\": {}, \"trace_len\": {},\n     \
         \"compiled\": {},\n     \"interp\": {},\n     \
         \"speedup_trans_per_sec\": {}}}",
        json::escape(&row.spec),
        row.decls,
        row.trace_len,
        exec_json(&compiled),
        exec_json(&interp),
        json::number(if interp.tps > 0.0 {
            compiled.tps / interp.tps
        } else {
            0.0
        })
    ));
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--check") {
        let path = args.get(1).map(String::as_str).unwrap_or(OUT_PATH);
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("tps_by_spec_size --check: cannot read {}: {}", path, e);
                std::process::exit(1);
            }
        };
        if let Err(e) = json::validate(&text) {
            eprintln!("tps_by_spec_size --check: {}: {}", path, e);
            std::process::exit(1);
        }
        // Row schema: every row carries both executor columns.
        for key in [
            "\"benchmark\": \"tps_by_spec_size\"",
            "\"compiled\":",
            "\"interp\":",
            "\"speedup_trans_per_sec\":",
        ] {
            if !text.contains(key) {
                eprintln!(
                    "tps_by_spec_size --check: {}: missing {} in record",
                    path, key
                );
                std::process::exit(1);
            }
        }
        println!("{}: well-formed tps_by_spec_size record", path);
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");

    println!(
        "{:>14} {:>8} {:>9} {:>12} {:>12} {:>14}",
        "spec", "decls", "exec", "TE", "CPUT(s)", "trans/sec"
    );

    let mut rows = Vec::new();
    let sweep: &[usize] = if quick {
        &[5, 50]
    } else {
        &[5, 19, 50, 100, 200, 400, 800]
    };
    let steps = if quick { 50 } else { 400 };
    for &decls in sweep {
        let spec = SyntheticSpec::new(4, decls);
        let analyzer = spec.analyzer();
        let trace = analyzer
            .generate_trace(&spec.workload(steps), ChoicePolicy::First, 100_000)
            .expect("workload runs");
        measure(
            Row {
                spec: "synthetic".to_string(),
                decls,
                trace_len: trace.len(),
            },
            &analyzer,
            &trace,
            &mut rows,
        );
    }

    // Reference points: the paper's two protocols.
    let di = if quick { 10 } else { 60 };
    {
        let analyzer = tp0::analyzer();
        let trace = tp0::valid_trace(di, di, 4);
        measure(
            Row {
                spec: "tp0".to_string(),
                decls: analyzer.module().declared_transition_count(),
                trace_len: trace.len(),
            },
            &analyzer,
            &trace,
            &mut rows,
        );
    }
    {
        let analyzer = lapd::analyzer();
        let trace = lapd::valid_trace(di, 0, 4);
        measure(
            Row {
                spec: "lapd".to_string(),
                decls: analyzer.module().declared_transition_count(),
                trace_len: trace.len(),
            },
            &analyzer,
            &trace,
            &mut rows,
        );
    }
    {
        // The paper's LAPD size class: 800+ compiled transitions.
        let analyzer = lapd::analyzer_expanded();
        let trace = lapd::valid_trace(di, 0, 4);
        measure(
            Row {
                spec: "lapd-800".to_string(),
                decls: analyzer.machine.module.transition_count(),
                trace_len: trace.len(),
            },
            &analyzer,
            &trace,
            &mut rows,
        );
    }

    let doc = format!(
        "{{\n  \"benchmark\": \"tps_by_spec_size\",\n  \"quick\": {},\n  \
         \"rows\": [\n{}\n  ]\n}}\n",
        quick,
        rows.join(",\n")
    );
    json::validate(&doc).expect("emitted record is well-formed JSON");
    std::fs::write(OUT_PATH, &doc).expect("write BENCH_tps.json");
    println!("\nwrote {}", OUT_PATH);
}
