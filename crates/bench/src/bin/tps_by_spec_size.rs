//! §4 throughput claim: transitions searched per second vs. spec size.
//!
//! "For simple test-specifications with under 10 transition declarations,
//! TAMs can search up to 250 transitions per second. For … TP0 (19
//! transition declarations) … between 40 and 60 … LAPD (over 800
//! transition declarations) … only 10."
//!
//! The absolute numbers belong to a 1995 SUN 4; the *inverse relation*
//! between declaration count and throughput is the claim to reproduce.
//! Synthetic ring specifications give a controlled declaration-count
//! sweep; TP0 and LAPD are measured alongside for reference.
//!
//! ```sh
//! cargo run -p bench --bin tps_by_spec_size --release
//! ```

use protocols::synthetic::SyntheticSpec;
use protocols::{lapd, tp0};
use tango::{AnalysisOptions, ChoicePolicy, OrderOptions};

fn main() {
    println!(
        "{:>14} {:>8} {:>12} {:>12} {:>14}",
        "spec", "decls", "TE", "CPUT(s)", "trans/sec"
    );

    for decls in [5usize, 19, 50, 100, 200, 400, 800] {
        let spec = SyntheticSpec::new(4, decls);
        let analyzer = spec.analyzer();
        let trace = analyzer
            .generate_trace(&spec.workload(400), ChoicePolicy::First, 100_000)
            .expect("workload runs");
        let report = analyzer
            .analyze(&trace, &AnalysisOptions::with_order(OrderOptions::none()))
            .expect("analysis runs");
        println!(
            "{:>14} {:>8} {:>12} {:>12.3} {:>14.0}",
            "synthetic",
            decls,
            report.stats.transitions_executed,
            report.stats.wall_time.as_secs_f64(),
            report.stats.transitions_per_second()
        );
    }

    // Reference points: the paper's two protocols.
    {
        let analyzer = tp0::analyzer();
        let trace = tp0::valid_trace(60, 60, 4);
        let report = analyzer
            .analyze(&trace, &AnalysisOptions::with_order(OrderOptions::none()))
            .unwrap();
        println!(
            "{:>14} {:>8} {:>12} {:>12.3} {:>14.0}",
            "tp0",
            analyzer.module().declared_transition_count(),
            report.stats.transitions_executed,
            report.stats.wall_time.as_secs_f64(),
            report.stats.transitions_per_second()
        );
    }
    {
        let analyzer = lapd::analyzer();
        let trace = lapd::valid_trace(60, 0, 4);
        let report = analyzer
            .analyze(&trace, &AnalysisOptions::with_order(OrderOptions::none()))
            .unwrap();
        println!(
            "{:>14} {:>8} {:>12} {:>12.3} {:>14.0}",
            "lapd",
            analyzer.module().declared_transition_count(),
            report.stats.transitions_executed,
            report.stats.wall_time.as_secs_f64(),
            report.stats.transitions_per_second()
        );
    }
    {
        // The paper's LAPD size class: 800+ compiled transitions.
        let analyzer = lapd::analyzer_expanded();
        let trace = lapd::valid_trace(60, 0, 4);
        let report = analyzer
            .analyze(&trace, &AnalysisOptions::with_order(OrderOptions::none()))
            .unwrap();
        println!(
            "{:>14} {:>8} {:>12} {:>12.3} {:>14.0}",
            "lapd-800",
            analyzer.machine.module.transition_count(),
            report.stats.transitions_executed,
            report.stats.wall_time.as_secs_f64(),
            report.stats.transitions_per_second()
        );
    }
}
