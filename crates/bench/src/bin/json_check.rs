//! Validate hand-rolled JSON artifacts: benchmark records, metrics
//! documents and JSONL event streams.
//!
//! The workspace vendors no JSON crate, so everything the tools emit —
//! `BENCH_*.json`, `tango analyze --metrics-out`, `--trace-out` — is
//! written by hand and kept honest by `bench::json::validate`. This
//! binary is the command-line face of that checker for CI:
//!
//! ```sh
//! cargo run -p bench --bin json_check -- metrics.json          # one document
//! cargo run -p bench --bin json_check -- --jsonl events.jsonl  # one per line
//! ```
//!
//! Exits non-zero on the first malformed document, naming the file (and
//! line, for `--jsonl`) that failed.

use bench::json;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut jsonl = false;
    let mut files = Vec::new();
    for a in &args {
        match a.as_str() {
            "--jsonl" => jsonl = true,
            "-h" | "--help" => {
                eprintln!("usage: json_check [--jsonl] FILE...");
                return ExitCode::FAILURE;
            }
            f => files.push(f),
        }
    }
    if files.is_empty() {
        eprintln!("usage: json_check [--jsonl] FILE...");
        return ExitCode::FAILURE;
    }
    for path in files {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("json_check: cannot read {}: {}", path, e);
                return ExitCode::FAILURE;
            }
        };
        if jsonl {
            let mut n = 0usize;
            for (i, line) in text.lines().enumerate() {
                if line.trim().is_empty() {
                    continue;
                }
                if let Err(e) = json::validate(line) {
                    eprintln!("json_check: {}:{}: {}", path, i + 1, e);
                    return ExitCode::FAILURE;
                }
                n += 1;
            }
            println!("{}: {} well-formed JSONL line(s)", path, n);
        } else {
            if let Err(e) = json::validate(&text) {
                eprintln!("json_check: {}: {}", path, e);
                return ExitCode::FAILURE;
            }
            println!("{}: well-formed JSON", path);
        }
    }
    ExitCode::SUCCESS
}
