//! Ablation: the visited-state hash table the paper proposes as future
//! work.
//!
//! §4.2: "Another useful approach might be to keep information about
//! which states were reached during the search in a hash table, to
//! prevent the analysis of the same state twice." This is implemented
//! behind `AnalysisOptions::state_hashing`; the ablation measures its
//! effect on the pathological workload that motivated it — invalid TP0
//! traces, where distinct interleavings of t13–t16 reconverge to the same
//! (buffers, cursors) state.
//!
//! ```sh
//! cargo run -p bench --bin ablation_hashing --release
//! ```

use bench::{print_table, Row};
use protocols::tp0;
use tango::{AnalysisOptions, OrderOptions};

fn main() {
    let analyzer = tp0::analyzer();
    for order in [OrderOptions::none(), OrderOptions::full()] {
        let mut rows = Vec::new();
        for (up, down) in [(2usize, 2usize), (3, 3), (4, 4), (5, 5)] {
            let bad = tp0::invalidate_last_data(&tp0::complete_valid_trace(up, down, 13)).unwrap();
            for hashing in [false, true] {
                let mut options = AnalysisOptions::with_order(order);
                options.state_hashing = hashing;
                options.limits.max_transitions = 20_000_000;
                let report = analyzer.analyze(&bad, &options).unwrap();
                let mut row = Row::from_report(
                    format!("{}+{}{}", up, down, if hashing { "#" } else { " " }),
                    &report,
                );
                row.fanout = report.stats.hash_prunes as f64;
                rows.push(row);
            }
        }
        print_table(
            &format!(
                "Invalid TP0 under {} checking — '#' rows have state hashing on",
                order.label()
            ),
            "data",
            &rows,
        );
        for r in &rows {
            if r.key.ends_with('#') {
                println!("  {}: {} states pruned by the hash table", r.key, r.fanout);
            }
        }
    }
}
