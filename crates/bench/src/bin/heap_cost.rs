//! §3.2.2 — the cost of dynamic memory in state saves/restores.
//!
//! "The saving and restoring operations on dynamic memory … require
//! substantially more memory and CPU time than they do in standard DFS."
//! Both TP0 variants accept exactly the same traces; the only difference
//! is buffer representation — pointer-linked heap cells vs. a bounded
//! array. Analyzing the same invalid trace (heavy backtracking ⇒ heavy
//! save/restore traffic) against both isolates the heap's share of the
//! state-snapshot cost.
//!
//! ```sh
//! cargo run -p bench --bin heap_cost --release
//! ```

use protocols::tp0;
use tango::{AnalysisOptions, OrderOptions};

fn main() {
    let heap = tp0::analyzer();
    let bounded = tp0::analyzer_bounded();
    println!(
        "{:>8} {:>10} {:>12} {:>12} {:>12}",
        "variant", "data", "TE", "SA", "CPUT(s)"
    );
    for (up, down) in [(3usize, 3usize), (4, 4)] {
        let bad = tp0::invalidate_last_data(&tp0::complete_valid_trace(up, down, 13)).unwrap();
        for (label, analyzer) in [("heap", &heap), ("array", &bounded)] {
            let mut options = AnalysisOptions::with_order(OrderOptions::none());
            options.limits.max_transitions = 30_000_000;
            let r = analyzer.analyze(&bad, &options).unwrap();
            println!(
                "{:>8} {:>10} {:>12} {:>12} {:>12.3}",
                label,
                format!("{}+{}", up, down),
                r.stats.transitions_executed,
                r.stats.saves,
                r.stats.wall_time.as_secs_f64()
            );
        }
    }
    println!(
        "\nSame TE/SA counts (the search trees are identical); the CPUT gap\n\
         is pure state-snapshot cost. Note the direction: with only a\n\
         handful of live cells, cloning the heap is *cheaper* than cloning\n\
         a pre-allocated 64-slot array — snapshot cost tracks live state\n\
         size, which is the general form of the paper's §3.2.2 warning\n\
         (their heaps were large relative to their scalar state)."
    );
}
