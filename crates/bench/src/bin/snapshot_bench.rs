//! Copy-on-write Save/Restore vs. the eager deep-clone baseline.
//!
//! The paper's §3.2 names *Save* and *Restore* as the dominant cost of
//! trace analysis. This benchmark runs the same TP0 and LAPD workloads
//! under `cow_snapshots = true` (chunked COW heap + snapshot interning)
//! and `cow_snapshots = false` (the original eager deep clone on every
//! save and restore), checks that the verdicts and the TE/GE/RE/SA
//! counters are identical in both modes, and records the throughput
//! (nodes/sec), peak resident snapshot bytes and per-operation
//! save/restore latencies in `BENCH_snapshots.json` at the repo root.
//!
//! ```sh
//! cargo run -p bench --bin snapshot_bench --release            # full record
//! cargo run -p bench --bin snapshot_bench --release -- --quick # CI smoke (<5 s)
//! cargo run -p bench --bin snapshot_bench -- --check FILE      # validate JSON
//! ```

use bench::json;
use estelle_runtime::{Machine, Value};
use protocols::{lapd, tp0};
use std::hint::black_box;
use std::time::Instant;
use tango::{AnalysisOptions, OrderOptions, Trace, TraceAnalyzer};

const OUT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_snapshots.json");

/// One analysis run under one snapshot mode.
struct ModeResult {
    cpu_seconds: f64,
    nodes_per_sec: f64,
    peak_snapshot_bytes: usize,
    intern_hits: u64,
    te: u64,
    ge: u64,
    re: u64,
    sa: u64,
    verdict: String,
    /// Full `tango-metrics` document for this run, embedded in the record
    /// so downstream tooling gets the same schema `--metrics-out` writes.
    metrics: String,
}

fn run_mode(
    analyzer: &TraceAnalyzer,
    trace: &Trace,
    order: OrderOptions,
    cow: bool,
    max_transitions: u64,
) -> ModeResult {
    let mut options = AnalysisOptions::with_order(order);
    options.cow_snapshots = cow;
    options.limits.max_transitions = max_transitions;
    let r = analyzer.analyze(trace, &options).expect("analysis runs");
    ModeResult {
        cpu_seconds: r.stats.wall_time.as_secs_f64(),
        nodes_per_sec: r.stats.transitions_per_second(),
        peak_snapshot_bytes: r.stats.peak_snapshot_bytes,
        intern_hits: r.stats.intern_hits,
        te: r.stats.transitions_executed,
        ge: r.stats.generates,
        re: r.stats.restores,
        sa: r.stats.saves,
        verdict: r.verdict.to_string(),
        metrics: bench::metrics_json(&r),
    }
}

fn mode_json(m: &ModeResult) -> String {
    format!(
        "{{\"cpu_seconds\": {}, \"nodes_per_sec\": {}, \"peak_snapshot_bytes\": {}, \
         \"intern_hits\": {}, \"te\": {}, \"ge\": {}, \"re\": {}, \"sa\": {}, \"verdict\": \"{}\", \
         \"metrics\": {}}}",
        json::number(m.cpu_seconds),
        json::number(m.nodes_per_sec),
        m.peak_snapshot_bytes,
        m.intern_hits,
        m.te,
        m.ge,
        m.re,
        m.sa,
        json::escape(&m.verdict),
        m.metrics.trim_end()
    )
}

struct Workload {
    name: String,
    protocol: &'static str,
    order: OrderOptions,
    trace: Trace,
    /// Transition cap for this row. Rows that hit it measure a *fixed
    /// amount of search work* (identical TE in both modes), rows that
    /// finish under it measure the complete analysis.
    cap: u64,
    /// Counts toward the ≥2× TP0 acceptance gate.
    gate: bool,
}

fn workloads(quick: bool) -> Vec<Workload> {
    let mut w = Vec::new();
    // TP0: invalid complete traces — the last DATA is corrupted, so the
    // search backtracks over every interleaving before rejecting. Heavy
    // backtracking ⇒ heavy Save/Restore traffic (the paper's Figure 4
    // regime). NR keeps the fanout at its worst. Two shapes:
    //
    // * small symmetric (3+3, 4+4): Figure 4's own sizes, run to the
    //   Invalid verdict — but states hold only a handful of buffered
    //   cells, so Save/Restore is a minor share of the runtime;
    // * long upload-heavy (100+0 .. 200+0, trace lengths 206–406, the
    //   same event-count range as LAPD at DI=100): the send buffer holds
    //   up to `up` live cells, so state snapshots dominate. These explode
    //   exponentially, so the rows are transition-capped — a fixed 5M-TE
    //   slice of the same search in both modes. This is the gate regime:
    //   the paper-length workload where Save/Restore is the §3.2
    //   dominant cost.
    let tp0_sizes: &[(usize, usize, u64)] = if quick {
        &[(2, 2, 2_000_000)]
    } else {
        &[
            (3, 3, 50_000_000),
            (4, 4, 50_000_000),
            (100, 0, 5_000_000),
            (150, 0, 5_000_000),
            (200, 0, 5_000_000),
        ]
    };
    for &(up, down, cap) in tp0_sizes {
        let bad = tp0::invalidate_last_data(&tp0::complete_valid_trace(up, down, 13))
            .expect("complete trace ends in DATA");
        w.push(Workload {
            name: format!("tp0-invalid-{}+{}-NR", up, down),
            protocol: "tp0",
            order: OrderOptions::none(),
            trace: bad,
            cap,
            gate: up >= 100,
        });
    }
    // LAPD: valid traces at the paper's Figure 3 DI sizes (linear search,
    // one save per branching node — measures steady-state save cost).
    let lapd_sizes: &[usize] = if quick { &[5] } else { &[50, 100] };
    for &di in lapd_sizes {
        w.push(Workload {
            name: format!("lapd-valid-DI{}-FULL", di),
            protocol: "lapd",
            order: OrderOptions::full(),
            trace: lapd::valid_trace(di, di, di as u64),
            cap: 50_000_000,
            gate: false,
        });
    }
    w
}

/// Micro-benchmark the Save and Restore primitives on a TP0 machine state
/// whose heap holds `cells` live cells, in microseconds per operation.
fn micro(cells: usize, iters: u32) -> [f64; 4] {
    let machine = Machine::from_source(tp0::SOURCE).expect("TP0 compiles");
    let mut st = machine.initial_state().expect("initial state");
    for i in 0..cells {
        st.heap.alloc(Value::Record(vec![
            Value::Int(i as i64),
            Value::Pointer(None),
        ]));
    }
    let per_op = |f: &mut dyn FnMut()| {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        t.elapsed().as_secs_f64() * 1e6 / iters as f64
    };
    // Save: what DFS pays per pushed frame. Restore: re-materializing the
    // live state from a saved frame on backtrack.
    let cow_save = per_op(&mut || {
        black_box(st.snapshot());
    });
    let deep_save = per_op(&mut || {
        black_box(st.deep_snapshot());
    });
    let saved = st.snapshot();
    let cow_restore = per_op(&mut || {
        black_box(saved.snapshot());
    });
    let saved_deep = st.deep_snapshot();
    let deep_restore = per_op(&mut || {
        black_box(saved_deep.deep_snapshot());
    });
    [cow_save, cow_restore, deep_save, deep_restore]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--check") {
        let path = args.get(1).map(String::as_str).unwrap_or(OUT_PATH);
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("snapshot_bench --check: cannot read {}: {}", path, e);
                std::process::exit(1);
            }
        };
        if let Err(e) = json::validate(&text) {
            eprintln!("snapshot_bench --check: {}: {}", path, e);
            std::process::exit(1);
        }
        if !text.contains("\"benchmark\": \"snapshot_bench\"") {
            eprintln!("snapshot_bench --check: {}: not a snapshot_bench record", path);
            std::process::exit(1);
        }
        println!("{}: well-formed snapshot_bench record", path);
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");

    let tp0_analyzer = tp0::analyzer();
    let lapd_analyzer = lapd::analyzer();

    let mut rows = Vec::new();
    let mut gate_speedups: Vec<(String, f64)> = Vec::new();
    println!(
        "{:>22} {:>6} {:>12} {:>12} {:>8} {:>12} {:>10}",
        "workload", "mode", "CPUT(s)", "nodes/s", "SA", "peak bytes", "interned"
    );
    for w in workloads(quick) {
        let analyzer = if w.protocol == "tp0" {
            &tp0_analyzer
        } else {
            &lapd_analyzer
        };
        let cow = run_mode(analyzer, &w.trace, w.order, true, w.cap);
        let deep = run_mode(analyzer, &w.trace, w.order, false, w.cap);
        for (label, m) in [("cow", &cow), ("deep", &deep)] {
            println!(
                "{:>22} {:>6} {:>12.3} {:>12.0} {:>8} {:>12} {:>10}",
                w.name, label, m.cpu_seconds, m.nodes_per_sec, m.sa, m.peak_snapshot_bytes,
                m.intern_hits
            );
        }
        let same = cow.verdict == deep.verdict
            && (cow.te, cow.ge, cow.re, cow.sa) == (deep.te, deep.ge, deep.re, deep.sa);
        assert!(
            same,
            "{}: COW and deep-clone modes disagree (verdict {} vs {}, \
             TE/GE/RE/SA {}/{}/{}/{} vs {}/{}/{}/{})",
            w.name, cow.verdict, deep.verdict, cow.te, cow.ge, cow.re, cow.sa, deep.te, deep.ge,
            deep.re, deep.sa
        );
        let speedup = if deep.nodes_per_sec > 0.0 && cow.nodes_per_sec > 0.0 {
            cow.nodes_per_sec / deep.nodes_per_sec
        } else {
            0.0
        };
        if w.gate && !quick {
            gate_speedups.push((w.name.clone(), speedup));
        }
        rows.push(format!(
            "    {{\"name\": \"{}\", \"protocol\": \"{}\", \"order\": \"{}\", \
             \"trace_len\": {}, \"max_transitions\": {},\n     \"cow\": {},\n     \
             \"deep\": {},\n     \"speedup_nodes_per_sec\": {}, \"counters_match\": true}}",
            w.name,
            w.protocol,
            w.order.label(),
            w.trace.len(),
            w.cap,
            mode_json(&cow),
            mode_json(&deep),
            json::number(speedup)
        ));
    }

    let micro_cells = if quick { 64 } else { 512 };
    let micro_iters = if quick { 2_000 } else { 20_000 };
    let [cow_save, cow_restore, deep_save, deep_restore] = micro(micro_cells, micro_iters);
    println!(
        "\nmicro ({} heap cells): save cow {:.2}us deep {:.2}us, \
         restore cow {:.2}us deep {:.2}us",
        micro_cells, cow_save, deep_save, cow_restore, deep_restore
    );

    let doc = format!(
        "{{\n  \"benchmark\": \"snapshot_bench\",\n  \"quick\": {},\n  \
         \"chunk_cells\": {},\n  \"workloads\": [\n{}\n  ],\n  \
         \"micro\": {{\"heap_cells\": {}, \"iters\": {}, \"save_us\": {{\"cow\": {}, \"deep\": {}}}, \
         \"restore_us\": {{\"cow\": {}, \"deep\": {}}}}}\n}}\n",
        quick,
        estelle_runtime::CHUNK_CELLS,
        rows.join(",\n"),
        micro_cells,
        micro_iters,
        json::number(cow_save),
        json::number(deep_save),
        json::number(cow_restore),
        json::number(deep_restore)
    );
    json::validate(&doc).expect("emitted record is well-formed JSON");
    std::fs::write(OUT_PATH, &doc).expect("write BENCH_snapshots.json");
    println!("\nwrote {}", OUT_PATH);

    for (name, speedup) in &gate_speedups {
        println!("{}: COW {:.2}x deep-clone throughput", name, speedup);
    }
    if !quick {
        assert!(
            gate_speedups.iter().any(|(_, s)| *s >= 2.0),
            "acceptance gate: expected >=2x COW speedup on a TP0 workload, got {:?}",
            gate_speedups
        );
    }
}
