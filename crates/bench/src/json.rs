//! Minimal dependency-free JSON support for the benchmark records.
//!
//! The repo vendors no external crates (see PR 1), so the benchmark
//! binaries write their `BENCH_*.json` records by hand and CI validates
//! them with this tiny recursive-descent checker. The checker accepts
//! exactly RFC 8259 JSON; it does not build a DOM — well-formedness is
//! all `ci.sh` needs to keep a record from bit-rotting.

/// Escape a string for embedding in a JSON document.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Format an `f64` so it is valid JSON (no `NaN`/`inf` tokens).
pub fn number(x: f64) -> String {
    if x.is_finite() {
        format!("{:.3}", x)
    } else {
        "null".to_string()
    }
}

/// Format an `f64` at nanosecond precision (9 decimals) — for mean
/// per-run durations, which on fast rows are far below the 3-decimal
/// resolution of [`number`] and used to flatten to `0.000`.
pub fn number_ns(x: f64) -> String {
    if x.is_finite() {
        format!("{:.9}", x)
    } else {
        "null".to_string()
    }
}

/// Extract every number that directly follows `"<key>": ` in a JSON
/// text. A DOM-free helper for CI gates over the benchmark records
/// (e.g. "no row's speedup is below 1.0").
pub fn numbers_for_key(text: &str, key: &str) -> Vec<f64> {
    let needle = format!("\"{}\":", key);
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(at) = rest.find(&needle) {
        rest = &rest[at + needle.len()..];
        let trimmed = rest.trim_start();
        let end = trimmed
            .find(|c: char| !(c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E')))
            .unwrap_or(trimmed.len());
        if let Ok(v) = trimmed[..end].parse::<f64>() {
            out.push(v);
        }
    }
    out
}

/// Validate that `text` is one well-formed JSON document.
pub fn validate(text: &str) -> Result<(), String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: &str) -> String {
        format!("invalid JSON at byte {}: {}", self.pos, what)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", c as char)))
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", word)))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.eat(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.eat(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.eat(b'"')?;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(c) if c.is_ascii_hexdigit() => self.pos += 1,
                                    _ => return Err(self.err("bad \\u escape")),
                                }
                            }
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control char in string")),
                Some(_) => self.pos += 1,
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Self| -> Result<(), String> {
            let start = p.pos;
            while matches!(p.peek(), Some(b'0'..=b'9')) {
                p.pos += 1;
            }
            if p.pos == start {
                Err(p.err("expected digits"))
            } else {
                Ok(())
            }
        };
        digits(self)?;
        if self.peek() == Some(b'.') {
            self.pos += 1;
            digits(self)?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            digits(self)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_well_formed_documents() {
        for ok in [
            "{}",
            "[]",
            "null",
            "-1.5e+3",
            r#"{"a": [1, 2.5, "x\n", true, null], "b": {"c": false}}"#,
            " { \"k\" : [ ] } ",
        ] {
            assert!(validate(ok).is_ok(), "`{}` should validate", ok);
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "{\"a\": 1,}",
            "\"unterminated",
            "01x",
            "{} {}",
            "[nan]",
            "{\"a\": .5}",
        ] {
            assert!(validate(bad).is_err(), "`{}` should be rejected", bad);
        }
    }

    #[test]
    fn escape_round_trips_through_validation() {
        let s = escape("line\n\"quoted\"\tand \\ control\u{1}");
        assert!(validate(&format!("\"{}\"", s)).is_ok());
        assert_eq!(number(f64::NAN), "null");
        assert!(validate(&number(1.25)).is_ok());
    }

    #[test]
    fn ns_precision_keeps_sub_millisecond_durations() {
        assert_eq!(number_ns(0.000000420), "0.000000420");
        assert_eq!(number_ns(f64::INFINITY), "null");
        assert!(validate(&number_ns(1.5e-8)).is_ok());
    }

    #[test]
    fn numbers_for_key_scrapes_all_occurrences() {
        let doc = r#"{"rows": [{"s": 1.5, "x": 2}, {"s": 0.25}, {"t": {"s": -3e2}}]}"#;
        assert_eq!(numbers_for_key(doc, "s"), vec![1.5, 0.25, -300.0]);
        assert!(numbers_for_key(doc, "missing").is_empty());
    }
}
