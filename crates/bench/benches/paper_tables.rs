//! Criterion benches mirroring the paper's tables at reduced sizes.
//!
//! The table-printing binaries in `src/bin/` regenerate the full figures;
//! these benches measure the same workloads with statistical rigor:
//!
//! * `fig3_lapd/*` — valid LAPD trace analysis per order-checking mode;
//! * `fig4_tp0/*` — invalid TP0 trace analysis per order-checking mode;
//! * `tp0_valid/*` — the §4.2 linear-time claim on valid TP0 traces;
//! * `machine_ops/*` — the four primitive operations of §2.2 (generate,
//!   update, save, restore), the per-edge costs behind every table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use protocols::{lapd, tp0};
use std::hint::black_box;
use tango::{AnalysisOptions, OrderOptions};

fn fig3_lapd(c: &mut Criterion) {
    let analyzer = lapd::analyzer();
    let mut group = c.benchmark_group("fig3_lapd");
    for di in [5usize, 15] {
        let trace = lapd::valid_trace(di, di, di as u64);
        for (order, label) in [
            (OrderOptions::none(), "NR"),
            (OrderOptions::full(), "FULL"),
        ] {
            let options = AnalysisOptions::with_order(order);
            group.bench_with_input(
                BenchmarkId::new(label, di),
                &trace,
                |b, trace| {
                    b.iter(|| {
                        let r = analyzer.analyze(black_box(trace), &options).unwrap();
                        assert!(r.verdict.is_valid());
                        r.stats.transitions_executed
                    })
                },
            );
        }
    }
    group.finish();
}

fn fig4_tp0(c: &mut Criterion) {
    let analyzer = tp0::analyzer();
    let bad = tp0::invalidate_last_data(&tp0::complete_valid_trace(2, 2, 13)).unwrap();
    let mut group = c.benchmark_group("fig4_tp0_invalid");
    for (order, label) in [
        (OrderOptions::none(), "NR"),
        (OrderOptions::io(), "IO"),
        (OrderOptions::ip(), "IP"),
        (OrderOptions::full(), "FULL"),
    ] {
        let mut options = AnalysisOptions::with_order(order);
        options.limits.max_transitions = 10_000_000;
        group.bench_function(label, |b| {
            b.iter(|| {
                let r = analyzer.analyze(black_box(&bad), &options).unwrap();
                assert!(!r.verdict.is_valid());
                r.stats.transitions_executed
            })
        });
    }
    group.finish();
}

fn tp0_valid_linear(c: &mut Criterion) {
    let analyzer = tp0::analyzer();
    let options = AnalysisOptions::with_order(OrderOptions::full());
    let mut group = c.benchmark_group("tp0_valid");
    for n in [5usize, 10, 20] {
        let trace = tp0::valid_trace(n, n, n as u64);
        group.bench_with_input(BenchmarkId::from_parameter(n), &trace, |b, trace| {
            b.iter(|| {
                let r = analyzer.analyze(black_box(trace), &options).unwrap();
                assert!(r.verdict.is_valid());
                r.stats.transitions_executed
            })
        });
    }
    group.finish();
}

fn machine_ops(c: &mut Criterion) {
    use estelle_runtime::env::NullEnv;
    let analyzer = tp0::analyzer();
    let machine = &analyzer.machine;
    let mut group = c.benchmark_group("machine_ops");

    group.bench_function("initial_state", |b| {
        b.iter(|| machine.initial_state().unwrap())
    });

    let state = machine.initial_state().unwrap();
    group.bench_function("save_restore_clone", |b| {
        b.iter(|| black_box(state.clone()))
    });

    let mut st = machine.initial_state().unwrap();
    let env = NullEnv::default();
    group.bench_function("generate", |b| {
        b.iter(|| machine.generate(black_box(&mut st), &env).unwrap())
    });

    group.finish();
}

criterion_group!(benches, fig3_lapd, fig4_tp0, tp0_valid_linear, machine_ops);
criterion_main!(benches);
