//! Benches mirroring the paper's tables at reduced sizes.
//!
//! The table-printing binaries in `src/bin/` regenerate the full figures;
//! this harness measures the same workloads with a simple warmup +
//! repeated-timing loop (the workspace builds offline, so `criterion` is
//! not available — `harness = false` and a hand-rolled `main` instead):
//!
//! * `fig3_lapd/*` — valid LAPD trace analysis per order-checking mode;
//! * `fig4_tp0/*` — invalid TP0 trace analysis per order-checking mode;
//! * `tp0_valid/*` — the §4.2 linear-time claim on valid TP0 traces;
//! * `machine_ops/*` — the four primitive operations of §2.2 (generate,
//!   update, save, restore), the per-edge costs behind every table.

use protocols::{lapd, tp0};
use std::hint::black_box;
use std::time::{Duration, Instant};
use tango::{AnalysisOptions, OrderOptions};

/// Time `f` with a small warmup; report the best-of-N median-ish figure.
fn bench<R>(name: &str, mut f: impl FnMut() -> R) {
    const WARMUP: usize = 2;
    const RUNS: usize = 7;
    for _ in 0..WARMUP {
        black_box(f());
    }
    let mut times: Vec<Duration> = (0..RUNS)
        .map(|_| {
            let t0 = Instant::now();
            black_box(f());
            t0.elapsed()
        })
        .collect();
    times.sort();
    let median = times[RUNS / 2];
    let best = times[0];
    println!(
        "{:<40} median {:>12.3?}   best {:>12.3?}",
        name, median, best
    );
}

fn fig3_lapd() {
    let analyzer = lapd::analyzer();
    for di in [5usize, 15] {
        let trace = lapd::valid_trace(di, di, di as u64);
        for (order, label) in [
            (OrderOptions::none(), "NR"),
            (OrderOptions::full(), "FULL"),
        ] {
            let options = AnalysisOptions::with_order(order);
            bench(&format!("fig3_lapd/{}/{}", label, di), || {
                let r = analyzer.analyze(black_box(&trace), &options).unwrap();
                assert!(r.verdict.is_valid());
                r.stats.transitions_executed
            });
        }
    }
}

fn fig4_tp0() {
    let analyzer = tp0::analyzer();
    let bad = tp0::invalidate_last_data(&tp0::complete_valid_trace(2, 2, 13)).unwrap();
    for (order, label) in [
        (OrderOptions::none(), "NR"),
        (OrderOptions::io(), "IO"),
        (OrderOptions::ip(), "IP"),
        (OrderOptions::full(), "FULL"),
    ] {
        let mut options = AnalysisOptions::with_order(order);
        options.limits.max_transitions = 10_000_000;
        bench(&format!("fig4_tp0_invalid/{}", label), || {
            let r = analyzer.analyze(black_box(&bad), &options).unwrap();
            assert!(!r.verdict.is_valid());
            r.stats.transitions_executed
        });
    }
}

fn tp0_valid_linear() {
    let analyzer = tp0::analyzer();
    let options = AnalysisOptions::with_order(OrderOptions::full());
    for n in [5usize, 10, 20] {
        let trace = tp0::valid_trace(n, n, n as u64);
        bench(&format!("tp0_valid/{}", n), || {
            let r = analyzer.analyze(black_box(&trace), &options).unwrap();
            assert!(r.verdict.is_valid());
            r.stats.transitions_executed
        });
    }
}

fn machine_ops() {
    use estelle_runtime::env::NullEnv;
    let analyzer = tp0::analyzer();
    let machine = &analyzer.machine;

    bench("machine_ops/initial_state", || {
        machine.initial_state().unwrap()
    });

    let state = machine.initial_state().unwrap();
    bench("machine_ops/save_restore_clone", || {
        black_box(state.clone())
    });

    let mut st = machine.initial_state().unwrap();
    let env = NullEnv::default();
    bench("machine_ops/generate", || {
        machine.generate(black_box(&mut st), &env).unwrap()
    });
}

fn main() {
    fig3_lapd();
    fig4_tp0();
    tp0_valid_linear();
    machine_ops();
}
