//! Integration tests driving the `tango` binary.

use std::io::Write;
use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tango"))
}

fn tmpdir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "tango-cli-test-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_file(dir: &std::path::Path, name: &str, contents: &str) -> PathBuf {
    let path = dir.join(name);
    std::fs::write(&path, contents).unwrap();
    path
}

const ACK_SPEC: &str = r#"
specification ackspec;
channel ChA(env, m); by env: x; by m: ack; end;
channel ChB(env, m); by env: y; end;
module M process;
    ip A : ChA(m);
    ip B : ChB(m);
end;
body MB for M;
    state S1, S2;
    initialize to S1 begin end;
    trans
    from S1 to S1 when A.x name T1: begin end;
    from S1 to S2 when A.x name T2: begin end;
    from S2 to S1 when B.y name T3: begin output A.ack; end;
end;
end.
"#;

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).to_string()
}

#[test]
fn check_prints_model_summary() {
    let dir = tmpdir();
    let spec = write_file(&dir, "ack.est", ACK_SPEC);
    let out = bin().arg("check").arg(&spec).output().unwrap();
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("module M"));
    assert!(text.contains("states: S1, S2"));
    assert!(text.contains("3 transition declaration(s)"));
}

#[test]
fn analyze_valid_trace_exits_zero() {
    let dir = tmpdir();
    let spec = write_file(&dir, "ack.est", ACK_SPEC);
    let trace = write_file(&dir, "good.trace", "in A.x\nin B.y\nout A.ack\n");
    let out = bin()
        .args(["analyze"])
        .arg(&spec)
        .arg(&trace)
        .args(["--order", "nr"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{}", stdout(&out));
    assert!(stdout(&out).contains("verdict: valid"));
    assert!(stdout(&out).contains("witness:"));
}

#[test]
fn analyze_invalid_trace_exits_one() {
    let dir = tmpdir();
    let spec = write_file(&dir, "ack.est", ACK_SPEC);
    let trace = write_file(&dir, "bad.trace", "in A.x\nout A.ack\n");
    let out = bin()
        .args(["analyze"])
        .arg(&spec)
        .arg(&trace)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{}", stdout(&out));
    assert!(stdout(&out).contains("verdict: invalid"));
}

#[test]
fn syntax_errors_are_rendered_with_carets() {
    let dir = tmpdir();
    let spec = write_file(&dir, "broken.est", "specification x; module end.");
    let out = bin().arg("check").arg(&spec).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("error (parse)"), "stderr: {}", err);
    assert!(err.contains('^'));
}

#[test]
fn unknown_flags_are_rejected() {
    let out = bin()
        .args(["analyze", "a.est", "b.trace", "--frobnicate"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--frobnicate"));
}

#[test]
fn normalize_emits_reparsable_estelle() {
    let dir = tmpdir();
    let branchy = r#"
specification b;
channel C(env, m); by env: put(n : integer); by m: lo; hi; end;
module M process; ip P : C(m); end;
body MB for M;
    state S;
    initialize to S begin end;
    trans
    from S to S when P.put name T:
    begin
        if n < 10 then output P.lo else output P.hi;
    end;
end;
end.
"#;
    let spec = write_file(&dir, "branchy.est", branchy);
    let out = bin().arg("normalize").arg(&spec).output().unwrap();
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("T_nf1"));
    assert!(text.contains("T_nf2"));
    // The normal form must itself be a valid specification.
    let round = write_file(&dir, "normalized.est", &text);
    let out = bin().arg("check").arg(&round).output().unwrap();
    assert!(out.status.success(), "{}", stdout(&out));
}

#[test]
fn online_mode_follows_a_growing_file() {
    let dir = tmpdir();
    let spec = write_file(&dir, "ack.est", ACK_SPEC);
    let trace_path = dir.join("live.trace");
    std::fs::write(&trace_path, "in A.x\n").unwrap();

    let child = bin()
        .args(["online"])
        .arg(&spec)
        .arg(&trace_path)
        .args(["--order", "nr"])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .unwrap();

    // Feed the rest of the paper scenario, then close the trace.
    std::thread::sleep(std::time::Duration::from_millis(100));
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(&trace_path)
        .unwrap();
    writeln!(f, "in B.y\nout A.ack\neof").unwrap();
    drop(f);

    let out = child.wait_with_output().unwrap();
    assert_eq!(out.status.code(), Some(0), "{}", stdout(&out));
    assert!(stdout(&out).contains("verdict: valid"));
}

#[test]
fn disable_ip_flag_is_honored() {
    let dir = tmpdir();
    let spec = write_file(&dir, "ack.est", ACK_SPEC);
    // Without the ack output the trace is invalid...
    let trace = write_file(&dir, "quiet.trace", "in A.x\nin B.y\n");
    let out = bin()
        .args(["analyze"])
        .arg(&spec)
        .arg(&trace)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    // ... unless outputs at A are disabled.
    let out = bin()
        .args(["analyze"])
        .arg(&spec)
        .arg(&trace)
        .args(["--disable-ip", "A"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{}", stdout(&out));
}

#[test]
fn graph_emits_dot() {
    let dir = tmpdir();
    let spec = write_file(&dir, "ack.est", ACK_SPEC);
    let out = bin().arg("graph").arg(&spec).output().unwrap();
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.starts_with("digraph M {"));
    assert!(text.contains("when A.x"));
    assert!(text.contains("/ A.ack"));
}

const ECHO_SPEC: &str = r#"
specification echo;
channel C(env, m); by env: req(n : integer); by m: rsp(n : integer); end;
module M process; ip P : C(m); end;
body MB for M;
    state S;
    initialize to S begin end;
    trans
    from S to S when P.req begin output P.rsp(n + 1) end;
end;
end.
"#;

#[test]
fn generate_round_trips_through_analyze() {
    let dir = tmpdir();
    let spec = write_file(&dir, "echo.est", ECHO_SPEC);
    let script = write_file(&dir, "script.txt", "in P.req(1)\nin P.req(5)\nin P.req(9)\n");
    let out = bin()
        .args(["generate"])
        .arg(&spec)
        .arg(&script)
        .args(["--seed", "7"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let trace_text = stdout(&out);
    assert!(trace_text.trim_end().ends_with("eof"));

    // The generated trace must be valid against the same spec.
    let trace = write_file(&dir, "generated.trace", &trace_text);
    let out = bin()
        .args(["analyze"])
        .arg(&spec)
        .arg(&trace)
        .args(["--order", "full"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{}", stdout(&out));
}

#[test]
fn generate_rejects_out_lines_in_scripts() {
    let dir = tmpdir();
    let spec = write_file(&dir, "ack.est", ACK_SPEC);
    let script = write_file(&dir, "bad_script.txt", "in A.x\nout A.ack\n");
    let out = bin().args(["generate"]).arg(&spec).arg(&script).output().unwrap();
    assert_eq!(out.status.code(), Some(3));
    assert!(String::from_utf8_lossy(&out.stderr).contains("`in` lines"));
}
