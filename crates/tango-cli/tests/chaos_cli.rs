//! End-to-end chaos: `--chaos-seed`/`--fault-plan` through the real
//! binary, including a SIGKILL mid-run with faulty autosaves.
//!
//! The reproduction contract under test: a chaos run echoes its full
//! plan on stderr (`chaos: plan=…`), and feeding either the same
//! `--chaos-seed` or that echoed line back through `--fault-plan`
//! replays the identical analysis — same verdict, same TE/GE/RE/SA.
#![cfg(unix)]

use std::os::unix::process::ExitStatusExt;
use std::path::{Path, PathBuf};
use std::process::{Command, Output, Stdio};
use std::time::{Duration, Instant};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tango"))
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tango-chaos-cli-{}-{}", tag, std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The crash-recovery forker: two observationally identical transitions
/// per `ping` double the search tree at every event, and the trailing
/// never-produced `pong` forces a conclusive `invalid` that exhausts it.
const FORK_SPEC: &str = r#"
specification forker;
channel C(user, station);
    by user: ping;
    by station: pong;
end;
module M process;
    ip U : C(station);
end;
body MB for M;
    state s0;
    initialize to s0 begin end;
    trans
    from s0 to same when U.ping name ta: begin end;
    from s0 to same when U.ping name tb: begin end;
end;
end.
"#;

fn write_inputs(dir: &Path, pings: usize) -> (PathBuf, PathBuf) {
    let spec = dir.join("forker.est");
    std::fs::write(&spec, FORK_SPEC).unwrap();
    let mut trace = String::new();
    for _ in 0..pings {
        trace.push_str("in U.ping\n");
    }
    trace.push_str("out U.pong\n");
    let trace_path = dir.join("trace.txt");
    std::fs::write(&trace_path, trace).unwrap();
    (spec, trace_path)
}

fn parse_counters(stdout: &str) -> (u64, u64, u64, u64) {
    let grab = |key: &str| -> u64 {
        let at = stdout
            .find(key)
            .unwrap_or_else(|| panic!("`{}` missing in output: {}", key, stdout));
        stdout[at + key.len()..]
            .split(|c: char| !c.is_ascii_digit())
            .next()
            .unwrap()
            .parse()
            .unwrap()
    };
    (grab("TE="), grab("GE="), grab("RE="), grab("SA="))
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).to_string()
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).to_string()
}

#[test]
fn chaos_seed_replays_identically_and_by_its_echoed_plan() {
    let dir = tmpdir("repro");
    let (spec, trace) = write_inputs(&dir, 6);

    let run = |args: &[&str]| -> Output {
        bin()
            .arg("analyze")
            .arg(&spec)
            .arg(&trace)
            .args(args)
            .output()
            .expect("run analyzer")
    };

    let first = run(&["--chaos-seed", "5"]);
    let second = run(&["--chaos-seed", "5"]);
    assert_eq!(
        first.status.code(),
        second.status.code(),
        "same seed, same exit code"
    );
    assert_eq!(
        parse_counters(&stdout_of(&first)),
        parse_counters(&stdout_of(&second)),
        "same seed must replay the identical analysis"
    );

    // The echoed plan line is a complete reproduction recipe.
    let err = stderr_of(&first);
    let plan_line = err
        .lines()
        .find_map(|l| l.strip_prefix("chaos: plan="))
        .unwrap_or_else(|| panic!("chaos run must echo its plan: {}", err));
    let replayed = run(&[&format!("--fault-plan={}", plan_line)]);
    assert_eq!(first.status.code(), replayed.status.code());
    assert_eq!(
        parse_counters(&stdout_of(&first)),
        parse_counters(&stdout_of(&replayed)),
        "--fault-plan '<echoed line>' must replay the --chaos-seed run"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn malformed_fault_plan_is_a_typed_cli_error() {
    let dir = tmpdir("badplan");
    let (spec, trace) = write_inputs(&dir, 2);
    let out = bin()
        .arg("analyze")
        .arg(&spec)
        .arg(&trace)
        .args(["--fault-plan", "source.frobnicate_every=3"])
        .output()
        .expect("run analyzer");
    assert_eq!(out.status.code(), Some(3), "usage errors exit 3");
    assert!(
        stderr_of(&out).contains("frobnicate"),
        "the error must name the bad key: {}",
        stderr_of(&out)
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// SIGKILL the analyzer mid-run while its autosaves fight injected
/// checkpoint I/O errors, then resume fault-free from the last save
/// that landed: the totals must match an untouched run exactly.
#[test]
fn sigkill_under_checkpoint_faults_then_resume_reconverges() {
    let dir = tmpdir("kill");
    let (spec, trace) = write_inputs(&dir, 19);

    let baseline = bin()
        .arg("analyze")
        .arg(&spec)
        .arg(&trace)
        .output()
        .expect("run baseline");
    let base_text = stdout_of(&baseline);
    assert_eq!(baseline.status.code(), Some(1), "{}", base_text);
    let base_counters = parse_counters(&base_text);

    let ckpt = dir.join("autosave.bin");
    let _ = std::fs::remove_file(&ckpt);
    // Every second checkpoint write attempt fails: each autosave still
    // lands after the shared policy's retries, so the file keeps
    // appearing — just never on the first try.
    let mut child = bin()
        .arg("analyze")
        .arg(&spec)
        .arg(&trace)
        .args([
            "--checkpoint-every",
            "2000",
            "--fault-plan",
            "seed=9,checkpoint.io_error_every=2",
        ])
        .arg("--checkpoint-file")
        .arg(&ckpt)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn analyzer");

    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if ckpt.exists() && std::fs::metadata(&ckpt).map(|m| m.len() > 0).unwrap_or(false) {
            break;
        }
        if let Some(status) = child.try_wait().expect("try_wait") {
            panic!(
                "analyzer finished (status {:?}) before the first autosave",
                status
            );
        }
        assert!(Instant::now() < deadline, "no autosave within 60s");
        std::thread::sleep(Duration::from_millis(5));
    }
    std::thread::sleep(Duration::from_millis(150));

    child.kill().expect("SIGKILL the analyzer");
    let status = child.wait().expect("reap the killed analyzer");
    assert_eq!(status.signal(), Some(9), "died by SIGKILL: {:?}", status);

    // Whatever instant the kill (or an injected fault) hit, the file on
    // disk must be a complete, checksummed checkpoint.
    let info = bin()
        .arg("checkpoint-info")
        .arg(&ckpt)
        .output()
        .expect("run checkpoint-info");
    assert!(
        info.status.success(),
        "autosaved checkpoint failed verification: {}{}",
        stdout_of(&info),
        stderr_of(&info)
    );

    let resumed = bin()
        .arg("analyze")
        .arg(&spec)
        .arg("--resume")
        .arg(&ckpt)
        .output()
        .expect("run resume");
    let text = stdout_of(&resumed);
    assert_eq!(resumed.status.code(), Some(1), "{}", text);
    assert!(text.contains("verdict: invalid"), "{}", text);
    assert_eq!(
        parse_counters(&text),
        base_counters,
        "kill-9 under checkpoint faults + resume must reproduce the totals"
    );
    std::fs::remove_dir_all(&dir).ok();
}
