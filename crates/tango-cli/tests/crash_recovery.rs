//! Crash-injection harness: SIGKILL the analyzer mid-search, resume from
//! the autosaved checkpoint, and require the exact verdict and
//! TE/GE/RE/SA totals of an uninterrupted run.
//!
//! This is the cross-process version of the stop/resume equivalence the
//! library tests pin in-memory: here the first process is killed with no
//! chance to clean up (SIGKILL cannot be caught), so everything the
//! resumed run knows comes from the last atomically written autosave.
//! Work done between that autosave and the kill is simply redone — and
//! counted once — which is why the totals still come out identical.
#![cfg(unix)]

use std::os::unix::process::ExitStatusExt;
use std::path::{Path, PathBuf};
use std::process::{Command, Output, Stdio};
use std::time::{Duration, Instant};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tango"))
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "tango-crash-recovery-{}-{}",
        tag,
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Two observationally identical transitions per consumed `ping`: the
/// search tree doubles at every event, so `PINGS` events give a run long
/// enough (seconds, debug profile) to kill reliably mid-flight, while
/// the trailing never-produced `out U.pong` makes the verdict a
/// conclusive `invalid` that requires exhausting the whole tree.
const FORK_SPEC: &str = r#"
specification forker;
channel C(user, station);
    by user: ping;
    by station: pong;
end;
module M process;
    ip U : C(station);
end;
body MB for M;
    state s0;
    initialize to s0 begin end;
    trans
    from s0 to same when U.ping name ta: begin end;
    from s0 to same when U.ping name tb: begin end;
end;
end.
"#;

const PINGS: usize = 19;

fn write_inputs(dir: &Path) -> (PathBuf, PathBuf) {
    let spec = dir.join("forker.est");
    std::fs::write(&spec, FORK_SPEC).unwrap();
    let mut trace = String::new();
    for _ in 0..PINGS {
        trace.push_str("in U.ping\n");
    }
    trace.push_str("out U.pong\n");
    let trace_path = dir.join("trace.txt");
    std::fs::write(&trace_path, trace).unwrap();
    (spec, trace_path)
}

/// The paper-table counters from the report line:
/// `verdict: ... [CPUT=0.123s TE=1 GE=2 RE=3 SA=4]`.
fn parse_counters(stdout: &str) -> (u64, u64, u64, u64) {
    let grab = |key: &str| -> u64 {
        let at = stdout
            .find(key)
            .unwrap_or_else(|| panic!("`{}` missing in output: {}", key, stdout));
        stdout[at + key.len()..]
            .split(|c: char| !c.is_ascii_digit())
            .next()
            .unwrap()
            .parse()
            .unwrap()
    };
    (grab("TE="), grab("GE="), grab("RE="), grab("SA="))
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).to_string()
}

/// Kill the analysis once the checkpoint file exists, then resume from
/// it; returns (verdict line contains `invalid`, counters) of the
/// resumed run. `save_cow`/`resume_cow` select the snapshot mode of each
/// phase, proving the file is mode-portable across processes too.
fn crash_and_resume(
    tag: &str,
    save_cow: &str,
    resume_cow: &str,
    extra: &[&str],
) -> (String, (u64, u64, u64, u64)) {
    let dir = tmpdir(tag);
    let (spec, trace) = write_inputs(&dir);
    let ckpt = dir.join("autosave.bin");
    let _ = std::fs::remove_file(&ckpt);

    let mut child = bin()
        .arg("analyze")
        .arg(&spec)
        .arg(&trace)
        .args(["--checkpoint-every", "2000", "--cow", save_cow])
        .args(extra)
        .arg("--checkpoint-file")
        .arg(&ckpt)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn analyzer");

    // Wait for the first autosave to land, then let a little more work
    // happen so the kill strikes between autosaves, not at one.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if ckpt.exists() && std::fs::metadata(&ckpt).map(|m| m.len() > 0).unwrap_or(false) {
            break;
        }
        if let Some(status) = child.try_wait().expect("try_wait") {
            panic!(
                "analyzer finished (status {:?}) before the first autosave; \
                 raise PINGS to lengthen the run",
                status
            );
        }
        assert!(Instant::now() < deadline, "no autosave within 60s");
        std::thread::sleep(Duration::from_millis(5));
    }
    std::thread::sleep(Duration::from_millis(150));

    child.kill().expect("SIGKILL the analyzer");
    let status = child.wait().expect("reap the killed analyzer");
    assert_eq!(
        status.signal(),
        Some(libc_sigkill()),
        "the analyzer must have died by SIGKILL, not exited: {:?}",
        status
    );

    // The autosave was written atomically: whatever instant the kill
    // hit, the file on disk must be a complete, checksummed checkpoint.
    let info = bin()
        .arg("checkpoint-info")
        .arg(&ckpt)
        .output()
        .expect("run checkpoint-info");
    assert!(
        info.status.success(),
        "autosaved checkpoint failed verification: {}{}",
        stdout_of(&info),
        String::from_utf8_lossy(&info.stderr)
    );
    assert!(stdout_of(&info).contains("pending frames:"));

    let resumed = bin()
        .arg("analyze")
        .arg(&spec)
        .arg("--resume")
        .arg(&ckpt)
        .args(["--cow", resume_cow])
        .args(extra)
        .output()
        .expect("run resume");
    let text = stdout_of(&resumed);
    assert_eq!(
        resumed.status.code(),
        Some(1),
        "the forker trace is conclusively invalid: {}",
        text
    );
    let counters = parse_counters(&text);
    (text, counters)
}

fn libc_sigkill() -> i32 {
    9
}

#[test]
fn sigkill_mid_analysis_then_resume_matches_uninterrupted_run() {
    let dir = tmpdir("baseline");
    let (spec, trace) = write_inputs(&dir);
    let baseline = bin()
        .arg("analyze")
        .arg(&spec)
        .arg(&trace)
        .output()
        .expect("run baseline");
    let base_text = stdout_of(&baseline);
    assert_eq!(baseline.status.code(), Some(1), "{}", base_text);
    assert!(base_text.contains("verdict: invalid"), "{}", base_text);
    let base_counters = parse_counters(&base_text);

    let (text, counters) = crash_and_resume("kill-default", "on", "on", &[]);
    assert!(text.contains("verdict: invalid"), "{}", text);
    assert_eq!(
        counters, base_counters,
        "kill-9 + resume must reproduce the uninterrupted TE/GE/RE/SA totals"
    );

    // Cross-mode recovery: crash under the deep-clone baseline, resume
    // under COW. The checkpoint file carries per-frame intern keys and
    // byte charges, so the mode switch changes cost only, not totals.
    let (text, counters) = crash_and_resume("kill-cross-mode", "off", "on", &[]);
    assert!(text.contains("verdict: invalid"), "{}", text);
    assert_eq!(
        counters, base_counters,
        "--cow=off save / --cow=on resume must reproduce the same totals"
    );
}

#[test]
fn sigkill_mid_spill_then_disk_resume_matches_uninterrupted_run() {
    let dir = tmpdir("spill-baseline");
    let (spec, trace) = write_inputs(&dir);
    let baseline = bin()
        .arg("analyze")
        .arg(&spec)
        .arg(&trace)
        .output()
        .expect("run baseline");
    let base_text = stdout_of(&baseline);
    assert_eq!(baseline.status.code(), Some(1), "{}", base_text);
    let base_counters = parse_counters(&base_text);

    // Under a tight budget the analyzer spills snapshots to segment
    // files as it runs; SIGKILL can strike mid-append, leaving a torn
    // segment tail. The resumed process reopens the same spill
    // directory, steps over the tear, adopts the intact records, and
    // must still reproduce the uninterrupted totals exactly — the tier
    // changes where bytes live, never what the search decides.
    let spill_dir = tmpdir("spill-segments");
    let spill = spill_dir.to_str().unwrap();
    let extra = ["--max-mem", "256", "--spill", "on", "--spill-dir", spill];
    let (text, counters) = crash_and_resume("kill-spill", "on", "on", &extra);
    assert!(text.contains("verdict: invalid"), "{}", text);
    assert_eq!(
        counters, base_counters,
        "kill-9 mid-spill + disk resume must reproduce the uninterrupted totals"
    );
    let segments = std::fs::read_dir(&spill_dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().ends_with(".seg"))
        .count();
    assert!(segments > 0, "the budget must actually have forced spilling");
}
