//! End-to-end black box: post-mortem dumps, `dump-info`, the zero-cost
//! `--flight-recorder off` gate, the codec-v3 counters in
//! `checkpoint-info`, and the live `--listen` endpoint fetched with the
//! shipped `http-get` curl substitute.

use std::io::Read;
use std::path::{Path, PathBuf};
use std::process::{Command, Output, Stdio};
use std::time::{Duration, Instant};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tango"))
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("tango-black-box-{}-{}", tag, std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Same doubling spec the chaos tests use: every `ping` has two
/// indistinguishable firings, and the missing `pong` exhausts the tree.
const FORK_SPEC: &str = r#"
specification forker;
channel C(user, station);
    by user: ping;
    by station: pong;
end;
module M process;
    ip U : C(station);
end;
body MB for M;
    state s0;
    initialize to s0 begin end;
    trans
    from s0 to same when U.ping name ta: begin end;
    from s0 to same when U.ping name tb: begin end;
end;
end.
"#;

fn write_inputs(dir: &Path, pings: usize) -> (PathBuf, PathBuf) {
    let spec = dir.join("forker.est");
    std::fs::write(&spec, FORK_SPEC).unwrap();
    let mut trace = String::new();
    for _ in 0..pings {
        trace.push_str("in U.ping\n");
    }
    trace.push_str("out U.pong\n");
    let trace_path = dir.join("trace.txt");
    std::fs::write(&trace_path, trace).unwrap();
    (spec, trace_path)
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).to_string()
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).to_string()
}

#[test]
fn inconclusive_run_writes_a_dump_dump_info_reads_it_back() {
    let dir = tmpdir("dump");
    let (spec, trace) = write_inputs(&dir, 8);
    let dump = dir.join("pm.tangodump");

    let out = bin()
        .arg("analyze")
        .arg(&spec)
        .arg(&trace)
        .args(["--max-transitions", "10", "--dump-file"])
        .arg(&dump)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "inconclusive exit code");
    assert!(
        stderr_of(&out).contains("post-mortem dump written"),
        "stderr must name the dump: {}",
        stderr_of(&out)
    );
    assert!(dump.exists(), "dump file must exist");

    // Human rendering names the verdict and the counters.
    let info = bin().arg("dump-info").arg(&dump).output().unwrap();
    assert_eq!(info.status.code(), Some(0), "{}", stderr_of(&info));
    let text = stdout_of(&info);
    assert!(text.contains("tango post-mortem dump"), "{}", text);
    assert!(text.contains("flight recorder:"), "{}", text);
    assert!(text.contains("TE="), "{}", text);

    // JSONL rendering is one document per line, led by the header.
    let jsonl = bin()
        .args(["dump-info", "--jsonl"])
        .arg(&dump)
        .output()
        .unwrap();
    assert_eq!(jsonl.status.code(), Some(0));
    let body = stdout_of(&jsonl);
    let first = body.lines().next().unwrap();
    assert!(first.contains("\"schema\":\"tango-dump\""), "{}", first);
    for line in body.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "every line is a JSON document: {}",
            line
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupted_dump_is_a_typed_error_not_a_panic() {
    let dir = tmpdir("corrupt");
    let (spec, trace) = write_inputs(&dir, 8);
    let dump = dir.join("pm.tangodump");
    bin()
        .arg("analyze")
        .arg(&spec)
        .arg(&trace)
        .args(["--max-transitions", "10", "--dump-file"])
        .arg(&dump)
        .output()
        .unwrap();

    let mut bytes = std::fs::read(&dump).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&dump, &bytes).unwrap();

    let info = bin().arg("dump-info").arg(&dump).output().unwrap();
    assert_eq!(info.status.code(), Some(3), "typed CLI error path");
    let err = stderr_of(&info);
    assert!(err.starts_with("error:"), "{}", err);
    assert!(!err.contains("panicked"), "never a panic: {}", err);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn flight_recorder_off_is_observably_identical_minus_the_dump() {
    let dir = tmpdir("zero-cost");
    let (spec, trace) = write_inputs(&dir, 8);
    let dump_on = dir.join("on.tangodump");
    let dump_off = dir.join("off.tangodump");

    let run = |recorder: &str, dump: &Path| -> Output {
        bin()
            .arg("analyze")
            .arg(&spec)
            .arg(&trace)
            .args(["--max-transitions", "10", "--flight-recorder", recorder, "--dump-file"])
            .arg(dump)
            .output()
            .unwrap()
    };
    let on = run("on", &dump_on);
    let off = run("off", &dump_off);

    assert_eq!(on.status.code(), off.status.code());
    assert_eq!(
        stdout_of(&on),
        stdout_of(&off),
        "verdict and counters must be byte-identical with the recorder off"
    );
    assert!(dump_on.exists(), "recorder on ⇒ dump");
    assert!(!dump_off.exists(), "recorder off ⇒ no dump, ever");
    assert!(!stderr_of(&off).contains("post-mortem"), "{}", stderr_of(&off));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpoint_info_reports_fault_counters() {
    let dir = tmpdir("ckpt-info");
    let (spec, trace) = write_inputs(&dir, 8);
    let ckpt = dir.join("state.bin");

    let out = bin()
        .arg("analyze")
        .arg(&spec)
        .arg(&trace)
        .args(["--max-transitions", "10", "--checkpoint-file"])
        .arg(&ckpt)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "{}", stderr_of(&out));

    let info = bin().arg("checkpoint-info").arg(&ckpt).output().unwrap();
    assert_eq!(info.status.code(), Some(0), "{}", stderr_of(&info));
    let text = stdout_of(&info);
    for needle in [
        "format version: 4",
        "source faults: retries=0 giveups=0",
        "spill faults: retries=0 giveups=0",
        "checkpoint faults: retries=0 giveups=0",
        "peak_spilled_bytes",
    ] {
        assert!(text.contains(needle), "missing `{}` in: {}", needle, text);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn listen_endpoint_serves_status_and_metrics_during_a_run() {
    let dir = tmpdir("listen");
    // Enough doubling to keep the search busy for the whole test; the
    // wall-clock limit is the safety net that ends it.
    let (spec, trace) = write_inputs(&dir, 40);

    let mut child = bin()
        .arg("analyze")
        .arg(&spec)
        .arg(&trace)
        .args(["--max-seconds", "15", "--listen", "127.0.0.1:0", "--dump-file"])
        .arg(dir.join("pm.tangodump"))
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();

    // The bound address is announced on stderr before the search starts.
    let mut err = child.stderr.take().unwrap();
    let mut seen = String::new();
    let addr = loop {
        let mut buf = [0u8; 256];
        let n = err.read(&mut buf).unwrap();
        seen.push_str(&String::from_utf8_lossy(&buf[..n]));
        // Only complete lines: a read can split the announcement
        // mid-port, and a truncated address would poll a dead port.
        let complete = &seen[..seen.rfind('\n').map_or(0, |i| i + 1)];
        if let Some(line) = complete
            .lines()
            .find(|l| l.starts_with("introspect: listening on http://"))
        {
            break line
                .trim_start_matches("introspect: listening on http://")
                .trim_end_matches('/')
                .to_string();
        }
        assert!(n > 0, "analyzer exited before announcing the endpoint: {}", seen);
    };

    let fetch = |path: &str| -> (Option<i32>, String) {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let out = bin()
                .arg("http-get")
                .arg(format!("{}{}", addr, path))
                .output()
                .unwrap();
            let body = stdout_of(&out);
            if out.status.code() == Some(0) || Instant::now() >= deadline {
                return (out.status.code(), body);
            }
            std::thread::sleep(Duration::from_millis(100));
        }
    };

    let (code, status) = fetch("/status");
    assert_eq!(code, Some(0), "{}", status);
    assert!(status.contains("\"schema\":\"tango-status\""), "{}", status);
    assert!(status.contains("\"te\":"), "{}", status);

    let (code, metrics) = fetch("/metrics");
    assert_eq!(code, Some(0), "{}", metrics);
    assert!(metrics.starts_with('{') && metrics.trim_end().ends_with('}'), "{}", metrics);

    let (code, profile) = fetch("/profile");
    assert_eq!(code, Some(0), "{}", profile);
    assert!(profile.contains("\"schema\":\"tango-profile\""), "{}", profile);

    // Unknown paths are a JSON 404 through the same fetcher (exit 1).
    let out = bin()
        .arg("http-get")
        .arg(format!("{}/nope", addr))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));

    child.kill().ok();
    child.wait().ok();
    std::fs::remove_dir_all(&dir).ok();
}
