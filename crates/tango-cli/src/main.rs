//! `tango` — command-line trace analyzer generator for Estelle
//! specifications.
//!
//! Subcommands:
//!
//! ```text
//! tango check <spec.est>
//!     Parse and analyze a specification; print its model summary.
//!
//! tango analyze <spec.est> <trace.txt> [--order nr|io|ip|full]
//!     [--disable-ip NAME]... [--unobserved-ip NAME]...
//!     [--initial-state-search] [--state-hashing]
//!     Analyze a static trace file; exit code 0 = valid, 1 = invalid,
//!     2 = inconclusive.
//!
//! tango online <spec.est> <trace.txt> [--order ...]
//!     Follow a growing trace file (dynamic mode, MDFS) until its `eof`
//!     marker; interim verdicts are printed as they change.
//!
//! tango normalize <spec.est>
//!     Print the §5.3 normal form of the specification.
//!
//! tango generate <spec.est> <script.txt> [--seed N]
//!     Implementation-generation mode (§4.1): execute the specification
//!     against the scripted inputs (`in IP.interaction(args)` lines) and
//!     print the resulting valid trace.
//!
//! tango graph <spec.est>
//!     Emit a Graphviz `dot` rendering of the compiled EFSM.
//!
//! tango checkpoint-info <checkpoint.bin>
//!     Verify a checkpoint file's integrity and print its progress
//!     summary (depth, pending frames, events, counters) without
//!     loading any machine state.
//!
//! tango dump-info [--jsonl] <file.tangodump>
//!     Verify a post-mortem dump and render it human-readable (or as
//!     JSONL documents with --jsonl).
//!
//! tango http-get <host:port[/path]>
//!     Fetch one URL from a running `--listen` endpoint and print the
//!     body — a curl substitute for scripts and CI.
//! ```
//!
//! Durable analysis (static mode): `--checkpoint-file PATH` autosaves
//! the search every `--checkpoint-every N` executed transitions (and on
//! any limit stop), atomically, so a killed process loses at most one
//! interval of work; `--resume PATH` continues from such a file with the
//! counters intact.
//!
//! Black box (both modes): the flight recorder is on by default
//! (`--flight-recorder off` disables it) and costs a bounded ring of
//! compact records. Any non-completed outcome — an inconclusive verdict,
//! a fault giveup, an isolated specification panic — writes a post-mortem
//! dump (`--dump-file PATH`, default `tango-postmortem.tangodump`)
//! readable with `tango dump-info`. `--listen ADDR` additionally serves
//! live `/status`, `/metrics` and `/profile` JSON over HTTP while the
//! analysis runs.

use estelle_frontend::parse_specification;
use estelle_runtime::normal_form::normalize_specification;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;
use tango::{
    should_dump, AnalysisOptions, AnalysisReport, Checkpoint, FaultPlan, FollowFileSource,
    InconclusiveReason, IntrospectionServer, JsonlSink, OrderOptions, PostMortemDump,
    ProgressMode, ProgressReporter, RecoveryPolicy, RetryPolicy, Tango, Telemetry,
    TraceAnalyzer, TraceSource, Verdict, DEFAULT_RING_CAPACITY,
};

/// Poll budget for draining a fault-injected source on a static chaos
/// run; generous enough for any plan `FaultPlan::random` can emit.
const CHAOS_MAX_POLLS: usize = 1_000_000;

/// Where the post-mortem dump lands unless `--dump-file` says otherwise.
const DEFAULT_DUMP_FILE: &str = "tango-postmortem.tangodump";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {}", msg);
            ExitCode::from(3)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let Some(cmd) = args.first() else {
        return Err(usage());
    };
    match cmd.as_str() {
        "check" => check(args.get(1).map(String::as_str).ok_or_else(usage)?),
        "analyze" => analyze(&args[1..], false),
        "online" => analyze(&args[1..], true),
        "normalize" => normalize(args.get(1).map(String::as_str).ok_or_else(usage)?),
        "graph" => graph(args.get(1).map(String::as_str).ok_or_else(usage)?),
        "generate" => generate(&args[1..]),
        "checkpoint-info" => checkpoint_info(args.get(1).map(String::as_str).ok_or_else(usage)?),
        "dump-info" => dump_info(&args[1..]),
        "http-get" => http_get(args.get(1).map(String::as_str).ok_or_else(usage)?),
        "--help" | "-h" | "help" => {
            println!("{}", usage());
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown subcommand `{}`\n{}", other, usage())),
    }
}

fn usage() -> String {
    "usage: tango <check|analyze|online|normalize|graph|generate|checkpoint-info\
     |dump-info|http-get> \
     <spec.est|checkpoint.bin|file.tangodump|host:port/path> \
     [trace.txt|script.txt] [--order nr|io|ip|full] [--disable-ip NAME] \
     [--unobserved-ip NAME] [--initial-state-search] [--state-hashing] \
     [--cow=on|off] [--exec=auto|compiled|interp] [--workers N] \
     [--max-seconds F] [--max-mem N[k|m|g][b]] \
     [--spill=on|off|auto] [--spill-dir PATH] \
     [--max-transitions N] [--checkpoint-file PATH] [--checkpoint-every N] \
     [--resume PATH] [--on-truncate restart|fail] [--seed N] \
     [--trace-out PATH] [--metrics-out PATH] [--progress SECS|jsonl[:SECS]] \
     [--profile] [--profile-dot PATH] [--pgo-out PATH] [--pgo-in PATH] \
     [--chaos-seed N] [--fault-plan SPEC] \
     [--flight-recorder on|off] [--dump-file PATH] [--listen ADDR] [--jsonl]"
        .to_string()
}

/// Parse a byte budget like `64k`, `16m`, `1g`, `64mb` or a plain byte
/// count. Rejects multiplier overflow instead of silently wrapping.
fn parse_bytes(s: &str) -> Result<usize, String> {
    let bad = || format!("bad memory budget `{}`", s);
    let lower = s.to_ascii_lowercase();
    // An optional trailing `b` (`64mb`, `10kb`) is accepted and ignored —
    // but a bare `b` is not a number.
    let trimmed = match lower.strip_suffix('b') {
        Some(rest) if !rest.is_empty() => rest,
        Some(_) => return Err(bad()),
        None => lower.as_str(),
    };
    let (digits, shift) = match trimmed.strip_suffix(['k', 'm', 'g']) {
        Some(d) => (
            d,
            match trimmed.as_bytes()[trimmed.len() - 1] {
                b'k' => 10u32,
                b'm' => 20,
                _ => 30,
            },
        ),
        None => (trimmed, 0),
    };
    let n: usize = digits.parse().map_err(|_| bad())?;
    n.checked_mul(1usize << shift).ok_or_else(bad)
}

/// Parse the `--cow` mode: `on` (copy-on-write Save/Restore, the default)
/// or `off` (the original eager deep-clone path, kept for A/B timing).
fn parse_cow(v: &str) -> Result<bool, String> {
    match v.to_ascii_lowercase().as_str() {
        "on" => Ok(true),
        "off" => Ok(false),
        other => Err(format!("bad --cow mode `{}` (expected on|off)", other)),
    }
}

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {}: {}", path, e))
}

fn check(spec_path: &str) -> Result<ExitCode, String> {
    let source = read(spec_path)?;
    let analyzer = match Tango::generate(&source) {
        Ok(a) => a,
        Err(tango::TangoError::Build(estelle_runtime::BuildError::Frontend(e))) => {
            eprintln!("{}", e.render(&source));
            return Ok(ExitCode::from(1));
        }
        Err(e) => return Err(e.to_string()),
    };
    let m = analyzer.module();
    println!("specification {} / module {}", m.spec_name, m.module_name);
    println!("  states: {}", m.states.join(", "));
    for ip in &m.ips {
        println!(
            "  ip {}: {} receivable, {} sendable interaction(s)",
            ip.name,
            ip.inputs.len(),
            ip.outputs.len()
        );
    }
    println!(
        "  {} transition declaration(s), {} compiled transition(s)",
        m.declared_transition_count(),
        analyzer.machine.module.transition_count()
    );
    for w in &m.warnings {
        println!("  warning: {}", w);
    }
    Ok(ExitCode::SUCCESS)
}

/// Implementation-generation mode (§4.1): run the spec against scripted
/// inputs and print the trace it produces.
fn generate(args: &[String]) -> Result<ExitCode, String> {
    let mut seed: Option<u64> = None;
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                seed = Some(v.parse().map_err(|_| format!("bad seed `{}`", v))?);
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag `{}`", flag));
            }
            _ => positional.push(a.clone()),
        }
    }
    let [spec_path, script_path] = positional.as_slice() else {
        return Err(usage());
    };
    let source = read(spec_path)?;
    let analyzer = Tango::generate(&source).map_err(|e| e.to_string())?;

    // The script reuses the trace format; only `in` lines are accepted.
    let script_text = read(script_path)?;
    let script_trace = tango::parse_trace(&script_text, Some(analyzer.module()))
        .map_err(|e| e.to_string())?;
    let mut script = Vec::new();
    for e in &script_trace.events {
        if e.dir != tango::Dir::In {
            return Err(format!(
                "script may only contain `in` lines; found `out {}.{}`",
                e.ip, e.interaction
            ));
        }
        script.push(tango::ScriptedInput {
            ip: e.ip.clone(),
            interaction: e.interaction.clone(),
            params: e.params.clone(),
        });
    }

    let choice = match seed {
        Some(s) => tango::ChoicePolicy::Random(s),
        None => tango::ChoicePolicy::First,
    };
    let trace = analyzer
        .generate_trace(&script, choice, 10_000_000)
        .map_err(|e| e.to_string())?;
    print!(
        "{}",
        tango::render_trace(&trace, Some(analyzer.module()), true)
    );
    Ok(ExitCode::SUCCESS)
}

/// Emit a Graphviz rendering of the compiled EFSM.
fn graph(spec_path: &str) -> Result<ExitCode, String> {
    let source = read(spec_path)?;
    let analyzer = Tango::generate(&source).map_err(|e| e.to_string())?;
    print!("{}", estelle_runtime::graph::to_dot(&analyzer.machine.module));
    Ok(ExitCode::SUCCESS)
}

fn normalize(spec_path: &str) -> Result<ExitCode, String> {
    let source = read(spec_path)?;
    let spec = parse_specification(&source).map_err(|e| e.render(&source))?;
    let normalized = normalize_specification(&spec).map_err(|e| e.to_string())?;
    print!("{}", estelle_ast::print::print_specification(&normalized));
    Ok(ExitCode::SUCCESS)
}

/// Durable-analysis flags (static mode only).
#[derive(Debug, Default)]
struct CheckpointFlags {
    /// Where to (auto)save the search when it stops on a limit.
    file: Option<PathBuf>,
    /// A previously saved checkpoint to continue from.
    resume: Option<PathBuf>,
    /// Autosave interval, in executed transitions.
    every: Option<u64>,
}

/// Telemetry flags (both modes): structured event stream, metrics
/// export, live progress heartbeats, per-transition profile.
#[derive(Debug, Default)]
struct TelemetryFlags {
    /// Write the JSONL search-event stream here.
    trace_out: Option<PathBuf>,
    /// Write the metrics-registry JSON document here after the run.
    metrics_out: Option<PathBuf>,
    /// Heartbeat mode and interval (`--progress SECS` or `jsonl[:SECS]`).
    progress: Option<(ProgressMode, Duration)>,
    /// Print the hot-transition table after the report.
    profile: bool,
    /// Write the Graphviz heat overlay here.
    profile_dot: Option<PathBuf>,
    /// Write the serializable PGO profile here after the run
    /// (`--pgo-out`; implies profile collection).
    pgo_out: Option<PathBuf>,
    /// Apply a previously recorded PGO profile before the run
    /// (`--pgo-in`; validated against the spec like a checkpoint).
    pgo_in: Option<PathBuf>,
    /// `--flight-recorder off`: disable the always-on black box (the
    /// recorder is the default; this exists for A/B timing and for
    /// proving the recorder changes nothing but the dump).
    recorder_off: bool,
    /// Post-mortem dump destination (`--dump-file`; defaults to
    /// [`DEFAULT_DUMP_FILE`] in the working directory).
    dump_file: Option<PathBuf>,
    /// Serve live `/status`, `/metrics`, `/profile` here (`--listen`).
    listen: Option<String>,
}

impl TelemetryFlags {
    /// Build the analysis telemetry handle these flags ask for, plus the
    /// live introspection server when `--listen` is set (kept alive by
    /// the caller for the duration of the run; dropping it frees the
    /// port).
    fn build(
        &self,
        analyzer: &TraceAnalyzer,
    ) -> Result<(Telemetry, Option<IntrospectionServer>), String> {
        let transition_count = analyzer.machine.module.transition_count();
        let mut tel = Telemetry::off();
        if let Some(path) = &self.trace_out {
            let f = std::fs::File::create(path)
                .map_err(|e| format!("cannot create {}: {}", path.display(), e))?;
            tel = tel.with_sink(Box::new(JsonlSink::new(std::io::BufWriter::new(f))));
        }
        if self.metrics_out.is_some() || self.listen.is_some() {
            tel = tel.with_metrics();
        }
        if self.profile
            || self.profile_dot.is_some()
            || self.pgo_out.is_some()
            || self.listen.is_some()
        {
            tel = tel.with_profile(transition_count);
        }
        if let Some((mode, every)) = self.progress {
            tel = tel.with_progress(ProgressReporter::stderr(mode, every));
        }
        if !self.recorder_off {
            tel = tel.with_recorder(DEFAULT_RING_CAPACITY);
        }
        let mut server = None;
        if let Some(addr) = &self.listen {
            let s = IntrospectionServer::bind(addr)
                .map_err(|e| format!("cannot listen on {}: {}", addr, e))?;
            eprintln!("introspect: listening on http://{}/", s.local_addr());
            tel = tel.with_introspection(s.handle());
            server = Some(s);
        }
        if !self.recorder_off || self.listen.is_some() {
            tel = tel.with_transition_names(analyzer.transition_names());
        }
        Ok((tel, server))
    }

    /// The dump destination these flags select.
    fn dump_path(&self) -> PathBuf {
        self.dump_file
            .clone()
            .unwrap_or_else(|| PathBuf::from(DEFAULT_DUMP_FILE))
    }
}

/// Parse the `--flight-recorder` mode: `on` (the default) or `off`.
fn parse_recorder(v: &str) -> Result<bool, String> {
    match v.to_ascii_lowercase().as_str() {
        "on" => Ok(true),
        "off" => Ok(false),
        other => Err(format!(
            "bad --flight-recorder mode `{}` (expected on|off)",
            other
        )),
    }
}

/// Parse a `--progress` spec: `SECS` (human heartbeats) or `jsonl`
/// (machine-readable, default interval) or `jsonl:SECS`.
fn parse_progress(v: &str) -> Result<(ProgressMode, Duration), String> {
    let bad = || format!("bad --progress value `{}` (expected SECS or jsonl[:SECS])", v);
    let lower = v.to_ascii_lowercase();
    let (mode, secs_str) = match lower.strip_prefix("jsonl") {
        Some("") => return Ok((ProgressMode::Jsonl, Duration::from_secs(2))),
        Some(rest) => (ProgressMode::Jsonl, rest.strip_prefix(':').ok_or_else(bad)?),
        None => (ProgressMode::Human, lower.as_str()),
    };
    let secs: f64 = secs_str.parse().map_err(|_| bad())?;
    if !secs.is_finite() || secs < 0.0 {
        return Err(bad());
    }
    Ok((mode, Duration::from_secs_f64(secs)))
}

#[allow(clippy::type_complexity)]
fn parse_options(
    args: &[String],
) -> Result<
    (
        AnalysisOptions,
        RecoveryPolicy,
        CheckpointFlags,
        TelemetryFlags,
        Vec<String>,
        Option<FaultPlan>,
    ),
    String,
> {
    let mut options = AnalysisOptions::default();
    let mut recovery = RecoveryPolicy::default();
    let mut ckpt = CheckpointFlags::default();
    let mut tflags = TelemetryFlags::default();
    let mut chaos: Option<FaultPlan> = None;
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--checkpoint-file" => {
                let v = it.next().ok_or("--checkpoint-file needs a path")?;
                ckpt.file = Some(PathBuf::from(v));
            }
            "--resume" => {
                let v = it.next().ok_or("--resume needs a path")?;
                ckpt.resume = Some(PathBuf::from(v));
            }
            "--checkpoint-every" => {
                let v = it.next().ok_or("--checkpoint-every needs a value")?;
                let n: u64 = v
                    .parse()
                    .map_err(|_| format!("bad --checkpoint-every value `{}`", v))?;
                if n == 0 {
                    return Err("--checkpoint-every must be at least 1".to_string());
                }
                ckpt.every = Some(n);
            }
            "--max-transitions" => {
                let v = it.next().ok_or("--max-transitions needs a value")?;
                options.limits.max_transitions = v
                    .parse()
                    .map_err(|_| format!("bad --max-transitions value `{}`", v))?;
            }
            "--max-seconds" => {
                let v = it.next().ok_or("--max-seconds needs a value")?;
                let secs: f64 = v
                    .parse()
                    .map_err(|_| format!("bad --max-seconds value `{}`", v))?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err(format!("bad --max-seconds value `{}`", v));
                }
                options.limits.max_wall_time = Some(Duration::from_secs_f64(secs));
            }
            "--max-mem" => {
                let v = it.next().ok_or("--max-mem needs a value")?;
                options.limits.max_state_bytes = Some(parse_bytes(v)?);
            }
            "--spill" => {
                let v = it.next().ok_or("--spill needs on|off|auto")?;
                options.spill.mode = v.parse()?;
            }
            flag if flag.starts_with("--spill=") => {
                options.spill.mode = flag["--spill=".len()..].parse()?;
            }
            "--spill-dir" => {
                let v = it.next().ok_or("--spill-dir needs a path")?;
                options.spill.dir = Some(PathBuf::from(v));
            }
            "--on-truncate" => {
                let v = it.next().ok_or("--on-truncate needs a value")?;
                recovery = match v.to_ascii_lowercase().as_str() {
                    "restart" => RecoveryPolicy::Restart,
                    "fail" => RecoveryPolicy::Fail,
                    other => return Err(format!("unknown truncation policy `{}`", other)),
                };
            }
            "--order" => {
                let v = it.next().ok_or("--order needs a value")?;
                options.order = match v.to_ascii_lowercase().as_str() {
                    "nr" | "none" => OrderOptions::none(),
                    "io" => OrderOptions::io(),
                    "ip" => OrderOptions::ip(),
                    "full" => OrderOptions::full(),
                    other => return Err(format!("unknown order mode `{}`", other)),
                };
            }
            "--disable-ip" => {
                let v = it.next().ok_or("--disable-ip needs a name")?;
                options.disabled_ips.insert(v.to_ascii_lowercase());
            }
            "--unobserved-ip" => {
                let v = it.next().ok_or("--unobserved-ip needs a name")?;
                options.unobserved_ips.insert(v.to_ascii_lowercase());
                options.policy = estelle_runtime::UndefinedPolicy::Propagate;
            }
            "--trace-out" => {
                let v = it.next().ok_or("--trace-out needs a path")?;
                tflags.trace_out = Some(PathBuf::from(v));
            }
            "--metrics-out" => {
                let v = it.next().ok_or("--metrics-out needs a path")?;
                tflags.metrics_out = Some(PathBuf::from(v));
            }
            "--progress" => {
                let v = it.next().ok_or("--progress needs SECS or jsonl[:SECS]")?;
                tflags.progress = Some(parse_progress(v)?);
            }
            "--profile" => tflags.profile = true,
            "--profile-dot" => {
                let v = it.next().ok_or("--profile-dot needs a path")?;
                tflags.profile_dot = Some(PathBuf::from(v));
            }
            "--pgo-out" => {
                let v = it.next().ok_or("--pgo-out needs a path")?;
                tflags.pgo_out = Some(PathBuf::from(v));
            }
            flag if flag.starts_with("--pgo-out=") => {
                tflags.pgo_out = Some(PathBuf::from(&flag["--pgo-out=".len()..]));
            }
            "--pgo-in" => {
                let v = it.next().ok_or("--pgo-in needs a path")?;
                tflags.pgo_in = Some(PathBuf::from(v));
            }
            flag if flag.starts_with("--pgo-in=") => {
                tflags.pgo_in = Some(PathBuf::from(&flag["--pgo-in=".len()..]));
            }
            "--chaos-seed" => {
                let v = it.next().ok_or("--chaos-seed needs a value")?;
                let n: u64 = v
                    .parse()
                    .map_err(|_| format!("bad --chaos-seed value `{}`", v))?;
                chaos = Some(FaultPlan::random(n));
            }
            flag if flag.starts_with("--chaos-seed=") => {
                let v = &flag["--chaos-seed=".len()..];
                let n: u64 = v
                    .parse()
                    .map_err(|_| format!("bad --chaos-seed value `{}`", v))?;
                chaos = Some(FaultPlan::random(n));
            }
            "--fault-plan" => {
                let v = it.next().ok_or("--fault-plan needs a plan spec")?;
                chaos = Some(FaultPlan::parse(v).map_err(|e| e.to_string())?);
            }
            flag if flag.starts_with("--fault-plan=") => {
                let v = &flag["--fault-plan=".len()..];
                chaos = Some(FaultPlan::parse(v).map_err(|e| e.to_string())?);
            }
            "--flight-recorder" => {
                let v = it.next().ok_or("--flight-recorder needs on|off")?;
                tflags.recorder_off = !parse_recorder(v)?;
            }
            flag if flag.starts_with("--flight-recorder=") => {
                tflags.recorder_off = !parse_recorder(&flag["--flight-recorder=".len()..])?;
            }
            "--dump-file" => {
                let v = it.next().ok_or("--dump-file needs a path")?;
                tflags.dump_file = Some(PathBuf::from(v));
            }
            flag if flag.starts_with("--dump-file=") => {
                tflags.dump_file = Some(PathBuf::from(&flag["--dump-file=".len()..]));
            }
            "--listen" => {
                let v = it.next().ok_or("--listen needs an address (host:port)")?;
                tflags.listen = Some(v.clone());
                options.listen = Some(v.clone());
            }
            flag if flag.starts_with("--listen=") => {
                let v = flag["--listen=".len()..].to_string();
                tflags.listen = Some(v.clone());
                options.listen = Some(v);
            }
            "--initial-state-search" => options.initial_state_search = true,
            "--state-hashing" => options.state_hashing = true,
            "--cow" => {
                let v = it.next().ok_or("--cow needs on|off")?;
                options.cow_snapshots = parse_cow(v)?;
            }
            flag if flag.starts_with("--cow=") => {
                options.cow_snapshots = parse_cow(&flag["--cow=".len()..])?;
            }
            "--exec" => {
                let v = it.next().ok_or("--exec needs auto|compiled|interp")?;
                options.exec_mode = v.parse()?;
            }
            flag if flag.starts_with("--exec=") => {
                options.exec_mode = flag["--exec=".len()..].parse()?;
            }
            "--workers" => {
                let v = it.next().ok_or("--workers needs a count (0 = one per core)")?;
                options.workers = v
                    .parse()
                    .map_err(|_| format!("bad --workers value `{}`", v))?;
            }
            flag if flag.starts_with("--workers=") => {
                let v = &flag["--workers=".len()..];
                options.workers = v
                    .parse()
                    .map_err(|_| format!("bad --workers value `{}`", v))?;
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag `{}`", flag));
            }
            _ => positional.push(a.clone()),
        }
    }
    if options.spill.mode == tango::SpillMode::On {
        if options.spill.dir.is_none() {
            return Err("--spill on requires --spill-dir PATH".to_string());
        }
        if options.limits.max_state_bytes.is_none() {
            return Err(
                "--spill on requires a --max-mem budget to tier against".to_string(),
            );
        }
    }
    Ok((options, recovery, ckpt, tflags, positional, chaos))
}

fn analyze(args: &[String], online: bool) -> Result<ExitCode, String> {
    let (mut options, recovery, ckpt, tflags, positional, chaos) = parse_options(args)?;
    if online {
        // On-line mode defaults to one worker per core; `--workers 1`
        // opts back into the single-threaded search.
        let explicit = args
            .iter()
            .any(|a| a == "--workers" || a.starts_with("--workers="));
        if !explicit {
            options.workers = 0;
        }
        // `--checkpoint-file`/`--resume` work on-line too (save on a limit
        // stop, resume an eof-reached front); only the autosave round loop
        // is static-only.
        if ckpt.every.is_some() {
            return Err("--checkpoint-every applies to static `analyze` only".to_string());
        }
    }
    if online && chaos.is_some() {
        return Err(
            "--chaos-seed/--fault-plan apply to static `analyze` only".to_string(),
        );
    }
    if let Some(plan) = &chaos {
        // Echo the full plan so any chaos run is reproducible from its
        // log alone: `--fault-plan '<this line>'` re-arms it exactly.
        eprintln!("chaos: plan={}", plan.describe());
        plan.apply(&mut options);
    }
    // With --resume the trace travels inside the checkpoint, so only the
    // specification is required (it is not serialized — the checkpoint is
    // validated against it on load instead).
    let (spec_path, trace_path) = match positional.as_slice() {
        [s, t] => (s, Some(t)),
        [s] if ckpt.resume.is_some() => (s, None),
        _ => return Err(usage()),
    };
    let source = read(spec_path)?;
    let mut analyzer = match Tango::generate(&source) {
        Ok(a) => a,
        Err(tango::TangoError::Build(estelle_runtime::BuildError::Frontend(e))) => {
            eprintln!("{}", e.render(&source));
            return Ok(ExitCode::from(3));
        }
        Err(e) => return Err(e.to_string()),
    };

    // Profile-guided optimization: validate the recorded profile against
    // this spec (like a checkpoint) and reorder the compiled program's
    // dispatch buckets and guard terms by the observed fire rates.
    if let Some(path) = &tflags.pgo_in {
        let text = read(&path.display().to_string())?;
        let pgo = tango::PgoProfile::parse(&text)
            .map_err(|e| format!("{}: {}", path.display(), e))?;
        analyzer
            .apply_pgo(&pgo)
            .map_err(|e| format!("{}: {}", path.display(), e))?;
    }
    let analyzer = analyzer;

    // `_server` must outlive the analysis: it serves /status, /metrics
    // and /profile until the final (done=true) push lands in finalize.
    let (mut tel, _server) = tflags.build(&analyzer)?;

    let report = if online {
        let mut on_status = |v: &Verdict| {
            println!("interim: {}", v);
            true
        };
        let report = match &ckpt.resume {
            Some(path) => {
                let cp = Checkpoint::read_from(path).map_err(|e| e.to_string())?;
                analyzer
                    .analyze_online_resume_with(cp, &options, &mut on_status, &mut tel)
                    .map_err(|e| e.to_string())?
            }
            None => {
                let trace_path = trace_path.ok_or_else(usage)?;
                let mut src =
                    FollowFileSource::new(trace_path, Some(analyzer.module().clone()))
                        .with_recovery(recovery);
                let report = analyzer
                    .analyze_online_with(&mut src, &options, &mut on_status, &mut tel)
                    .map_err(|e| e.to_string())?;
                if src.skipped_lines() > 0 {
                    eprintln!(
                        "warning: {} unparseable trace line(s) skipped",
                        src.skipped_lines()
                    );
                }
                report
            }
        };
        // A limit stop after eof carries a resumable multi-worker front;
        // persist it like static mode's autosave (single-shot, no rounds).
        if let (Some(path), Some(cp)) = (&ckpt.file, report.checkpoint.as_deref()) {
            let out = cp.write_to_with(path, &RetryPolicy::checkpoint(), None);
            match out.result {
                Ok(()) => tel.on_checkpoint(
                    cp.stats().transitions_executed,
                    &path.display().to_string(),
                ),
                Err(e) => eprintln!(
                    "warning: checkpoint save to {} failed: {}",
                    path.display(),
                    e
                ),
            }
        }
        report
    } else {
        run_static(
            &analyzer,
            trace_path.map(String::as_str),
            &options,
            &ckpt,
            chaos.as_ref(),
            &mut tel,
        )?
    };

    // Fold the cumulative counters into the metrics registry and flush
    // the event stream, then write the requested artifacts.
    tel.finalize(&report.stats);

    // Black box: any non-completed outcome gets a post-mortem dump. The
    // autosave path is named inside the dump so `dump-info` can point
    // straight at the file to resume from.
    if tel.recorder().is_some() && should_dump(&report) {
        let dump_path = tflags.dump_path();
        let resume_from = if report.checkpoint.is_some() {
            ckpt.file.as_deref()
        } else {
            None
        };
        let dump = PostMortemDump::capture(&report, &tel, resume_from, chaos.as_ref());
        match dump.write_to(&dump_path) {
            Ok(()) => eprintln!(
                "note: post-mortem dump written to {}; inspect with \
                 `tango dump-info {}`",
                dump_path.display(),
                dump_path.display()
            ),
            Err(e) => eprintln!(
                "warning: post-mortem dump to {} failed: {}",
                dump_path.display(),
                e
            ),
        }
    }

    if let Some(path) = &tflags.metrics_out {
        let doc = tel.metrics().expect("metrics enabled by flag").to_json();
        std::fs::write(path, doc)
            .map_err(|e| format!("cannot write {}: {}", path.display(), e))?;
    }
    if let Some(path) = &tflags.pgo_out {
        let p = tel.profile().expect("profile enabled by flag");
        std::fs::write(path, analyzer.pgo_snapshot(p).render())
            .map_err(|e| format!("cannot write {}: {}", path.display(), e))?;
    }
    if let Some(path) = &tflags.profile_dot {
        let p = tel.profile().expect("profile enabled by flag");
        let dot = estelle_runtime::graph::to_dot_with_heat(
            &analyzer.machine.module,
            &p.heat_weights(),
            &p.heat_labels(),
            options.exec_mode.name(),
        );
        std::fs::write(path, dot)
            .map_err(|e| format!("cannot write {}: {}", path.display(), e))?;
    }

    println!("{}", report);
    if tflags.profile {
        let p = tel.profile().expect("profile enabled by flag");
        print!(
            "{}",
            p.render_table(&|i| analyzer.machine.transition_name(i).to_string())
        );
    }
    if let Some(w) = &report.witness {
        println!("witness: {}", w.join(" -> "));
    }
    for e in report.spec_errors.iter().take(3) {
        println!("note: branch abandoned with {}", e);
    }
    for fault in &report.source_faults {
        eprintln!("source fault: {}", fault);
    }
    for fault in &report.spill_faults {
        eprintln!("spill fault: {}", fault);
    }
    for fault in &report.checkpoint_faults {
        eprintln!("checkpoint fault: {}", fault);
    }
    if report.checkpoint.is_some() {
        match &ckpt.file {
            Some(path) => eprintln!(
                "note: search stopped on a resource limit; checkpoint saved to {}; \
                 rerun with --resume {} and raised limits to continue",
                path.display(),
                path.display()
            ),
            None => eprintln!(
                "note: search stopped on a resource limit; rerun with higher \
                 --max-seconds/--max-mem limits to continue"
            ),
        }
    }
    Ok(match report.verdict {
        Verdict::Valid => ExitCode::SUCCESS,
        Verdict::Invalid => ExitCode::from(1),
        _ => ExitCode::from(2),
    })
}

/// Static-mode analysis with durable checkpointing: fresh or resumed,
/// autosaving every `--checkpoint-every` transitions by running the
/// search in bounded rounds (each round ends on a *synthetic* transition
/// cap, the frozen checkpoint is written atomically, and the search
/// resumes in-process — the same stop/resume path a crashed process
/// recovers through, so the totals are identical either way).
fn run_static(
    analyzer: &TraceAnalyzer,
    trace_path: Option<&str>,
    options: &AnalysisOptions,
    ckpt: &CheckpointFlags,
    chaos: Option<&FaultPlan>,
    tel: &mut Telemetry,
) -> Result<AnalysisReport, String> {
    let user_cap = options.limits.max_transitions;
    // Chaos bookkeeping lives outside the round loop: the search rounds
    // replace `report`, but source faults happen once (at drain) and
    // checkpoint faults accumulate across every autosave, so both fold
    // into whichever report turns out to be final.
    let mut injector = chaos.and_then(|p| p.checkpoint_injector());
    let mut source_faults: Vec<String> = Vec::new();
    let mut source_retries = 0u64;
    let mut source_giveups = 0u64;
    let mut ck_faults: Vec<String> = Vec::new();
    let mut ck_retries = 0u64;
    let mut ck_giveups = 0u64;
    // One search round: cap TE at the next autosave point, never above
    // the user's own limit.
    let round_options = |done: u64| {
        let mut o = options.clone();
        if let Some(every) = ckpt.every {
            o.limits.max_transitions = user_cap.min(done.saturating_add(every));
        }
        o
    };

    let mut report = match &ckpt.resume {
        Some(path) => {
            let cp = Checkpoint::read_from(path).map_err(|e| e.to_string())?;
            let done = cp.stats().transitions_executed;
            analyzer
                .analyze_resume_with(cp, &round_options(done), tel)
                .map_err(|e| e.to_string())?
        }
        None => {
            let text = read(trace_path.ok_or_else(usage)?)?;
            match chaos.and_then(|p| p.build_source(&text, Some(analyzer.module().clone()))) {
                Some(mut src) => {
                    // Source site armed: the whole trace is read through
                    // the injector first, then the search analyzes what
                    // the degraded feed actually delivered.
                    let (trace, faults) =
                        tango::fault::drain_source(&mut src, CHAOS_MAX_POLLS)
                            .map_err(|e| e.to_string())?;
                    source_faults = faults;
                    source_retries = src.fault_retries();
                    source_giveups = src.fault_giveups();
                    analyzer
                        .analyze_with(&trace, &round_options(0), tel)
                        .map_err(|e| e.to_string())?
                }
                None => analyzer
                    .analyze_text_with(&text, &round_options(0), tel)
                    .map_err(|e| e.to_string())?,
            }
        }
    };

    loop {
        // Autosave on every limit stop, synthetic or genuine. A write
        // failure (after the codec's own bounded retries) costs the
        // durability of this round, not the analysis: warn and carry on.
        if let (Some(path), Some(cp)) = (&ckpt.file, report.checkpoint.as_deref()) {
            let out = cp.write_to_with(path, &RetryPolicy::checkpoint(), injector.as_mut());
            ck_retries += u64::from(out.retries);
            match out.result {
                Ok(()) => tel.on_checkpoint(
                    cp.stats().transitions_executed,
                    &path.display().to_string(),
                ),
                Err(e) => {
                    ck_giveups += 1;
                    let fault = format!(
                        "autosave to {} at TE={} failed: {}",
                        path.display(),
                        cp.stats().transitions_executed,
                        e
                    );
                    eprintln!(
                        "warning: checkpoint {}; analysis continues \
                         (rerun will not be resumable past the last good save)",
                        fault
                    );
                    ck_faults.push(fault);
                }
            }
        }
        // A synthetic stop is a transition-limit stop below the user's
        // own cap: continue the next round in-process. Anything else —
        // conclusive verdict, genuine limit — is the final report.
        let synthetic = ckpt.every.is_some()
            && matches!(
                report.verdict,
                Verdict::Inconclusive(InconclusiveReason::TransitionLimit)
            )
            && report.stats.transitions_executed < user_cap
            && report.checkpoint.is_some();
        if !synthetic {
            report.stats.source_retries += source_retries;
            report.stats.source_giveups += source_giveups;
            if !source_faults.is_empty() {
                report.source_faults = source_faults;
            }
            report.stats.checkpoint_retries += ck_retries;
            report.stats.checkpoint_giveups += ck_giveups;
            report.checkpoint_faults = ck_faults;
            return Ok(report);
        }
        let cp = *report.checkpoint.take().expect("checked above");
        let done = cp.stats().transitions_executed;
        report = analyzer
            .analyze_resume_with(cp, &round_options(done), tel)
            .map_err(|e| e.to_string())?;
    }
}

/// Verify a checkpoint file and print its progress summary. Decodes only
/// the META section: no machine state, trace or search stack is loaded.
fn checkpoint_info(path: &str) -> Result<ExitCode, String> {
    let info = Checkpoint::read_info(std::path::Path::new(path))
        .map_err(|e| format!("{}: {}", path, e))?;
    println!("checkpoint: {}", path);
    println!("  format version: {}", info.version);
    println!("  mode: {}", info.mode);
    if let Some(n) = info.workers_at_save {
        println!("  workers at save: {}", n);
        let deque: usize = info.worker_loads.iter().map(|&(d, _)| d).sum();
        let parked: usize = info.worker_loads.iter().map(|&(_, p)| p).sum();
        println!("  front: {} deque node(s), {} parked node(s)", deque, parked);
        for (i, &(d, p)) in info.worker_loads.iter().enumerate() {
            println!("    worker {}: deque={} parked={}", i, d, p);
        }
    }
    println!("  depth: {}", info.depth);
    println!("  pending frames: {}", info.pending_frames);
    println!("  events: {}", info.events_total);
    println!("  {}", info.stats);
    // Codec v3 carries the fault/spill story; show it so a resumed run's
    // operator knows what the interrupted one survived.
    let s = &info.stats;
    println!(
        "  source faults: retries={} giveups={}",
        s.source_retries, s.source_giveups
    );
    println!(
        "  spill faults: retries={} giveups={}",
        s.spill_retries, s.spill_giveups
    );
    println!(
        "  checkpoint faults: retries={} giveups={}",
        s.checkpoint_retries, s.checkpoint_giveups
    );
    println!(
        "  peak memory: resident={} bytes, spilled={} bytes (peak_spilled_bytes)",
        s.peak_snapshot_bytes, s.peak_spilled_bytes
    );
    Ok(ExitCode::SUCCESS)
}

/// Verify a post-mortem dump (magic, version, per-section and whole-file
/// checksums) and render it.
fn dump_info(args: &[String]) -> Result<ExitCode, String> {
    let mut jsonl = false;
    let mut path: Option<&str> = None;
    for a in args {
        match a.as_str() {
            "--jsonl" => jsonl = true,
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag `{}` (dump-info takes --jsonl)", flag));
            }
            p => {
                if path.replace(p).is_some() {
                    return Err(usage());
                }
            }
        }
    }
    let path = path.ok_or_else(usage)?;
    let dump = PostMortemDump::read_from(std::path::Path::new(path))
        .map_err(|e| format!("{}: {}", path, e))?;
    if jsonl {
        print!("{}", dump.render_jsonl());
    } else {
        println!("dump: {}", path);
        print!("{}", dump.render_human());
    }
    Ok(ExitCode::SUCCESS)
}

/// Minimal HTTP/1.1 GET over a plain `TcpStream` — enough to fetch the
/// `--listen` endpoints from `sh` scripts without curl. Prints the
/// response body; exits 0 only on a 200.
fn http_get(target: &str) -> Result<ExitCode, String> {
    use std::io::{Read, Write};
    let target = target.strip_prefix("http://").unwrap_or(target);
    let (addr, path) = match target.find('/') {
        Some(i) => (&target[..i], &target[i..]),
        None => (target, "/"),
    };
    let mut stream = std::net::TcpStream::connect(addr)
        .map_err(|e| format!("cannot connect to {}: {}", addr, e))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| e.to_string())?;
    stream
        .write_all(
            format!(
                "GET {} HTTP/1.1\r\nHost: {}\r\nConnection: close\r\n\r\n",
                path, addr
            )
            .as_bytes(),
        )
        .map_err(|e| format!("cannot send request to {}: {}", addr, e))?;
    let mut response = Vec::new();
    stream
        .read_to_end(&mut response)
        .map_err(|e| format!("cannot read response from {}: {}", addr, e))?;
    let text = String::from_utf8_lossy(&response);
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("malformed HTTP response from {}", addr))?;
    let status_line = head.lines().next().unwrap_or("");
    let ok = status_line.split_whitespace().nth(1) == Some("200");
    if !ok {
        eprintln!("http-get: {}", status_line);
    }
    print!("{}", body);
    Ok(if ok { ExitCode::SUCCESS } else { ExitCode::from(1) })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_bytes_plain_and_suffixed() {
        assert_eq!(parse_bytes("128").unwrap(), 128);
        assert_eq!(parse_bytes("64k").unwrap(), 64 << 10);
        assert_eq!(parse_bytes("16m").unwrap(), 16 << 20);
        assert_eq!(parse_bytes("1g").unwrap(), 1 << 30);
        assert_eq!(parse_bytes("2G").unwrap(), 2 << 30);
    }

    #[test]
    fn parse_bytes_accepts_trailing_b() {
        assert_eq!(parse_bytes("64mb").unwrap(), 64 << 20);
        assert_eq!(parse_bytes("10KB").unwrap(), 10 << 10);
        assert_eq!(parse_bytes("1gb").unwrap(), 1 << 30);
        assert_eq!(parse_bytes("7b").unwrap(), 7);
    }

    #[test]
    fn parse_bytes_rejects_multiplier_overflow() {
        // usize::MAX with a `g` suffix used to wrap via unchecked
        // multiplication; it must be an error.
        assert!(parse_bytes(&format!("{}g", usize::MAX)).is_err());
        assert!(parse_bytes(&format!("{}k", usize::MAX)).is_err());
        assert!(parse_bytes(&format!("{}gb", usize::MAX / 2)).is_err());
        // The largest representable budgets still parse.
        assert_eq!(parse_bytes(&format!("{}", usize::MAX)).unwrap(), usize::MAX);
        assert_eq!(
            parse_bytes(&format!("{}k", usize::MAX >> 10)).unwrap(),
            (usize::MAX >> 10) << 10
        );
    }

    #[test]
    fn parse_bytes_rejects_garbage() {
        for bad in ["", "b", "kb", "12q", "k12", "-5k", "1.5m", "64 m"] {
            assert!(parse_bytes(bad).is_err(), "`{}` must not parse", bad);
        }
    }

    #[test]
    fn cow_flag_both_spellings() {
        let (opts, _, _, _, _, _) =
            parse_options(&["--cow=off".to_string(), "x".to_string()]).unwrap();
        assert!(!opts.cow_snapshots);
        let (opts, _, _, _, _, _) =
            parse_options(&["--cow".to_string(), "on".to_string()]).unwrap();
        assert!(opts.cow_snapshots);
        assert!(parse_options(&["--cow=sideways".to_string()]).is_err());
        assert!(parse_options(&["--cow".to_string()]).is_err());
    }

    #[test]
    fn spill_flag_both_spellings_and_validation() {
        use tango::SpillMode;
        let (opts, _, _, _, _, _) = parse_options(&["x".to_string()]).unwrap();
        assert_eq!(opts.spill.mode, SpillMode::Auto, "auto is the default");
        assert!(opts.spill.dir.is_none());

        let args: Vec<String> = ["--spill=on", "--spill-dir", "/tmp/s", "--max-mem", "1m", "x"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (opts, _, _, _, _, _) = parse_options(&args).unwrap();
        assert_eq!(opts.spill.mode, SpillMode::On);
        assert_eq!(opts.spill.dir.as_deref(), Some(std::path::Path::new("/tmp/s")));
        assert_eq!(opts.limits.max_state_bytes, Some(1 << 20));

        let args: Vec<String> = ["--spill", "off", "x"].iter().map(|s| s.to_string()).collect();
        let (opts, _, _, _, _, _) = parse_options(&args).unwrap();
        assert_eq!(opts.spill.mode, SpillMode::Off);

        assert!(parse_options(&["--spill=sideways".to_string()]).is_err());
        assert!(parse_options(&["--spill".to_string()]).is_err());
        // `on` without a directory or without a budget is rejected up front.
        let e = parse_options(
            &["--spill=on".to_string(), "--max-mem".to_string(), "1m".to_string()],
        )
        .unwrap_err();
        assert!(e.contains("--spill-dir"), "{}", e);
        let e = parse_options(&[
            "--spill=on".to_string(),
            "--spill-dir".to_string(),
            "/tmp/s".to_string(),
        ])
        .unwrap_err();
        assert!(e.contains("--max-mem"), "{}", e);
    }

    #[test]
    fn exec_flag_both_spellings() {
        use estelle_runtime::ExecMode;
        let (opts, _, _, _, _, _) = parse_options(&["x".to_string()]).unwrap();
        assert_eq!(opts.exec_mode, ExecMode::Auto, "auto selection is default");
        let (opts, _, _, _, _, _) =
            parse_options(&["--exec=interp".to_string(), "x".to_string()]).unwrap();
        assert_eq!(opts.exec_mode, ExecMode::Interp);
        let (opts, _, _, _, _, _) =
            parse_options(&["--exec".to_string(), "compiled".to_string()]).unwrap();
        assert_eq!(opts.exec_mode, ExecMode::Compiled);
        let (opts, _, _, _, _, _) =
            parse_options(&["--exec=auto".to_string(), "x".to_string()]).unwrap();
        assert_eq!(opts.exec_mode, ExecMode::Auto);
        // Unknown modes are rejected up front, naming the accepted set.
        let e = parse_options(&["--exec=jit".to_string()]).unwrap_err();
        assert!(e.contains("`auto`"), "{}", e);
        assert!(e.contains("`compiled`"), "{}", e);
        assert!(e.contains("`interp`"), "{}", e);
        assert!(parse_options(&["--exec".to_string()]).is_err());
    }

    #[test]
    fn pgo_flags_both_spellings() {
        let args: Vec<String> = ["--pgo-out", "/tmp/p.pgo", "--pgo-in=/tmp/q.pgo", "x"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (_, _, _, tflags, _, _) = parse_options(&args).unwrap();
        assert_eq!(tflags.pgo_out.as_deref(), Some(std::path::Path::new("/tmp/p.pgo")));
        assert_eq!(tflags.pgo_in.as_deref(), Some(std::path::Path::new("/tmp/q.pgo")));
        assert!(parse_options(&["--pgo-out".to_string()]).is_err());
        assert!(parse_options(&["--pgo-in".to_string()]).is_err());
    }

    #[test]
    fn flight_recorder_flag_both_spellings_and_default_on() {
        let (_, _, _, tflags, _, _) = parse_options(&["x".to_string()]).unwrap();
        assert!(!tflags.recorder_off, "the black box is on by default");

        let (_, _, _, tflags, _, _) =
            parse_options(&["--flight-recorder=off".to_string(), "x".to_string()]).unwrap();
        assert!(tflags.recorder_off);
        let (_, _, _, tflags, _, _) = parse_options(&[
            "--flight-recorder".to_string(),
            "on".to_string(),
            "x".to_string(),
        ])
        .unwrap();
        assert!(!tflags.recorder_off);
        assert!(parse_options(&["--flight-recorder=maybe".to_string()]).is_err());
        assert!(parse_options(&["--flight-recorder".to_string()]).is_err());
    }

    #[test]
    fn dump_file_and_listen_flags_parse() {
        let args: Vec<String> = ["--dump-file=/tmp/d.tangodump", "--listen", "127.0.0.1:0", "x"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (opts, _, _, tflags, _, _) = parse_options(&args).unwrap();
        assert_eq!(
            tflags.dump_path(),
            PathBuf::from("/tmp/d.tangodump"),
            "--dump-file overrides the default destination"
        );
        assert_eq!(tflags.listen.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(
            opts.listen.as_deref(),
            Some("127.0.0.1:0"),
            "--listen threads through AnalysisOptions too"
        );

        let (opts, _, _, tflags, _, _) = parse_options(&["x".to_string()]).unwrap();
        assert_eq!(tflags.dump_path(), PathBuf::from(DEFAULT_DUMP_FILE));
        assert!(tflags.listen.is_none());
        assert!(opts.listen.is_none());
        assert!(parse_options(&["--dump-file".to_string()]).is_err());
        assert!(parse_options(&["--listen".to_string()]).is_err());
    }

    #[test]
    fn chaos_flags_parse_and_round_trip() {
        // --chaos-seed derives the same plan the library derives.
        let args: Vec<String> = ["--chaos-seed", "7", "x"].iter().map(|s| s.to_string()).collect();
        let (_, _, _, _, _, chaos) = parse_options(&args).unwrap();
        let plan = chaos.expect("plan armed");
        assert_eq!(plan, FaultPlan::random(7));

        // The echoed describe() line re-arms the identical plan through
        // --fault-plan: log line → exact reproduction.
        let spec = plan.describe();
        let (_, _, _, _, _, chaos) =
            parse_options(&[format!("--fault-plan={}", spec), "x".to_string()]).unwrap();
        assert_eq!(chaos.unwrap(), plan);

        let (_, _, _, _, _, chaos) = parse_options(&["x".to_string()]).unwrap();
        assert!(chaos.is_none(), "unarmed by default");
        assert!(parse_options(&["--chaos-seed".to_string()]).is_err());
        assert!(parse_options(&["--chaos-seed=pi".to_string()]).is_err());
        assert!(parse_options(&["--fault-plan=bogus.knob=1".to_string()]).is_err());
    }
}
