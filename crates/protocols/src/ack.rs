//! The paper's Figure 1 specification, `ack`.
//!
//! Two interaction points. `x` interactions at A nondeterministically
//! either loop in S1 (T1) or move to S2 (T2); a `y` at B in S2 emits the
//! `ack` at A (T3) and returns to S1. The paper uses it to motivate MDFS:
//! with inputs `[x x x]` at A, `[y]` at B and traced output `[ack]`, a
//! plain DFS that greedily fires T1 three times dead-ends and would wait
//! forever, while the solution is `T1 T2 T3 T1`.

use tango::{Tango, TraceAnalyzer};

/// The Estelle source of the `ack` specification.
pub const SOURCE: &str = r#"
specification ackspec;

channel ChA(env, m);
    by env: x;
    by m: ack;
end;

channel ChB(env, m);
    by env: y;
end;

module M process;
    ip A : ChA(m);
    ip B : ChB(m);
end;

body MB for M;
    state S1, S2;

    initialize to S1 begin end;

    trans
    from S1 to S1 when A.x name T1:
        begin end;
    from S1 to S2 when A.x name T2:
        begin end;
    from S2 to S1 when B.y name T3:
        begin output A.ack; end;
end;
end.
"#;

/// Generate the trace analyzer for `ack`.
pub fn analyzer() -> TraceAnalyzer {
    Tango::generate(SOURCE).expect("the ack specification is valid")
}

/// The paper's §3.1 scenario as a trace file: three `x`, one `y`, one
/// `ack` — valid, but only via the non-greedy path `T1 T2 T3 T1`.
pub const PAPER_SCENARIO: &str = "\
in A.x
in A.x
in B.y
out A.ack
in A.x
";

#[cfg(test)]
mod tests {
    use super::*;
    use tango::{AnalysisOptions, OrderOptions, Verdict};

    #[test]
    fn spec_builds() {
        let a = analyzer();
        assert_eq!(a.module().states, vec!["S1", "S2"]);
        assert_eq!(a.machine.module.transition_count(), 3);
    }

    #[test]
    fn paper_scenario_is_valid_and_needs_backtracking() {
        let a = analyzer();
        // Without order checking the x's and y may interleave freely; the
        // analyzer must discover T1 T2 T3 T1.
        let r = a
            .analyze_text(PAPER_SCENARIO, &AnalysisOptions::with_order(OrderOptions::none()))
            .unwrap();
        assert_eq!(r.verdict, Verdict::Valid);
        let witness = r.witness.unwrap();
        assert!(witness.contains(&"T2".to_string()));
        assert!(witness.contains(&"T3".to_string()));
    }

    #[test]
    fn unexplained_ack_is_invalid() {
        let a = analyzer();
        // An ack with no y to trigger it can never be generated.
        let r = a
            .analyze_text("in A.x\nout A.ack\n", &AnalysisOptions::default())
            .unwrap();
        assert_eq!(r.verdict, Verdict::Invalid);
    }

    #[test]
    fn greedy_dead_end_forces_restores() {
        let a = analyzer();
        let r = a
            .analyze_text(PAPER_SCENARIO, &AnalysisOptions::with_order(OrderOptions::none()))
            .unwrap();
        // T1/T2 on the first x both look plausible: some backtracking (or
        // at least saved states) must have occurred.
        assert!(r.stats.saves > 0);
    }
}
