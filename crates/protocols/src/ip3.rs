//! The paper's Figure 2 specifications, `ip3` and `ip3'`.
//!
//! Three interaction points A, B, C. Transitions t1/t2 relay `data`
//! between B and C, t3 answers `x` at A with `p`. The full `ip3` also has
//! t4 (a `finished` at B moves to s2) and t5 (an `x` at A in s2 emits
//! `o`). The primed variant `ip3'` omits t4/t5, so the output `o` can
//! *never* be generated — yet on-line MDFS keeps verifying B/C data
//! forever and can only say "likely invalid", the paper's §3.1.2
//! inconclusiveness example.

use tango::{Tango, TraceAnalyzer};

fn source(with_t4_t5: bool) -> String {
    let tail = if with_t4_t5 {
        r#"
    from s1 to s2 when B.finished name t4:
        begin end;
    from s2 to s1 when A.x name t5:
        begin output A.o; end;
"#
    } else {
        ""
    };
    format!(
        r#"
specification ip3;

channel ChA(env, m);
    by env: x;
    by m: p; o;
end;

channel ChB(env, m);
    by env: data; finished;
    by m: data;
end;

channel ChC(env, m);
    by env: data;
    by m: data;
end;

module M process;
    ip A : ChA(m);
    ip B : ChB(m);
    ip C : ChC(m);
end;

body MB for M;
    state s1, s2;

    initialize to s1 begin end;

    trans
    from s1 to s1 when B.data name t1:
        begin output C.data; end;
    from s1 to s1 when C.data name t2:
        begin output B.data; end;
    from s1 to s1 when A.x name t3:
        begin output A.p; end;
{tail}
end;
end.
"#,
        tail = tail
    )
}

/// Full `ip3` (transitions t1–t5).
pub fn source_full() -> String {
    source(true)
}

/// `ip3'` — only t1, t2, t3; `o` is unreachable.
pub fn source_prime() -> String {
    source(false)
}

/// Analyzer for the full `ip3`.
pub fn analyzer_full() -> TraceAnalyzer {
    Tango::generate(&source_full()).expect("ip3 is valid")
}

/// Analyzer for `ip3'`.
pub fn analyzer_prime() -> TraceAnalyzer {
    Tango::generate(&source_prime()).expect("ip3' is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tango::{AnalysisOptions, OrderOptions, Verdict};

    #[test]
    fn both_variants_build() {
        assert_eq!(analyzer_full().machine.module.transition_count(), 5);
        assert_eq!(analyzer_prime().machine.module.transition_count(), 3);
    }

    #[test]
    fn o_needs_finished_in_full_spec() {
        let a = analyzer_full();
        let valid = "in A.x\nout A.p\nin B.finished\nin A.x\nout A.o\n";
        let r = a.analyze_text(valid, &AnalysisOptions::default()).unwrap();
        assert_eq!(r.verdict, Verdict::Valid);
    }

    #[test]
    fn o_without_finished_is_invalid_statically() {
        // In static mode even the full spec rejects `o` when `finished`
        // never arrived.
        let a = analyzer_full();
        let r = a
            .analyze_text(
                "in A.x\nout A.o\n",
                &AnalysisOptions::with_order(OrderOptions::none()),
            )
            .unwrap();
        assert_eq!(r.verdict, Verdict::Invalid);
    }

    #[test]
    fn prime_never_generates_o() {
        let a = analyzer_prime();
        let r = a
            .analyze_text(
                "in A.x\nout A.p\nout A.o\n",
                &AnalysisOptions::with_order(OrderOptions::none()),
            )
            .unwrap();
        assert_eq!(r.verdict, Verdict::Invalid);
    }

    #[test]
    fn data_relay_round_trips() {
        let a = analyzer_prime();
        let trace = "in B.data\nout C.data\nin C.data\nout B.data\n";
        let r = a.analyze_text(trace, &AnalysisOptions::default()).unwrap();
        assert_eq!(r.verdict, Verdict::Valid);
    }
}
