//! TP0 — the ISO Class 0 Transport Protocol as described in §4.2.
//!
//! The module sits between an "upper tester" (the user layer, IP `U`) and
//! a "lower tester" (the network layer, IP `L`). After the CR/CC
//! handshake it enters the `data` state, where the paper's transitions
//! live verbatim:
//!
//! * **t13** — read a data interaction from the upper module into
//!   `buffer2` (a linked list in Estelle dynamic memory);
//! * **t14** — send an interaction from `buffer2` to the lower module;
//! * **t15** — read a data interaction from the lower module into
//!   `buffer1`;
//! * **t16** — send an interaction from `buffer1` to the upper module;
//! * **t17** — on a disconnect request from the upper module, send a
//!   disconnect indication to the lower module — fireable "at any time,
//!   even if data remains in its buffers", the residual nondeterminism
//!   the paper measures under full order checking.
//!
//! The buffers are of "infinite" length: pointer-linked cells allocated
//! with `new` and released with `dispose`, exercising the state
//! save/restore cost §3.2.2 discusses.

use tango::{ChoicePolicy, ScriptedInput, Tango, Trace, TraceAnalyzer};
use estelle_runtime::Value;

/// The Estelle source of the TP0 specification.
pub const SOURCE: &str = r#"
specification tp0;

channel TS(user, station);
    by user: tconreq; tdatreq(d : integer); tdisreq;
    by station: tconconf; tconind; tdatind(d : integer); tdisind;
end;

channel NS(net, station);
    by net: cc_ind; cr_ind; dt_ind(d : integer); dr_ind;
    by station: cr_req; cc_req; dt_req(d : integer); dr_req;
end;

module Tp0 process;
    ip U : TS(station);
    ip L : NS(station);
end;

body Tp0Body for Tp0;
    type cell = record d : integer; next : ^cell end;
    var b1head, b1tail, b2head, b2tail, tmp : ^cell;

    state idle, wfcc, data;

    initialize to idle begin
        b1head := nil; b1tail := nil;
        b2head := nil; b2tail := nil;
        tmp := nil;
    end;

    trans
    (* connection establishment, initiating side *)
    from idle to wfcc when U.tconreq name t10:
        begin output L.cr_req; end;
    from wfcc to data when L.cc_ind name t11:
        begin output U.tconconf; end;

    (* connection establishment, responding side *)
    from idle to data when L.cr_ind name t12:
        begin output U.tconind; output L.cc_req; end;

    (* t13: read data from the upper module into buffer2 *)
    from data to same when U.tdatreq name t13:
        begin
            new(tmp);
            tmp^.d := d;
            tmp^.next := nil;
            if b2head = nil then
                begin b2head := tmp; b2tail := tmp; end
            else
                begin b2tail^.next := tmp; b2tail := tmp; end;
            tmp := nil;
        end;

    (* t14: send from buffer2 to the lower module *)
    from data to same provided b2head <> nil name t14:
        begin
            output L.dt_req(b2head^.d);
            tmp := b2head;
            b2head := b2head^.next;
            if b2head = nil then b2tail := nil;
            dispose(tmp);
            tmp := nil;
        end;

    (* t15: read data from the lower module into buffer1 *)
    from data to same when L.dt_ind name t15:
        begin
            new(tmp);
            tmp^.d := d;
            tmp^.next := nil;
            if b1head = nil then
                begin b1head := tmp; b1tail := tmp; end
            else
                begin b1tail^.next := tmp; b1tail := tmp; end;
            tmp := nil;
        end;

    (* t16: send from buffer1 to the upper module *)
    from data to same provided b1head <> nil name t16:
        begin
            output U.tdatind(b1head^.d);
            tmp := b1head;
            b1head := b1head^.next;
            if b1head = nil then b1tail := nil;
            dispose(tmp);
            tmp := nil;
        end;

    (* t17: disconnect request from above, indication below — fireable
       even while data remains buffered *)
    from data to idle when U.tdisreq name t17:
        begin
            output L.dr_req;
            while b1head <> nil do
                begin tmp := b1head; b1head := b1head^.next; dispose(tmp); end;
            while b2head <> nil do
                begin tmp := b2head; b2head := b2head^.next; dispose(tmp); end;
            b1tail := nil; b2tail := nil; tmp := nil;
        end;

    (* data or disconnect indications arriving after the connection is
       gone are ignored — class 0 provides no recovery *)
    from idle, wfcc to same when L.dt_ind name t19:
        begin end;
    from idle, wfcc to same when L.dr_ind name t20:
        begin end;

    (* disconnect from below *)
    from data to idle when L.dr_ind name t18:
        begin
            output U.tdisind;
            while b1head <> nil do
                begin tmp := b1head; b1head := b1head^.next; dispose(tmp); end;
            while b2head <> nil do
                begin tmp := b2head; b2head := b2head^.next; dispose(tmp); end;
            b1tail := nil; b2tail := nil; tmp := nil;
        end;
end;
end.
"#;

/// Generate the TP0 trace analyzer.
pub fn analyzer() -> TraceAnalyzer {
    Tango::generate(SOURCE).expect("the TP0 specification is valid")
}

/// The §4.2 workload: the initiator handshake, then `up` data
/// interactions from the upper tester and `down` from the lower tester,
/// closed by a disconnect request from above.
pub fn workload(up: usize, down: usize) -> Vec<ScriptedInput> {
    let mut script = vec![
        ScriptedInput::new("U", "tconreq", vec![]),
        ScriptedInput::new("L", "cc_ind", vec![]),
    ];
    for i in 0..up {
        script.push(ScriptedInput::new(
            "U",
            "tdatreq",
            vec![Value::Int(i as i64)],
        ));
    }
    for i in 0..down {
        script.push(ScriptedInput::new(
            "L",
            "dt_ind",
            vec![Value::Int(100 + i as i64)],
        ));
    }
    script.push(ScriptedInput::new("U", "tdisreq", vec![]));
    script
}

/// Run the specification as an implementation (§4.1 methodology) to get a
/// valid trace for the workload. Different seeds sample different
/// interleavings of t13–t17.
pub fn valid_trace(up: usize, down: usize, seed: u64) -> Trace {
    analyzer()
        .generate_trace(&workload(up, down), ChoicePolicy::Random(seed), 100_000)
        .expect("TP0 consumes its whole workload")
}

/// Expected event count of a *complete* run: every data interaction both
/// enters and leaves the module before the disconnect.
pub fn complete_trace_len(up: usize, down: usize) -> usize {
    // inputs: tconreq, cc_ind, up, down, tdisreq
    // outputs: cr_req, tconconf, up dt_req, down tdatind, dr_req
    6 + 2 * (up + down)
}

/// A valid trace in which the whole workload was exchanged before the
/// disconnect (t17 may legally fire early and discard buffered data; for
/// controlled experiments we sample seeds until a complete interleaving
/// appears).
pub fn complete_valid_trace(up: usize, down: usize, base_seed: u64) -> Trace {
    let want = complete_trace_len(up, down);
    for seed in base_seed..base_seed + 5_000 {
        let t = valid_trace(up, down, seed);
        if t.len() == want {
            return t;
        }
    }
    panic!(
        "no complete TP0 interleaving found for up={} down={} near seed {}",
        up, down, base_seed
    );
}

/// The paper's invalid-trace construction: "one parameter in the last
/// data interaction of the trace file was edited slightly to cause a
/// mismatch". Returns `None` if the trace has no output data interaction.
pub fn invalidate_last_data(trace: &Trace) -> Option<Trace> {
    let mut t = trace.clone();
    let idx = t.events.iter().rposition(|e| {
        e.dir == tango::Dir::Out && !e.params.is_empty()
    })?;
    if let Value::Int(v) = t.events[idx].params[0] {
        t.events[idx].params[0] = Value::Int(v + 1);
    } else {
        t.events[idx].params[0] = Value::Int(999);
    }
    Some(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tango::{AnalysisOptions, OrderOptions, Verdict};

    #[test]
    fn spec_builds_with_buffers() {
        let a = analyzer();
        assert_eq!(a.module().states, vec!["idle", "wfcc", "data"]);
        assert_eq!(a.machine.module.transition_count(), 11);
    }

    #[test]
    fn generated_traces_are_valid_in_every_mode() {
        let a = analyzer();
        let trace = valid_trace(3, 3, 7);
        // At least: 9 consumed inputs + cr_req + tconconf + dr_req.
        assert!(trace.len() >= 12, "trace too short: {} events", trace.len());
        for order in [
            OrderOptions::none(),
            OrderOptions::io(),
            OrderOptions::ip(),
            OrderOptions::full(),
        ] {
            let r = a
                .analyze(&trace, &AnalysisOptions::with_order(order))
                .unwrap();
            assert_eq!(r.verdict, Verdict::Valid, "order mode {}", order.label());
        }
    }

    #[test]
    fn different_seeds_give_different_interleavings() {
        let t1 = valid_trace(4, 4, 1);
        let t2 = valid_trace(4, 4, 2);
        // Interleaving — and, because t17 may disconnect early and
        // discard buffered data, possibly length — depends on the seed;
        // the event sequences must differ.
        assert_ne!(t1, t2, "seeds 1 and 2 should interleave differently");
    }

    #[test]
    fn mutated_trace_is_invalid_under_full_checking() {
        let a = analyzer();
        let bad = invalidate_last_data(&valid_trace(3, 3, 7)).unwrap();
        let r = a
            .analyze(&bad, &AnalysisOptions::with_order(OrderOptions::full()))
            .unwrap();
        assert_eq!(r.verdict, Verdict::Invalid);
    }

    #[test]
    fn buffers_free_all_memory_on_disconnect() {
        // The generated implementation must quiesce with an empty heap:
        // every `new` matched by a `dispose` once the disconnect drains
        // the buffers. We verify indirectly: a valid trace ending in
        // dr_req re-analyzes fine (dangling pointers would error).
        let a = analyzer();
        let trace = valid_trace(5, 2, 3);
        let r = a
            .analyze(&trace, &AnalysisOptions::with_order(OrderOptions::full()))
            .unwrap();
        assert_eq!(r.verdict, Verdict::Valid);
        assert!(r.spec_errors.is_empty());
    }

    #[test]
    fn responder_path_also_works() {
        let a = analyzer();
        let trace = "in L.cr_ind\nout U.tconind\nout L.cc_req\nin L.dt_ind(9)\nout U.tdatind(9)\n";
        let r = a
            .analyze_text(trace, &AnalysisOptions::with_order(OrderOptions::full()))
            .unwrap();
        assert_eq!(r.verdict, Verdict::Valid);
    }
}

/// A TP0 variant with *bounded array* buffers instead of pointer-linked
/// dynamic memory — behaviourally identical on workloads that fit (≤ 64
/// buffered interactions per direction). §3.2.2 of the paper discusses
/// how dynamic memory makes state saves/restores "require substantially
/// more memory and CPU time"; comparing analyses of the same trace
/// against both variants isolates exactly that cost.
pub const SOURCE_BOUNDED: &str = r#"
specification tp0b;

const bufcap = 63;

channel TS(user, station);
    by user: tconreq; tdatreq(d : integer); tdisreq;
    by station: tconconf; tconind; tdatind(d : integer); tdisind;
end;

channel NS(net, station);
    by net: cc_ind; cr_ind; dt_ind(d : integer); dr_ind;
    by station: cr_req; cc_req; dt_req(d : integer); dr_req;
end;

module Tp0 process;
    ip U : TS(station);
    ip L : NS(station);
end;

body Tp0Body for Tp0;
    type slot = 0..63;
    var b1, b2 : array [slot] of integer;
        h1, t1, n1, h2, t2, n2 : integer;

    state idle, wfcc, data;

    initialize to idle begin
        h1 := 0; t1 := 0; n1 := 0;
        h2 := 0; t2 := 0; n2 := 0;
    end;

    trans
    from idle to wfcc when U.tconreq name t10:
        begin output L.cr_req; end;
    from wfcc to data when L.cc_ind name t11:
        begin output U.tconconf; end;
    from idle to data when L.cr_ind name t12:
        begin output U.tconind; output L.cc_req; end;

    from data to same when U.tdatreq provided n2 <= bufcap name t13:
        begin
            b2[t2] := d;
            t2 := (t2 + 1) mod (bufcap + 1);
            n2 := n2 + 1;
        end;
    from data to same provided n2 > 0 name t14:
        begin
            output L.dt_req(b2[h2]);
            h2 := (h2 + 1) mod (bufcap + 1);
            n2 := n2 - 1;
        end;
    from data to same when L.dt_ind provided n1 <= bufcap name t15:
        begin
            b1[t1] := d;
            t1 := (t1 + 1) mod (bufcap + 1);
            n1 := n1 + 1;
        end;
    from data to same provided n1 > 0 name t16:
        begin
            output U.tdatind(b1[h1]);
            h1 := (h1 + 1) mod (bufcap + 1);
            n1 := n1 - 1;
        end;
    from data to idle when U.tdisreq name t17:
        begin
            output L.dr_req;
            h1 := 0; t1 := 0; n1 := 0;
            h2 := 0; t2 := 0; n2 := 0;
        end;
    from idle, wfcc to same when L.dt_ind name t19:
        begin end;
    from idle, wfcc to same when L.dr_ind name t20:
        begin end;
    from data to idle when L.dr_ind name t18:
        begin
            output U.tdisind;
            h1 := 0; t1 := 0; n1 := 0;
            h2 := 0; t2 := 0; n2 := 0;
        end;
end;
end.
"#;

/// Analyzer for the bounded-buffer variant.
pub fn analyzer_bounded() -> TraceAnalyzer {
    Tango::generate(SOURCE_BOUNDED).expect("the bounded TP0 specification is valid")
}

#[cfg(test)]
mod bounded_tests {
    use super::*;
    use tango::{AnalysisOptions, OrderOptions, Verdict};

    /// Within the buffer capacity the two variants accept exactly the
    /// same traces.
    #[test]
    fn bounded_variant_is_trace_equivalent() {
        let heap = analyzer();
        let bounded = analyzer_bounded();
        for seed in [3, 11] {
            let trace = valid_trace(4, 3, seed);
            for a in [&heap, &bounded] {
                let r = a
                    .analyze(&trace, &AnalysisOptions::with_order(OrderOptions::full()))
                    .unwrap();
                assert_eq!(r.verdict, Verdict::Valid, "seed {}", seed);
            }
        }
        let bad = invalidate_last_data(&complete_valid_trace(3, 3, 13)).unwrap();
        for a in [&heap, &bounded] {
            let mut options = AnalysisOptions::with_order(OrderOptions::none());
            options.limits.max_transitions = 10_000_000;
            let r = a.analyze(&bad, &options).unwrap();
            assert_eq!(r.verdict, Verdict::Invalid);
        }
    }
}
