//! Seeded random specification generator for differential testing.
//!
//! The two executors (tree walker and bytecode VM) and the auto
//! selection layered on top must be observationally identical on *any*
//! specification, not just the hand-written protocol families the
//! benches use. This module generates small random — but deterministic
//! per seed — Estelle specifications that exercise the shapes the
//! compiler optimizes: quick guards (`global op const`), call-free
//! conjunctive `and`-chains, `load;load;binary` superinstruction
//! windows, `mod`/`div` arithmetic and `if`/`case` control flow.
//!
//! Every generated spec is progress-safe by construction: each state
//! has one unguarded `when P.step` catch-all declared *after* the
//! random guarded transitions, so a scripted workload always runs to
//! completion, and every spontaneous transition's body falsifies its
//! own guard, so the search cannot spin in place.

use estelle_runtime::Value;
use tango::rng::SplitMix64;
use tango::ScriptedInput;

/// One deterministic random specification.
#[derive(Clone, Copy, Debug)]
pub struct RandSpec {
    pub seed: u64,
}

impl RandSpec {
    pub fn new(seed: u64) -> Self {
        RandSpec { seed }
    }

    /// Render the Estelle source for this seed.
    pub fn source(&self) -> String {
        let mut r = SplitMix64::new(self.seed ^ 0x9e3779b97f4a7c15);
        let states = 2 + r.gen_index(3); // 2..=4
        let vars = 2 + r.gen_index(2); // 2..=3

        let mut s = String::from(
            "specification randspec;\n\
             channel C(env, m);\n\
             \tby env: step(k : integer);\n\
             \tby m: echo(k : integer);\n\
             end;\n\
             module M process; ip P : C(m); end;\n\
             body MB for M;\n\tvar ",
        );
        for v in 0..vars {
            if v > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("v{}", v));
        }
        s.push_str(" : integer;\n\tstate ");
        for i in 0..states {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("S{}", i));
        }
        s.push_str(";\n\tinitialize to S0 begin ");
        for v in 0..vars {
            s.push_str(&format!("v{} := {}; ", v, r.gen_index(5)));
        }
        s.push_str("end;\n\ttrans\n");

        // Random guarded input transitions: quick-guard and conj-guard
        // shapes over the integer globals, plus guards involving `k`.
        let guarded = 3 + r.gen_index(6); // 3..=8
        for t in 0..guarded {
            let from = r.gen_index(states);
            let to = r.gen_index(states);
            let guard = gen_guard(&mut r, vars, true);
            let body = gen_body(&mut r, vars, true);
            s.push_str(&format!(
                "\tfrom S{} to S{} when P.step provided {} name G{}: begin {} end;\n",
                from, to, guard, t, body
            ));
        }
        // Spontaneous transitions whose bodies falsify their own guard
        // (`vX > hi` fired with `vX := small`), so firing one cannot
        // re-enable itself and the search always drains.
        let spont = 1 + r.gen_index(3); // 1..=3
        for t in 0..spont {
            let from = r.gen_index(states);
            let to = r.gen_index(states);
            let v = r.gen_index(vars);
            let hi = 30 + r.gen_index(20) as i64;
            let extra = gen_body(&mut r, vars, false);
            s.push_str(&format!(
                "\tfrom S{} to S{} provided v{} > {} name Sp{}: begin v{} := {}; {} end;\n",
                from, to, v, hi, t, v, r.gen_index(5), extra
            ));
        }
        // Progress catch-alls, one per state, declared last so guarded
        // transitions shadow them in declaration order but a step input
        // can always be consumed.
        for i in 0..states {
            let v = r.gen_index(vars);
            s.push_str(&format!(
                "\tfrom S{} to S{} when P.step name Prog{}: begin \
                 v{} := (v{} + k) mod 53; output P.echo(k); end;\n",
                i,
                (i + 1) % states,
                i,
                v,
                v
            ));
        }
        s.push_str("end;\nend.\n");
        s
    }

    /// A deterministic workload of `n` step inputs for this seed.
    pub fn workload(&self, n: usize) -> Vec<ScriptedInput> {
        let mut r = SplitMix64::new(self.seed ^ 0x6a09e667f3bcc909);
        (0..n)
            .map(|_| {
                ScriptedInput::new("P", "step", vec![Value::Int(r.gen_range_i64(0, 60))])
            })
            .collect()
    }
}

/// A guard: either one comparison (the quick-guard shape) or an
/// `and`-chain of two or three (the conj-guard shape). `with_k` allows
/// terms over the interaction parameter.
fn gen_guard(r: &mut SplitMix64, vars: usize, with_k: bool) -> String {
    let terms = 1 + r.gen_index(3); // 1..=3
    let mut parts = Vec::new();
    for _ in 0..terms {
        parts.push(gen_term(r, vars, with_k));
    }
    if parts.len() == 1 {
        parts.pop().unwrap()
    } else {
        parts
            .iter()
            .map(|p| format!("({})", p))
            .collect::<Vec<_>>()
            .join(" and ")
    }
}

fn gen_term(r: &mut SplitMix64, vars: usize, with_k: bool) -> String {
    let ops = ["=", "<>", "<", "<=", ">", ">="];
    let op = ops[r.gen_index(ops.len())];
    let c = r.gen_range_i64(0, 40);
    if with_k && r.gen_index(4) == 0 {
        // `k mod 2 = 0`-style terms force frame loads in the guard.
        format!("k mod {} {} {}", 2 + r.gen_index(3), op, r.gen_index(3))
    } else {
        format!("v{} {} {}", r.gen_index(vars), op, c)
    }
}

/// A body of one to three statements over the globals. Every assignment
/// is `mod`-bounded so values stay small and overflow-free regardless of
/// workload length. `with_k` allows reading the interaction parameter.
fn gen_body(r: &mut SplitMix64, vars: usize, with_k: bool) -> String {
    let stmts = 1 + r.gen_index(3); // 1..=3
    let mut out = Vec::new();
    for _ in 0..stmts {
        let a = r.gen_index(vars);
        let b = r.gen_index(vars);
        let m = 17 + r.gen_index(40) as i64;
        match r.gen_index(if with_k { 5 } else { 4 }) {
            0 => out.push(format!("v{} := (v{} + v{} * 2) mod {}", a, a, b, m)),
            1 => out.push(format!(
                "if v{} > v{} then v{} := (v{} - 1) mod {} else v{} := (v{} + 2) mod {}",
                a, b, a, a, m, b, b, m
            )),
            2 => out.push(format!(
                "case v{} mod 3 of 0 : v{} := v{} div 2; 1 : v{} := v{} + 1 \
                 else v{} := 0 end",
                a, b, b, b, b, b
            )),
            3 => out.push(format!("v{} := (v{} * 3 + {}) mod {}", a, b, r.gen_index(7), m)),
            _ => out.push(format!("v{} := (v{} + k) mod {}", a, a, m)),
        }
    }
    let mut s = out.join("; ");
    s.push(';');
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use tango::{AnalysisOptions, ChoicePolicy, Tango, Verdict};

    #[test]
    fn sources_are_deterministic_per_seed() {
        assert_eq!(RandSpec::new(7).source(), RandSpec::new(7).source());
        assert_ne!(RandSpec::new(7).source(), RandSpec::new(8).source());
        assert_eq!(
            format!("{:?}", RandSpec::new(7).workload(5)),
            format!("{:?}", RandSpec::new(7).workload(5))
        );
    }

    #[test]
    fn generated_specs_build_and_self_analyze_valid() {
        for seed in 0..20 {
            let spec = RandSpec::new(seed);
            let src = spec.source();
            let analyzer = Tango::generate(&src)
                .unwrap_or_else(|e| panic!("seed {}: invalid spec: {}\n{}", seed, e, src));
            let trace = analyzer
                .generate_trace(&spec.workload(8), ChoicePolicy::First, 100_000)
                .unwrap_or_else(|e| panic!("seed {}: workload stuck: {}", seed, e));
            let r = analyzer.analyze(&trace, &AnalysisOptions::default()).unwrap();
            assert_eq!(r.verdict, Verdict::Valid, "seed {}: self-trace", seed);
        }
    }
}
