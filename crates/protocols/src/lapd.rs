//! LAPD — the D-channel link access protocol (CCITT Q.921), §4.1.
//!
//! A Q.921-inspired single-module specification standing in for the CNET
//! LAPD spec the paper used (that Estelle source is long gone; see
//! DESIGN.md for the substitution argument). The module mediates between
//! a layer-3 user (IP `U`) and the physical line (IP `L`):
//!
//! * link establishment (SABME/UA/DM) in both directions;
//! * multiple-frame operation with send/receive sequence numbers
//!   `vs`/`vr`/`va` modulo 8;
//! * I-frame transfer with a pointer-linked outgoing queue;
//! * **piggybacked acknowledgements** — an in-sequence I-frame may be
//!   acknowledged immediately with an RR, or the acknowledgement may be
//!   withheld for a later I-frame/RR (transitions `Td3`/`Td4`/`Td5` are
//!   genuinely nondeterministic). This is the paper's archetypal source
//!   of specification nondeterminism;
//! * REJ on out-of-sequence frames, release (DISC/UA), and frame
//!   discarding outside multiple-frame operation.

use estelle_runtime::Value;
use tango::{ChoicePolicy, ScriptedInput, Tango, Trace, TraceAnalyzer};

/// The Estelle source of the LAPD specification.
pub const SOURCE: &str = r#"
specification lapd;

type seq = 0..7;
type dataval = 0..255;

channel DLS(user, dl);
    by user: dl_est_req; dl_rel_req; dl_data_req(d : dataval);
    by dl: dl_est_ind; dl_est_conf; dl_rel_conf; dl_rel_ind;
           dl_data_ind(d : dataval);
end;

channel PHS(peer, station);
    by peer, station: sabme; ua; dm; disc;
        rr(nr : seq); rej(nr : seq);
        iframe(ns : seq; nr : seq; d : dataval);
end;

module Lapd process;
    ip U : DLS(dl);
    ip L : PHS(station);
end;

body LapdBody for Lapd;
    type cell = record d : dataval; next : ^cell end;
    var vs, vr, va : seq;
        ackpend : boolean;
        sq_head, sq_tail, tmp : ^cell;

    state TEI_ASSIGNED, AW_EST, AW_REL, MF_EST;

    initialize to TEI_ASSIGNED begin
        vs := 0; vr := 0; va := 0;
        ackpend := false;
        sq_head := nil; sq_tail := nil; tmp := nil;
    end;

    trans
    (* ---- link establishment ---- *)
    from TEI_ASSIGNED to AW_EST when U.dl_est_req name Tc1:
        begin output L.sabme; end;
    from AW_EST to MF_EST when L.ua name Tc2:
        begin
            output U.dl_est_conf;
            vs := 0; vr := 0; va := 0; ackpend := false;
        end;
    from AW_EST to TEI_ASSIGNED when L.dm name Tc3:
        begin output U.dl_rel_ind; end;
    from TEI_ASSIGNED to MF_EST when L.sabme name Tc4:
        begin
            output L.ua;
            output U.dl_est_ind;
            vs := 0; vr := 0; va := 0; ackpend := false;
        end;

    (* ---- release (graceful: only once the send queue drained) ---- *)
    from MF_EST to AW_REL when U.dl_rel_req provided sq_head = nil name Tr1:
        begin output L.disc; end;
    from AW_REL to TEI_ASSIGNED when L.ua name Tr2:
        begin output U.dl_rel_conf; end;
    from MF_EST to TEI_ASSIGNED when L.disc name Tr3:
        begin
            output L.ua;
            output U.dl_rel_ind;
            while sq_head <> nil do
                begin tmp := sq_head; sq_head := sq_head^.next; dispose(tmp); end;
            sq_tail := nil; tmp := nil;
        end;

    (* ---- user data: queue, then frame out ---- *)
    from MF_EST to same when U.dl_data_req name Td1:
        begin
            new(tmp);
            tmp^.d := d;
            tmp^.next := nil;
            if sq_head = nil then
                begin sq_head := tmp; sq_tail := tmp; end
            else
                begin sq_tail^.next := tmp; sq_tail := tmp; end;
            tmp := nil;
        end;
    from MF_EST to same provided sq_head <> nil name Td2:
        begin
            output L.iframe(vs, vr, sq_head^.d);
            vs := (vs + 1) mod 8;
            ackpend := false;
            tmp := sq_head;
            sq_head := sq_head^.next;
            if sq_head = nil then sq_tail := nil;
            dispose(tmp);
            tmp := nil;
        end;

    (* ---- incoming I-frames: ack now (Td3) or piggyback later (Td4/Td5) ---- *)
    from MF_EST to same when L.iframe provided ns = vr name Td3:
        begin
            vr := (vr + 1) mod 8;
            va := nr;
            output U.dl_data_ind(d);
            output L.rr(vr);
            ackpend := false;
        end;
    from MF_EST to same when L.iframe provided ns = vr name Td4:
        begin
            vr := (vr + 1) mod 8;
            va := nr;
            output U.dl_data_ind(d);
            ackpend := true;
        end;
    from MF_EST to same provided ackpend name Td5:
        begin output L.rr(vr); ackpend := false; end;
    from MF_EST to same when L.iframe provided ns <> vr name Td6:
        begin output L.rej(vr); end;

    (* ---- acknowledgements from the peer ---- *)
    from MF_EST to same when L.rr name Ta1:
        begin va := nr; end;
    from MF_EST to same when L.rej name Ta2:
        begin va := nr; end;

    (* ---- frames outside multiple-frame operation ---- *)
    from TEI_ASSIGNED, AW_EST, AW_REL to same when L.rr name Ti1:
        begin end;
    from TEI_ASSIGNED, AW_EST, AW_REL to same when L.rej name Ti2:
        begin end;
    from TEI_ASSIGNED, AW_REL to same when L.iframe name Ti3:
        begin end;
    from TEI_ASSIGNED, AW_REL to same when L.dm name Ti4:
        begin end;
    from TEI_ASSIGNED to same when L.disc name Ti5:
        begin output L.dm; end;
    from TEI_ASSIGNED, AW_REL to same when U.dl_data_req name Ti6:
        begin end;
end;
end.
"#;

/// Generate the LAPD trace analyzer.
pub fn analyzer() -> TraceAnalyzer {
    Tango::generate(SOURCE).expect("the LAPD specification is valid")
}

/// The paper's LAPD compiled to "over 800 transition declarations" — the
/// CNET specification enumerated frame handling case by case. To measure
/// at the same compiled size, this variant pads the core spec with
/// `any`-expanded transitions whose guards can never hold (`k` ranges
/// over 8..207, while `vs` stays within 0..7): semantically inert, but
/// every generate operation still has to consider them, reproducing the
/// per-step cost of a large transition table.
pub fn source_expanded() -> String {
    let padding = r#"
    from MF_EST to same any k : 8..207 do provided vs = k name Pad1:
        begin vs := 0; end;
    from AW_EST to same any k : 8..207 do provided vr = k name Pad2:
        begin vr := 0; end;
    from TEI_ASSIGNED to same any k : 8..207 do provided va = k name Pad3:
        begin va := 0; end;
    from AW_REL to same any k : 8..207 do provided va = k name Pad4:
        begin va := 0; end;
end;
"#;
    // Splice the padding before the body's `end;`.
    let marker = "end;\nend.";
    let idx = SOURCE.rfind(marker).expect("LAPD source ends with body+spec end");
    format!("{}{}\nend.", &SOURCE[..idx], padding.trim_end())
}

/// Analyzer for the 800+-transition variant.
pub fn analyzer_expanded() -> TraceAnalyzer {
    Tango::generate(&source_expanded()).expect("the expanded LAPD specification is valid")
}

/// The Figure-3 workload: the user establishes the link, sends
/// `di_user` data packets and releases; the peer acknowledges with UA,
/// per-frame RRs, and (optionally) sends `di_peer` I-frames of its own —
/// those exercise the piggyback nondeterminism.
pub fn workload(di_user: usize, di_peer: usize) -> Vec<ScriptedInput> {
    let mut s = vec![
        ScriptedInput::new("U", "dl_est_req", vec![]),
        ScriptedInput::new("L", "ua", vec![]),
    ];
    for i in 0..di_user {
        s.push(ScriptedInput::new(
            "U",
            "dl_data_req",
            vec![Value::Int((i % 256) as i64)],
        ));
    }
    for k in 0..di_peer {
        s.push(ScriptedInput::new(
            "L",
            "iframe",
            vec![
                Value::Int((k % 8) as i64),
                Value::Int(0),
                Value::Int(((100 + k) % 256) as i64),
            ],
        ));
    }
    for i in 0..di_user {
        s.push(ScriptedInput::new(
            "L",
            "rr",
            vec![Value::Int(((i + 1) % 8) as i64)],
        ));
    }
    s.push(ScriptedInput::new("U", "dl_rel_req", vec![]));
    s.push(ScriptedInput::new("L", "ua", vec![]));
    s
}

/// A valid trace for the Figure-3 workload; `seed` picks the
/// interleaving, like the paper's seven runs of the generated
/// implementation.
pub fn valid_trace(di_user: usize, di_peer: usize, seed: u64) -> Trace {
    analyzer()
        .generate_trace(&workload(di_user, di_peer), ChoicePolicy::Random(seed), 1_000_000)
        .expect("LAPD consumes its whole workload")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tango::{AnalysisOptions, OrderOptions, Verdict};

    #[test]
    fn spec_builds() {
        let a = analyzer();
        assert_eq!(
            a.module().states,
            vec!["TEI_ASSIGNED", "AW_EST", "AW_REL", "MF_EST"]
        );
        // 21 transition declarations (the real CNET spec compiled to 800+;
        // see DESIGN.md's substitution notes).
        assert_eq!(a.module().declared_transition_count(), 21);
    }

    #[test]
    fn establishment_and_data_round_trip() {
        let a = analyzer();
        let trace = "\
in U.dl_est_req
out L.sabme
in L.ua
out U.dl_est_conf
in U.dl_data_req(42)
out L.iframe(0, 0, 42)
in L.rr(1)
in U.dl_rel_req
out L.disc
in L.ua
out U.dl_rel_conf
";
        let r = a
            .analyze_text(trace, &AnalysisOptions::with_order(OrderOptions::full()))
            .unwrap();
        assert_eq!(r.verdict, Verdict::Valid);
    }

    #[test]
    fn generated_traces_valid_in_all_modes() {
        let a = analyzer();
        for seed in [1, 2, 3] {
            let t = valid_trace(5, 3, seed);
            for order in [
                OrderOptions::none(),
                OrderOptions::io(),
                OrderOptions::ip(),
                OrderOptions::full(),
            ] {
                let r = a.analyze(&t, &AnalysisOptions::with_order(order)).unwrap();
                assert_eq!(
                    r.verdict,
                    Verdict::Valid,
                    "seed {} order {}",
                    seed,
                    order.label()
                );
            }
        }
    }

    #[test]
    fn piggyback_choice_shows_in_traces() {
        // Across seeds, some runs ack immediately (rr right after the
        // data indication) and some delay: the count of rr frames can
        // differ because Td2 clears a pending ack by piggybacking.
        let counts: Vec<usize> = (0..8)
            .map(|seed| {
                valid_trace(3, 3, seed)
                    .events
                    .iter()
                    .filter(|e| e.interaction == "rr" && e.dir == tango::Dir::Out)
                    .count()
            })
            .collect();
        assert!(
            counts.iter().any(|&c| c != counts[0]),
            "expected the piggyback nondeterminism to vary rr counts, got {:?}",
            counts
        );
    }

    #[test]
    fn sequence_violation_detected() {
        let a = analyzer();
        // The second outgoing I-frame must carry ns=1, not ns=5.
        let trace = "\
in U.dl_est_req
out L.sabme
in L.ua
out U.dl_est_conf
in U.dl_data_req(1)
out L.iframe(0, 0, 1)
in U.dl_data_req(2)
out L.iframe(5, 0, 2)
";
        let r = a
            .analyze_text(trace, &AnalysisOptions::with_order(OrderOptions::full()))
            .unwrap();
        assert_eq!(r.verdict, Verdict::Invalid);
    }

    #[test]
    fn out_of_sequence_incoming_frame_gets_rej() {
        let a = analyzer();
        let trace = "\
in L.sabme
out L.ua
out U.dl_est_ind
in L.iframe(3, 0, 9)
out L.rej(0)
";
        let r = a
            .analyze_text(trace, &AnalysisOptions::with_order(OrderOptions::full()))
            .unwrap();
        assert_eq!(r.verdict, Verdict::Valid);
    }
}

#[cfg(test)]
mod expanded_tests {
    use super::*;
    use tango::{AnalysisOptions, OrderOptions, Verdict};

    #[test]
    fn expanded_variant_exceeds_800_compiled_transitions() {
        let a = analyzer_expanded();
        assert!(
            a.machine.module.transition_count() > 800,
            "got {}",
            a.machine.module.transition_count()
        );
    }

    #[test]
    fn expanded_variant_behaves_like_the_core_spec() {
        // Padding transitions never fire: the same trace verifies against
        // both variants.
        let core = analyzer();
        let expanded = analyzer_expanded();
        let trace = valid_trace(4, 2, 9);
        for a in [&core, &expanded] {
            let r = a
                .analyze(&trace, &AnalysisOptions::with_order(OrderOptions::full()))
                .unwrap();
            assert_eq!(r.verdict, Verdict::Valid);
        }
    }
}
