//! Protocol specifications and workload generators for the Tango
//! reproduction.
//!
//! * [`abp`] — an Alternating Bit Protocol sender (retransmission
//!   nondeterminism beyond the paper's case studies);
//! * [`ack`] — the paper's Figure 1 toy spec (MDFS motivation);
//! * [`ip3`] — the paper's Figure 2 specs `ip3` and `ip3'` (MDFS
//!   termination/inconclusiveness);
//! * [`tp0`] — the ISO Class 0 Transport Protocol of §4.2, with
//!   dynamic-memory buffers and the t13–t17 data-state transitions;
//! * [`lapd`] — a Q.921-inspired LAPD specification for the §4.1
//!   experiments, including piggybacked-acknowledgement nondeterminism;
//! * [`synthetic`] — a generator of specifications with any number of
//!   transition declarations, for the §4 throughput-vs-size claim;
//! * [`randspec`] — a seeded random-specification generator for
//!   differential executor testing.

pub mod abp;
pub mod ack;
pub mod ip3;
pub mod lapd;
pub mod randspec;
pub mod synthetic;
pub mod tp0;
