//! Alternating Bit Protocol sender.
//!
//! A compact classic beyond the paper's own case studies, included
//! because it distils the exact nondeterminism class Tango targets:
//! the sender may retransmit the outstanding frame *at any moment*
//! (a spontaneous transition), so two correct implementations of the same
//! workload can produce traces with different numbers of `data` frames —
//! and the analyzer must accept each trace exactly as observed while
//! still rejecting sequence-bit violations.
//!
//! Timers are modelled away (the paper's Tango has no time either):
//! retransmission is spontaneous but bounded by a retry budget, keeping
//! the specification free of unbounded non-progress behaviour. Acks that
//! arrive while the sender is idle simply wait in the FIFO queue until
//! the next exchange classifies them as stale.

use estelle_runtime::Value;
use tango::{ChoicePolicy, ScriptedInput, Tango, Trace, TraceAnalyzer};

/// The Estelle source of the ABP sender specification.
pub const SOURCE: &str = r#"
specification abp_sender;

const maxretry = 3;

type bit = 0..1;
type byte = 0..255;

channel US(user, snd);
    by user: req(d : byte);
    by snd: conf;
end;

channel LS(line, snd);
    by line: ack(b : bit);
    by snd: data(b : bit; d : byte);
end;

module Sender process;
    ip U : US(snd);
    ip L : LS(snd);
end;

body SenderBody for Sender;
    var seq : bit;
        cur : byte;
        retries : integer;

    state Idle, Wait;

    initialize to Idle begin
        seq := 0;
        retries := 0;
        cur := 0;
    end;

    trans
    (* accept a send request, transmit the frame *)
    from Idle to Wait when U.req name Send:
    begin
        cur := d;
        retries := 0;
        output L.data(seq, cur);
    end;

    (* spontaneous retransmission while waiting, up to the budget *)
    from Wait to Wait provided retries < maxretry name Retransmit:
    begin
        retries := retries + 1;
        output L.data(seq, cur);
    end;

    (* the right acknowledgement completes the exchange *)
    from Wait to Idle when L.ack provided b = seq name GoodAck:
    begin
        seq := (seq + 1) mod 2;
        output U.conf;
    end;

    (* a stale acknowledgement is ignored *)
    from Wait to Wait when L.ack provided b <> seq name StaleAck:
    begin end;

end;
end.
"#;

/// Generate the ABP trace analyzer.
pub fn analyzer() -> TraceAnalyzer {
    Tango::generate(SOURCE).expect("the ABP specification is valid")
}

/// A workload of `n` user messages with matching acknowledgements.
pub fn workload(n: usize) -> Vec<ScriptedInput> {
    let mut s = Vec::new();
    for i in 0..n {
        s.push(ScriptedInput::new(
            "U",
            "req",
            vec![Value::Int((i % 256) as i64)],
        ));
        s.push(ScriptedInput::new(
            "L",
            "ack",
            vec![Value::Int((i % 2) as i64)],
        ));
    }
    s
}

/// A valid trace; different seeds retransmit different amounts.
pub fn valid_trace(n: usize, seed: u64) -> Trace {
    analyzer()
        .generate_trace(&workload(n), ChoicePolicy::Random(seed), 100_000)
        .expect("ABP consumes its whole workload")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tango::{AnalysisOptions, Dir, OrderOptions, Verdict};

    #[test]
    fn spec_builds() {
        let a = analyzer();
        assert_eq!(a.module().states, vec!["Idle", "Wait"]);
        assert_eq!(a.module().declared_transition_count(), 4);
    }

    #[test]
    fn traces_with_and_without_retransmissions_verify() {
        let a = analyzer();
        let mut frame_counts = Vec::new();
        for seed in 0..10 {
            let t = valid_trace(3, seed);
            frame_counts.push(
                t.events
                    .iter()
                    .filter(|e| e.interaction == "data")
                    .count(),
            );
            let r = a
                .analyze(&t, &AnalysisOptions::with_order(OrderOptions::full()))
                .unwrap();
            assert_eq!(r.verdict, Verdict::Valid, "seed {}", seed);
        }
        // The retransmission nondeterminism must show across seeds.
        assert!(
            frame_counts.iter().any(|&c| c != frame_counts[0]),
            "expected varying data-frame counts, got {:?}",
            frame_counts
        );
    }

    #[test]
    fn wrong_sequence_bit_detected() {
        let a = analyzer();
        let mut t = valid_trace(2, 4);
        // Flip the bit of the first data frame.
        let idx = t
            .events
            .iter()
            .position(|e| e.dir == Dir::Out && e.interaction == "data")
            .unwrap();
        if let Value::Int(b) = t.events[idx].params[0] {
            t.events[idx].params[0] = Value::Int(1 - b);
        }
        let r = a
            .analyze(&t, &AnalysisOptions::with_order(OrderOptions::full()))
            .unwrap();
        assert_eq!(r.verdict, Verdict::Invalid);
    }

    #[test]
    fn missing_confirmation_detected() {
        let a = analyzer();
        let trace = "\
in U.req(9)
out L.data(0, 9)
in L.ack(0)
";
        // GoodAck must emit U.conf; a trace without it is invalid.
        let r = a
            .analyze_text(trace, &AnalysisOptions::with_order(OrderOptions::full()))
            .unwrap();
        assert_eq!(r.verdict, Verdict::Invalid);
    }

    #[test]
    fn stale_ack_path_is_explainable() {
        let a = analyzer();
        let trace = "\
in U.req(5)
out L.data(0, 5)
in L.ack(1)
out L.data(0, 5)
in L.ack(0)
out U.conf
";
        let r = a
            .analyze_text(trace, &AnalysisOptions::with_order(OrderOptions::full()))
            .unwrap();
        assert_eq!(r.verdict, Verdict::Valid);
        let w = r.witness.unwrap();
        assert!(w.contains(&"StaleAck".to_string()));
        assert!(w.contains(&"Retransmit".to_string()));
    }

    #[test]
    fn retry_budget_limits_duplicate_frames() {
        let a = analyzer();
        // Five copies of the frame = 1 original + 4 retransmissions,
        // exceeding maxretry = 3.
        let trace = "\
in U.req(5)
out L.data(0, 5)
out L.data(0, 5)
out L.data(0, 5)
out L.data(0, 5)
out L.data(0, 5)
";
        let r = a
            .analyze_text(trace, &AnalysisOptions::with_order(OrderOptions::full()))
            .unwrap();
        assert_eq!(r.verdict, Verdict::Invalid);
    }
}
