//! Synthetic specification generator.
//!
//! §4 of the paper relates analyzer throughput to specification size:
//! "for simple test-specifications with under 10 transition declarations,
//! TAMs can search up to 250 transitions per second … TP0 (19 transition
//! declarations) between 40 and 60 … LAPD (over 800 transition
//! declarations) … only 10". To reproduce that *shape* on a controlled
//! sweep we generate specifications with any requested number of
//! transition declarations: a ring of states over one echo channel, where
//! every state has one real progress transition plus inert guarded
//! padding declarations that the generate step must still consider.

use tango::{ScriptedInput, Tango, TraceAnalyzer};
use estelle_runtime::Value;

/// Parameters of a synthetic specification.
#[derive(Clone, Copy, Debug)]
pub struct SyntheticSpec {
    /// Number of states in the ring (≥ 1).
    pub states: usize,
    /// Total transition declarations to emit (≥ `states`).
    pub transitions: usize,
}

impl SyntheticSpec {
    pub fn new(states: usize, transitions: usize) -> Self {
        assert!(states >= 1);
        assert!(transitions >= states);
        SyntheticSpec { states, transitions }
    }

    /// Render the Estelle source.
    pub fn source(&self) -> String {
        let mut s = String::from(
            "specification synth;\n\
             channel C(env, m);\n\
             \tby env: step(k : integer);\n\
             \tby m: echo(k : integer);\n\
             end;\n\
             module M process; ip P : C(m); end;\n\
             body MB for M;\n\
             \tvar acc : integer;\n",
        );
        s.push_str("\tstate ");
        for i in 0..self.states {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("S{}", i));
        }
        s.push_str(";\n\tinitialize to S0 begin acc := 0 end;\n\ttrans\n");

        // One progress transition per state: consume a step, echo it,
        // move around the ring.
        for i in 0..self.states {
            s.push_str(&format!(
                "\tfrom S{} to S{} when P.step name Prog{}: begin acc := acc + k; output P.echo(k); end;\n",
                i,
                (i + 1) % self.states,
                i
            ));
        }
        // Padding declarations: spontaneous transitions whose guards are
        // never true, spread over the states. The generate operation must
        // evaluate every one of them at every node — exactly the per-step
        // cost that grows with specification size.
        let padding = self.transitions - self.states;
        for p in 0..padding {
            let st = p % self.states;
            s.push_str(&format!(
                "\tfrom S{} to S{} provided acc = -{} name Pad{}: begin acc := 0; output P.echo(0); end;\n",
                st,
                (st + 1) % self.states,
                p + 1,
                p
            ));
        }
        s.push_str("end;\nend.\n");
        s
    }

    /// Build the analyzer for this synthetic spec.
    pub fn analyzer(&self) -> TraceAnalyzer {
        Tango::generate(&self.source()).expect("synthetic specs are valid")
    }

    /// A workload of `n` steps around the ring.
    pub fn workload(&self, n: usize) -> Vec<ScriptedInput> {
        (0..n)
            .map(|i| ScriptedInput::new("P", "step", vec![Value::Int(i as i64 + 1)]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tango::{AnalysisOptions, ChoicePolicy, Verdict};

    #[test]
    fn sizes_come_out_as_requested() {
        for (states, transitions) in [(1, 5), (3, 19), (4, 100)] {
            let spec = SyntheticSpec::new(states, transitions);
            let a = spec.analyzer();
            assert_eq!(a.module().declared_transition_count(), transitions);
            assert_eq!(a.module().states.len(), states);
        }
    }

    #[test]
    fn generated_traces_re_analyze_valid() {
        let spec = SyntheticSpec::new(3, 25);
        let a = spec.analyzer();
        let trace = a
            .generate_trace(&spec.workload(12), ChoicePolicy::First, 10_000)
            .unwrap();
        assert_eq!(trace.len(), 24); // each step echoes
        let r = a.analyze(&trace, &AnalysisOptions::default()).unwrap();
        assert_eq!(r.verdict, Verdict::Valid);
    }

    #[test]
    fn padding_transitions_never_fire() {
        let spec = SyntheticSpec::new(2, 40);
        let a = spec.analyzer();
        let trace = a
            .generate_trace(&spec.workload(6), ChoicePolicy::First, 10_000)
            .unwrap();
        let r = a.analyze(&trace, &AnalysisOptions::default()).unwrap();
        let witness = r.witness.unwrap();
        assert!(witness.iter().all(|n| n.starts_with("Prog")));
    }
}
