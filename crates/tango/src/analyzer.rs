//! The generated trace analyzer — Tango's end product.
//!
//! [`Tango::generate`] plays the role of running the Tango tool on an
//! Estelle specification: it produces a [`TraceAnalyzer`], the analog of
//! the compiled TAM executable. The analyzer then checks traces in static
//! mode ([`TraceAnalyzer::analyze`]) or on-line dynamic mode
//! ([`TraceAnalyzer::analyze_online`]), supports the runtime options of
//! §2.4, and doubles as an implementation generator (§4.1's methodology).

use crate::checkpoint::{Checkpoint, CheckpointBody};
use crate::error::TangoError;
use crate::genimpl::{run_implementation, ChoicePolicy, ScriptedInput};
use crate::options::AnalysisOptions;
use crate::search::dfs::{resume_dfs, run_dfs, DfsOutcome};
use crate::search::mdfs::run_mdfs;
use crate::stats::SearchStats;
use crate::telemetry::{PgoError, PgoProfile, Telemetry};
use crate::trace::format::parse_trace;
use crate::trace::source::TraceSource;
use crate::trace::{ResolvedTrace, Trace};
use crate::env::TraceEnv;
use crate::verdict::{AnalysisReport, Verdict};
use estelle_frontend::sema::model::{AnalyzedModule, StateId};
use estelle_runtime::Machine;

/// The trace-analysis tool generator.
pub struct Tango;

impl Tango {
    /// Generate a trace analyzer from Estelle source — the whole pipeline
    /// the paper builds from Pet + Dingo + the Tango additions.
    pub fn generate(source: &str) -> Result<TraceAnalyzer, TangoError> {
        Ok(TraceAnalyzer::from_machine(Machine::from_source(source)?))
    }
}

/// A generated trace analysis module (TAM).
pub struct TraceAnalyzer {
    pub machine: Machine,
}

impl std::fmt::Debug for TraceAnalyzer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceAnalyzer")
            .field("module", &self.module().module_name)
            .field("transitions", &self.machine.module.transition_count())
            .finish()
    }
}

impl TraceAnalyzer {
    pub fn from_machine(machine: Machine) -> Self {
        TraceAnalyzer { machine }
    }

    /// The analyzed specification model (IP names, states, types …).
    pub fn module(&self) -> &AnalyzedModule {
        &self.machine.module.analyzed
    }

    /// Display names of every compiled transition, indexed by id — what
    /// `Telemetry::with_transition_names` wants for dump hot-spot rows
    /// and the `/profile` endpoint.
    pub fn transition_names(&self) -> Vec<String> {
        (0..self.machine.module.transition_count())
            .map(|i| self.machine.transition_name(i).to_string())
            .collect()
    }

    /// Snapshot a recorded [`TransitionProfile`] into the serializable
    /// `--pgo-out` form, tagged with this analyzer's spec name and
    /// transition names for later validation.
    pub fn pgo_snapshot(&self, profile: &crate::telemetry::TransitionProfile) -> PgoProfile {
        PgoProfile::from_profile(&self.module().spec_name, profile, &|i| {
            self.machine.transition_name(i).to_string()
        })
    }

    /// Apply a previously recorded PGO profile to the compiled program:
    /// dispatch buckets are reordered by observed fire rate and
    /// conjunctive guard terms are re-sorted cheapest-first. The profile
    /// is validated like a checkpoint first — spec name, transition
    /// count and every transition name must match this analyzer, or a
    /// typed [`PgoError`] is returned and nothing changes. Verdicts and
    /// the TE/GE/RE/SA counters are identical with or without PGO.
    pub fn apply_pgo(&mut self, profile: &PgoProfile) -> Result<(), PgoError> {
        let hints = profile.hints_for(
            &self.module().spec_name,
            self.machine.module.transition_count(),
            &|i| self.machine.transition_name(i).to_string(),
        )?;
        self.machine.apply_pgo(&hints);
        Ok(())
    }

    /// Parse a trace file and analyze it (static mode).
    pub fn analyze_text(
        &self,
        trace_text: &str,
        options: &AnalysisOptions,
    ) -> Result<AnalysisReport, TangoError> {
        self.analyze_text_with(trace_text, options, &mut Telemetry::off())
    }

    /// [`TraceAnalyzer::analyze_text`] with a telemetry handle.
    pub fn analyze_text_with(
        &self,
        trace_text: &str,
        options: &AnalysisOptions,
        tel: &mut Telemetry,
    ) -> Result<AnalysisReport, TangoError> {
        let trace = parse_trace(trace_text, Some(self.module()))?;
        self.analyze_with(&trace, options, tel)
    }

    /// Analyze a complete trace (static mode).
    pub fn analyze(
        &self,
        trace: &Trace,
        options: &AnalysisOptions,
    ) -> Result<AnalysisReport, TangoError> {
        self.analyze_with(trace, options, &mut Telemetry::off())
    }

    /// [`TraceAnalyzer::analyze`] with a telemetry handle receiving the
    /// search-event stream, metrics, progress heartbeats and the
    /// per-transition profile (whichever facilities the handle enables).
    pub fn analyze_with(
        &self,
        trace: &Trace,
        options: &AnalysisOptions,
        tel: &mut Telemetry,
    ) -> Result<AnalysisReport, TangoError> {
        let resolved = ResolvedTrace::resolve(trace, self.module())?;
        self.analyze_resolved_with(resolved, options, tel)
    }

    /// Analyze an already resolved trace (static mode), applying the
    /// §2.4.1 initial-state search when enabled.
    pub fn analyze_resolved(
        &self,
        trace: ResolvedTrace,
        options: &AnalysisOptions,
    ) -> Result<AnalysisReport, TangoError> {
        self.analyze_resolved_with(trace, options, &mut Telemetry::off())
    }

    /// [`TraceAnalyzer::analyze_resolved`] with a telemetry handle. One
    /// handle covers the whole analysis: initial-state-search rounds
    /// continue the same event stream (one `meta` line, monotone
    /// sequence numbers).
    pub fn analyze_resolved_with(
        &self,
        trace: ResolvedTrace,
        options: &AnalysisOptions,
        tel: &mut Telemetry,
    ) -> Result<AnalysisReport, TangoError> {
        let machine = self
            .machine
            .policy_view(options.policy)
            .exec_view(options.exec_mode);
        let mut stats = SearchStats::default();
        tel.begin("dfs", &self.module().module_name);

        let mut env = TraceEnv::new(self.module(), trace.clone(), options, false)?;
        let start = machine.initial_state()?;
        let outcome = run_dfs(&machine, &mut env, start, options, &mut stats, tel)?;
        let mut report = report_from_outcome(outcome, stats, &trace);

        // §2.4.1: on failure, "backtrack to the point right after the
        // initialize transition was taken, choose another initial FSM
        // state, and begin the analysis again".
        if report.verdict == Verdict::Invalid && options.initial_state_search {
            let default_init = self.machine.module.init_to;
            for sid in 0..self.module().states.len() {
                let sid = StateId(sid as u32);
                if sid == default_init {
                    continue;
                }
                let mut env = TraceEnv::new(self.module(), trace.clone(), options, false)?;
                let start = machine.initial_state_at(sid)?;
                let mut stats = SearchStats::default();
                let outcome = run_dfs(&machine, &mut env, start, options, &mut stats, tel)?;
                report.stats.absorb(&stats);
                report.spec_errors.extend(outcome.spec_errors);
                report.spill_faults.extend(outcome.spill_faults);
                if outcome.verdict == Verdict::Valid {
                    report.verdict = Verdict::Valid;
                    report.witness = outcome.witness;
                    report.initial_state_used =
                        Some(self.module().state_name(sid).to_string());
                    break;
                }
                if let Verdict::Inconclusive(r) = outcome.verdict {
                    report.verdict = Verdict::Inconclusive(r);
                    break;
                }
            }
        }
        Ok(report)
    }

    /// Continue an analysis stopped on a resource limit (static mode).
    ///
    /// `checkpoint` comes from the [`AnalysisReport::checkpoint`] of the
    /// stopped run; `options` should differ from the original ones only in
    /// raised limits — the checking options must stay the same for the
    /// combined verdict to be meaningful. Counters continue rather than
    /// restart: after any number of stop/resume rounds, the final
    /// TE/GE/RE/SA totals equal those of an uninterrupted run. The
    /// §2.4.1 initial-state search is not re-entered on resume; resume the
    /// default-state search to its own conclusion instead.
    pub fn analyze_resume(
        &self,
        checkpoint: Checkpoint,
        options: &AnalysisOptions,
    ) -> Result<AnalysisReport, TangoError> {
        self.analyze_resume_with(checkpoint, options, &mut Telemetry::off())
    }

    /// [`TraceAnalyzer::analyze_resume`] with a telemetry handle. Reusing
    /// one handle across stop/resume rounds produces one continuous event
    /// stream for the whole logical analysis.
    pub fn analyze_resume_with(
        &self,
        checkpoint: Checkpoint,
        options: &AnalysisOptions,
        tel: &mut Telemetry,
    ) -> Result<AnalysisReport, TangoError> {
        let machine = self
            .machine
            .policy_view(options.policy)
            .exec_view(options.exec_mode);
        checkpoint
            .validate_against(self.module(), self.machine.module.transition_count())
            .map_err(|m| TangoError::Env(crate::env::EnvError(format!("resume: {}", m))))?;
        let Checkpoint { body, trace, stats } = checkpoint;
        let dfs = match body {
            CheckpointBody::Dfs(dfs) => dfs,
            CheckpointBody::Mdfs(_) => {
                return Err(TangoError::Env(crate::env::EnvError(
                    "resume: on-line (MDFS) checkpoint — use analyze_online_resume".into(),
                )))
            }
        };
        let mut stats = stats;
        tel.begin("dfs", &self.module().module_name);
        let mut env = TraceEnv::new(self.module(), trace.clone(), options, false)?;
        let outcome = resume_dfs(&machine, &mut env, dfs, options, &mut stats, tel)?;
        Ok(report_from_outcome(outcome, stats, &trace))
    }

    /// On-line analysis of a dynamic trace (§3): multi-threaded DFS with
    /// PG-nodes and dynamic node reordering. Runs until the source reaches
    /// end-of-file (then returns a conclusive verdict) or until the trace
    /// is conclusively invalid. `on_status` observes interim verdicts each
    /// time the known search tree is exhausted; returning `false` stops
    /// the analysis and reports the interim verdict.
    pub fn analyze_online(
        &self,
        source: &mut dyn TraceSource,
        options: &AnalysisOptions,
        on_status: &mut dyn FnMut(&Verdict) -> bool,
    ) -> Result<AnalysisReport, TangoError> {
        self.analyze_online_with(source, options, on_status, &mut Telemetry::off())
    }

    /// [`TraceAnalyzer::analyze_online`] with a telemetry handle.
    pub fn analyze_online_with(
        &self,
        source: &mut dyn TraceSource,
        options: &AnalysisOptions,
        on_status: &mut dyn FnMut(&Verdict) -> bool,
        tel: &mut Telemetry,
    ) -> Result<AnalysisReport, TangoError> {
        tel.begin("mdfs", &self.module().module_name);
        run_mdfs(&self.machine, self.module(), source, options, on_status, tel)
    }

    /// Continue an on-line analysis stopped on a resource limit.
    ///
    /// Only checkpoints saved *after* the trace source reached end-of-file
    /// are resumable (before eof the remaining events are unknowable, so a
    /// saved front could not be replayed faithfully). The checkpoint may be
    /// resumed at a different worker count than it was saved at: the saved
    /// search front is redistributed over the resolved worker set.
    pub fn analyze_online_resume(
        &self,
        checkpoint: Checkpoint,
        options: &AnalysisOptions,
        on_status: &mut dyn FnMut(&Verdict) -> bool,
    ) -> Result<AnalysisReport, TangoError> {
        self.analyze_online_resume_with(checkpoint, options, on_status, &mut Telemetry::off())
    }

    /// [`TraceAnalyzer::analyze_online_resume`] with a telemetry handle.
    pub fn analyze_online_resume_with(
        &self,
        checkpoint: Checkpoint,
        options: &AnalysisOptions,
        on_status: &mut dyn FnMut(&Verdict) -> bool,
        tel: &mut Telemetry,
    ) -> Result<AnalysisReport, TangoError> {
        checkpoint
            .validate_against(self.module(), self.machine.module.transition_count())
            .map_err(|m| TangoError::Env(crate::env::EnvError(format!("resume: {}", m))))?;
        let Checkpoint { body, trace, stats } = checkpoint;
        let mdfs = match body {
            CheckpointBody::Mdfs(m) => m,
            CheckpointBody::Dfs(_) => {
                return Err(TangoError::Env(crate::env::EnvError(
                    "resume: static (DFS) checkpoint — use analyze_resume".into(),
                )))
            }
        };
        if !mdfs.eof {
            return Err(TangoError::Env(crate::env::EnvError(
                "resume: only eof-reached on-line checkpoints are resumable".into(),
            )));
        }
        tel.begin("mdfs", &self.module().module_name);
        crate::search::mdfs::resume_mdfs(
            &self.machine,
            self.module(),
            mdfs,
            trace,
            stats,
            options,
            on_status,
            tel,
        )
    }

    /// Implementation-generation mode (§4.1 methodology): execute the
    /// specification against scripted inputs, logging a valid trace.
    pub fn generate_trace(
        &self,
        script: &[ScriptedInput],
        choice: ChoicePolicy,
        max_steps: u64,
    ) -> Result<Trace, TangoError> {
        run_implementation(&self.machine, script, choice, max_steps)
    }
}

/// Assemble a report from a raw DFS outcome: failure localization for
/// invalid traces, a resumable checkpoint for limit-stopped ones.
fn report_from_outcome(
    outcome: DfsOutcome,
    stats: SearchStats,
    trace: &ResolvedTrace,
) -> AnalysisReport {
    let mut report = AnalysisReport::new(outcome.verdict, stats);
    report.witness = outcome.witness;
    report.spec_errors = outcome.spec_errors;
    report.spill_faults = outcome.spill_faults;
    if report.verdict == Verdict::Invalid {
        report.best_effort = Some(crate::verdict::BestEffort {
            events_explained: outcome.best.0,
            events_total: outcome.total_events,
            path: outcome.best.1,
        });
    }
    if let Some(dfs) = outcome.checkpoint {
        report.checkpoint = Some(Box::new(Checkpoint {
            body: CheckpointBody::Dfs(dfs),
            trace: trace.clone(),
            stats: report.stats.clone(),
        }));
    }
    report
}
