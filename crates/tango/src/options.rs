//! Runtime options (paper §2.4).
//!
//! The relative-order checking options, IP disabling, the initial-state
//! search and the partial-trace extensions are all knobs on
//! [`AnalysisOptions`]. The four preset combinations used in the paper's
//! tables — NR, IO, IP and FULL — are provided as constructors.

use crate::search::spill::SpillOptions;
use estelle_runtime::{ExecMode, UndefinedPolicy};
use std::collections::HashSet;
use std::time::Duration;

/// Which relative-order relations between trace streams are enforced
/// (§2.4.2). Order *within* one (IP, direction) stream is always enforced.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OrderOptions {
    /// "Inputs with respect to outputs": the next input consumed at an IP
    /// must precede (in the trace) any unverified output at the same IP.
    pub input_wrt_output: bool,
    /// "Outputs with respect to inputs": the next output generated at an IP
    /// must precede any unconsumed input at the same IP. Do not use when
    /// the IUT has input queues.
    pub output_wrt_input: bool,
    /// "IP relative order checking": inputs are consumed in global trace
    /// order across all IPs, outputs likewise (with the same-transition
    /// permutation exception). Do not use when the IUT has queues.
    pub ip_order: bool,
}

impl OrderOptions {
    /// NR: relative order checking disabled.
    pub fn none() -> Self {
        OrderOptions::default()
    }

    /// IO: input/output and output/input checking only.
    pub fn io() -> Self {
        OrderOptions {
            input_wrt_output: true,
            output_wrt_input: true,
            ip_order: false,
        }
    }

    /// IP: IP relative order checking only.
    pub fn ip() -> Self {
        OrderOptions {
            input_wrt_output: false,
            output_wrt_input: false,
            ip_order: true,
        }
    }

    /// FULL: all relative order checking options enabled.
    pub fn full() -> Self {
        OrderOptions {
            input_wrt_output: true,
            output_wrt_input: true,
            ip_order: true,
        }
    }

    /// The label used in the paper's tables.
    pub fn label(&self) -> &'static str {
        match (self.input_wrt_output || self.output_wrt_input, self.ip_order) {
            (false, false) => "NR",
            (true, false) => "IO",
            (false, true) => "IP",
            (true, true) => "FULL",
        }
    }
}

/// Safety limits on a search.
#[derive(Clone, Copy, Debug)]
pub struct SearchLimits {
    /// Maximum transitions executed before giving up with an inconclusive
    /// verdict (defends against the §4.2 exponential blowups in batch use).
    pub max_transitions: u64,
    /// Maximum saved PG-nodes in MDFS (§3.2.1 degenerate-case guard).
    pub max_pg_nodes: usize,
    /// Maximum search depth.
    pub max_depth: usize,
    /// Maximum *consecutive* fired transitions that neither consume an
    /// observed input nor verify an observed output. Bounds the two
    /// infinite-depth hazards the paper names: non-progress cycles (§2.1)
    /// and unbounded fabrication on unobserved IPs (§5.4). Paths are cut
    /// (not failed globally) when they exceed it, so a generous default is
    /// safe for real protocols.
    pub max_barren_steps: usize,
    /// Wall-clock deadline for one search. Checked cooperatively at the
    /// top of the search loop; on expiry the static DFS stops with
    /// `Inconclusive(TimeLimit)` and a resumable checkpoint, the on-line
    /// MDFS stops with the same verdict (including while idle-polling a
    /// stalled source, so a dead feed can never wedge the monitor).
    pub max_wall_time: Option<Duration>,
    /// Budget, in approximate bytes, for the saved state snapshots held
    /// by the search (DFS backtracking frames, MDFS work and PG nodes).
    /// What happens on excess depends on [`AnalysisOptions::spill`]:
    /// with spilling off the search stops with
    /// `Inconclusive(MemoryLimit)` (the static DFS with a resumable
    /// checkpoint); with spilling on, cold snapshots are evicted to disk
    /// and the search continues at disk bandwidth.
    pub max_state_bytes: Option<usize>,
}

impl Default for SearchLimits {
    fn default() -> Self {
        SearchLimits {
            max_transitions: 50_000_000,
            max_pg_nodes: 1_000_000,
            max_depth: 1_000_000,
            max_barren_steps: 128,
            max_wall_time: None,
            max_state_bytes: None,
        }
    }
}

/// All runtime options of a generated trace analyzer.
#[derive(Clone, Debug)]
pub struct AnalysisOptions {
    pub order: OrderOptions,
    /// §2.4.3: outputs at these IPs are not checked and always valid;
    /// their empty input queues never make a node partially generated.
    pub disabled_ips: HashSet<String>,
    /// §5.2: IPs whose *inputs* are unobservable; `when` clauses on them
    /// fire with fabricated undefined interactions. Implies the outputs at
    /// these IPs are unchecked as well.
    pub unobserved_ips: HashSet<String>,
    /// §2.4.1: if the default initial state fails, retry the analysis from
    /// every other FSM state.
    pub initial_state_search: bool,
    /// Undefined-value semantics; `Propagate` for partial traces (§5.1).
    pub policy: UndefinedPolicy,
    /// Extension (paper §4.2 "another useful approach"): remember visited
    /// (state, cursor) pairs in a hash table and prune repeats.
    pub state_hashing: bool,
    /// §3.1.3 dynamic node reordering: when new input arrives, revived
    /// PG-nodes go on *top* of the work stack ("putting the rest of the
    /// search tree on hold"). Disable for the paper's basic MDFS, which
    /// only reconsiders PG-nodes after the rest of the tree is exhausted.
    pub mdfs_reorder: bool,
    /// Copy-on-write *Save*/*Restore* (on by default): saved search nodes
    /// share heap chunks with the live state and identical snapshots are
    /// interned, so a save costs O(touched chunks) instead of O(state) —
    /// the §3.2 dominant cost. `false` forces the original eager
    /// deep-clone path (CLI `--cow=off`), kept for A/B measurement; the
    /// verdict and the TE/GE/RE/SA counters are identical either way.
    pub cow_snapshots: bool,
    /// Which executor runs *Generate*/*Update* (CLI `--exec`): `auto`
    /// (default) picks per spec from the compile-time cost model — the
    /// bytecode VM with its by-control-state dispatch index for large
    /// transition tables, the tree-walking reference interpreter for
    /// small ones, so the default is never slower than either fixed
    /// choice. `compiled` and `interp` force one executor (A/B
    /// measurement). Verdicts, counters and telemetry event streams are
    /// identical in every mode; only transitions-per-second differ.
    pub exec_mode: ExecMode,
    /// Disk spill tier for the snapshot store (CLI `--spill`,
    /// `--spill-dir`): under a `max_state_bytes` budget, degrade to disk
    /// bandwidth instead of stopping `Inconclusive(MemoryLimit)`.
    /// Verdicts and the TE/GE/RE/SA counters are identical either way.
    /// The default (`auto` with no directory) leaves spilling off, so
    /// budget-only runs keep their stop-with-checkpoint behavior.
    pub spill: SpillOptions,
    /// Live introspection endpoint (CLI `--listen ADDR`): when set, the
    /// run binds a std-only HTTP responder on this address serving
    /// `/metrics`, `/status` and `/profile`. `None` (default) binds
    /// nothing. Threaded through options so a multi-session daemon can
    /// mount one endpoint per analysis.
    pub listen: Option<String>,
    /// On-line MDFS search workers (CLI `--workers N`). `1` (the
    /// default) runs the single-threaded search unchanged; `0` means
    /// "one per available core"; `N > 1` runs N true workers over
    /// per-worker work-stealing deques and the sharded snapshot store.
    /// Verdicts and the TE/GE/RE/SA counters are identical at every
    /// worker count (see DESIGN §6.13 for the determinism argument);
    /// only wall time differs. Static DFS ignores this knob.
    pub workers: usize,
    pub limits: SearchLimits,
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        AnalysisOptions {
            order: OrderOptions::full(),
            disabled_ips: HashSet::new(),
            unobserved_ips: HashSet::new(),
            initial_state_search: false,
            policy: UndefinedPolicy::Error,
            state_hashing: false,
            mdfs_reorder: true,
            cow_snapshots: true,
            exec_mode: ExecMode::Auto,
            spill: SpillOptions::default(),
            listen: None,
            workers: 1,
            limits: SearchLimits::default(),
        }
    }
}

impl AnalysisOptions {
    /// Options with a given order-checking preset and everything else
    /// default.
    pub fn with_order(order: OrderOptions) -> Self {
        AnalysisOptions {
            order,
            ..Default::default()
        }
    }

    /// Mark an IP disabled (§2.4.3).
    pub fn disable_ip(mut self, name: &str) -> Self {
        self.disabled_ips.insert(name.to_ascii_lowercase());
        self
    }

    /// Mark an IP's inputs unobserved (§5.2) and switch to the
    /// partial-trace undefined policy.
    pub fn unobserved_ip(mut self, name: &str) -> Self {
        self.unobserved_ips.insert(name.to_ascii_lowercase());
        self.policy = UndefinedPolicy::Propagate;
        self
    }

    /// The effective MDFS worker count: `workers`, with `0` resolved to
    /// the number of available cores (at least 1).
    pub fn resolved_workers(&self) -> usize {
        match self.workers {
            0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
            n => n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_labels_match_paper() {
        assert_eq!(OrderOptions::none().label(), "NR");
        assert_eq!(OrderOptions::io().label(), "IO");
        assert_eq!(OrderOptions::ip().label(), "IP");
        assert_eq!(OrderOptions::full().label(), "FULL");
    }

    #[test]
    fn unobserved_ip_switches_policy() {
        let o = AnalysisOptions::default().unobserved_ip("U");
        assert!(o.unobserved_ips.contains("u"));
        assert_eq!(o.policy, UndefinedPolicy::Propagate);
    }

    #[test]
    fn defaults_are_full_checking_strict_policy() {
        let o = AnalysisOptions::default();
        assert_eq!(o.order, OrderOptions::full());
        assert_eq!(o.policy, UndefinedPolicy::Error);
        assert!(!o.initial_state_search);
        assert!(!o.state_hashing);
        assert!(o.cow_snapshots, "COW Save/Restore is the default path");
        assert_eq!(
            o.exec_mode,
            ExecMode::Auto,
            "the cost-model auto-selection is the default executor"
        );
        assert_eq!(
            o.spill,
            crate::search::spill::SpillOptions::default(),
            "spilling defaults to auto with no directory — i.e. off"
        );
        assert!(
            !o.spill.enabled(Some(1 << 20)),
            "a bare memory budget must keep its kill-switch semantics"
        );
        assert_eq!(
            o.workers, 1,
            "library callers get the single-threaded search unless they opt in"
        );
    }

    #[test]
    fn resolved_worker_count_interprets_zero_as_auto() {
        let mut o = AnalysisOptions::default();
        assert_eq!(o.resolved_workers(), 1);
        o.workers = 4;
        assert_eq!(o.resolved_workers(), 4);
        o.workers = 0;
        assert!(o.resolved_workers() >= 1, "auto is at least one worker");
    }
}
