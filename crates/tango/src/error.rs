//! Top-level error type for the Tango crate.

use crate::env::EnvError;
use crate::trace::format::TraceParseError;
use crate::trace::TraceResolveError;
use estelle_runtime::{BuildError, RuntimeError};
use std::fmt;

/// Anything that can go wrong between Estelle source and a verdict.
#[derive(Debug)]
pub enum TangoError {
    /// Parsing/analysis/compilation of the specification failed.
    Build(BuildError),
    /// The trace file is syntactically malformed.
    TraceParse(TraceParseError),
    /// The trace names IPs/interactions the specification doesn't have.
    TraceResolve(TraceResolveError),
    /// Bad option/trace combination.
    Env(EnvError),
    /// A fatal runtime error (interpreter bug or exceeded hard limits).
    Runtime(RuntimeError),
    /// Implementation-generation mode failed (script/spec mismatch).
    Generator(String),
}

impl fmt::Display for TangoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TangoError::Build(e) => write!(f, "specification error: {}", e),
            TangoError::TraceParse(e) => write!(f, "{}", e),
            TangoError::TraceResolve(e) => write!(f, "{}", e),
            TangoError::Env(e) => write!(f, "option error: {}", e),
            TangoError::Runtime(e) => write!(f, "{}", e),
            TangoError::Generator(m) => write!(f, "implementation generation: {}", m),
        }
    }
}

impl std::error::Error for TangoError {}

impl From<BuildError> for TangoError {
    fn from(e: BuildError) -> Self {
        TangoError::Build(e)
    }
}

impl From<TraceParseError> for TangoError {
    fn from(e: TraceParseError) -> Self {
        TangoError::TraceParse(e)
    }
}

impl From<TraceResolveError> for TangoError {
    fn from(e: TraceResolveError) -> Self {
        TangoError::TraceResolve(e)
    }
}

impl From<EnvError> for TangoError {
    fn from(e: EnvError) -> Self {
        TangoError::Env(e)
    }
}

impl From<RuntimeError> for TangoError {
    fn from(e: RuntimeError) -> Self {
        TangoError::Runtime(e)
    }
}
