//! Stop/resume checkpoints for static-mode analysis.
//!
//! When a static DFS stops on a resource limit (transition count, depth,
//! wall-clock deadline or snapshot-memory budget), the report carries a
//! [`Checkpoint`]: the frozen search state plus the resolved trace and the
//! counters accumulated so far. [`crate::TraceAnalyzer::analyze_resume`]
//! continues the search exactly where it stopped — no work is repeated,
//! and the final TE/GE/RE/SA totals across stop + resume equal those of an
//! uninterrupted run, so figures assembled from budgeted batch runs stay
//! comparable with the paper's tables.

pub mod codec;

pub use codec::{CheckpointError, CheckpointInfo, FORMAT_VERSION, MAGIC};

use crate::search::dfs::DfsCheckpoint;
use crate::stats::SearchStats;
use crate::trace::ResolvedTrace;

/// A resumable, stopped static analysis. Opaque except for the progress
/// accessors; produce with a limited [`crate::TraceAnalyzer::analyze`]
/// (or `analyze_resume`) call, consume with
/// [`crate::TraceAnalyzer::analyze_resume`].
#[derive(Clone, Debug)]
pub struct Checkpoint {
    pub(crate) dfs: DfsCheckpoint,
    pub(crate) trace: ResolvedTrace,
    pub(crate) stats: SearchStats,
}

impl Checkpoint {
    /// Depth of the search path at the stop point.
    pub fn depth(&self) -> usize {
        self.dfs.depth()
    }

    /// Saved backtracking frames awaiting exploration.
    pub fn pending_frames(&self) -> usize {
        self.dfs.pending_frames()
    }

    /// Checkable events in the trace under analysis.
    pub fn events_total(&self) -> usize {
        self.dfs.events_total()
    }

    /// Counters accumulated up to the stop; resuming continues them.
    pub fn stats(&self) -> &SearchStats {
        &self.stats
    }

    /// Structural cross-check against the analyzer about to resume this
    /// checkpoint. A file that decodes cleanly may still belong to a
    /// *different* specification (or a different trace); resuming it
    /// verbatim would index out of range deep inside the search. This
    /// turns every such mismatch into an error up front.
    pub(crate) fn validate_against(
        &self,
        module: &estelle_frontend::sema::model::AnalyzedModule,
        transition_count: usize,
    ) -> Result<(), String> {
        let ip_count = module.ips.len();
        if self.trace.inputs.len() != ip_count || self.trace.outputs.len() != ip_count {
            return Err(format!(
                "checkpoint trace has {} IP stream(s), specification has {}",
                self.trace.inputs.len(),
                ip_count
            ));
        }
        for e in &self.trace.events {
            let info = module.ip(estelle_frontend::sema::model::IpId(e.ip as u32));
            let sigs = match e.dir {
                crate::trace::Dir::In => &info.inputs,
                crate::trace::Dir::Out => &info.outputs,
            };
            if e.interaction >= sigs.len() {
                return Err(format!(
                    "trace event {} names interaction {} of {} at IP `{}`",
                    e.index,
                    e.interaction,
                    sigs.len(),
                    info.name
                ));
            }
        }
        let state_count = module.states.len() as u32;
        if self.dfs.state.control.0 >= state_count {
            return Err(format!(
                "checkpoint control state {} out of range ({} states)",
                self.dfs.state.control.0, state_count
            ));
        }
        let check_cursors = |c: &crate::env::Cursors, what: &str| -> Result<(), String> {
            if c.input.len() != ip_count || c.output.len() != ip_count {
                return Err(format!(
                    "{} cursors cover {} IP(s), specification has {}",
                    what,
                    c.input.len(),
                    ip_count
                ));
            }
            for ip in 0..ip_count {
                if c.input[ip] > self.trace.inputs[ip].len()
                    || c.output[ip] > self.trace.outputs[ip].len()
                {
                    return Err(format!("{} cursors point past the trace streams", what));
                }
            }
            Ok(())
        };
        check_cursors(&self.dfs.cursors, "checkpoint")?;
        for (i, f) in self.dfs.stack.iter().enumerate() {
            check_cursors(&f.cursors, "frame")?;
            // Decoded frames are always resident (spill residency is a
            // live-search concern; checkpoints carry the bytes inline).
            if let Some(state) = f.state.resident_state() {
                if state.control.0 >= state_count {
                    return Err(format!("frame {} control state out of range", i));
                }
            }
            for fireable in &f.fireable {
                if fireable.trans >= transition_count {
                    return Err(format!(
                        "frame {} references transition {} of {}",
                        i, fireable.trans, transition_count
                    ));
                }
            }
        }
        Ok(())
    }
}
