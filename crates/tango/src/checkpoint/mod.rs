//! Stop/resume checkpoints.
//!
//! When a static DFS stops on a resource limit (transition count, depth,
//! wall-clock deadline or snapshot-memory budget), the report carries a
//! [`Checkpoint`]: the frozen search state plus the resolved trace and the
//! counters accumulated so far. [`crate::TraceAnalyzer::analyze_resume`]
//! continues the search exactly where it stopped — no work is repeated,
//! and the final TE/GE/RE/SA totals across stop + resume equal those of an
//! uninterrupted run, so figures assembled from budgeted batch runs stay
//! comparable with the paper's tables.
//!
//! On-line (MDFS) analyses checkpoint too, including multi-worker runs:
//! the [`CheckpointBody::Mdfs`] body freezes every worker's deque and
//! parked PG-nodes plus the PG-list carried over from earlier bursts.
//! Each frozen node is a complete search "thread" (state snapshot, trace
//! cursors, tried/blocked transition sets, barren counter, path), so the
//! checkpoint is **worker-count independent**: a run stopped at N workers
//! resumes at any M via [`crate::TraceAnalyzer::analyze_online_resume`].
//! Because every node-step is either fully completed (its counters
//! recorded and its children saved) or still queued, resumed exhaustion
//! verdicts reproduce the uninterrupted TE/GE/RE/SA totals exactly at any
//! worker count (DESIGN §6.13).

pub mod codec;

pub use codec::{CheckpointError, CheckpointInfo, FORMAT_VERSION, MAGIC};

use crate::env::Cursors;
use crate::search::dfs::DfsCheckpoint;
use crate::stats::SearchStats;
use crate::trace::ResolvedTrace;
use estelle_runtime::MachineState;

/// A resumable, stopped analysis. Opaque except for the progress
/// accessors; produce with a limited [`crate::TraceAnalyzer::analyze`]
/// (or `analyze_online`) call, consume with
/// [`crate::TraceAnalyzer::analyze_resume`] (static bodies) or
/// [`crate::TraceAnalyzer::analyze_online_resume`] (on-line bodies).
#[derive(Clone, Debug)]
pub struct Checkpoint {
    pub(crate) body: CheckpointBody,
    pub(crate) trace: ResolvedTrace,
    pub(crate) stats: SearchStats,
}

/// Which search the checkpoint freezes. Cold-path value — a handful
/// exist per run — so the variant size skew costs nothing.
#[derive(Clone, Debug)]
#[allow(clippy::large_enum_variant)]
pub(crate) enum CheckpointBody {
    /// Static-mode DFS: one path of frames.
    Dfs(DfsCheckpoint),
    /// On-line MDFS: per-worker deques + parked PG-nodes.
    Mdfs(MdfsCheckpoint),
}

/// Frozen multi-worker MDFS search front.
#[derive(Clone, Debug)]
pub(crate) struct MdfsCheckpoint {
    /// Worker count of the run that saved this checkpoint. Informational
    /// — resume redistributes the nodes over the *resuming* run's
    /// workers.
    pub(crate) workers_at_save: u32,
    /// Whether the trace had reached end-of-file at the stop. Only
    /// eof-reached checkpoints are resumable: a pre-eof source's read
    /// position cannot be re-established without replaying events that
    /// are already inside the checkpointed trace.
    pub(crate) eof: bool,
    /// One entry per worker of the saving run.
    pub(crate) workers: Vec<MdfsWorkerCkpt>,
    /// PG-nodes parked in bursts before the one that stopped, in park
    /// order.
    pub(crate) pg_prior: Vec<MdfsNodeCkpt>,
}

/// One worker's frozen work.
#[derive(Clone, Debug)]
pub(crate) struct MdfsWorkerCkpt {
    /// The worker's deque, bottom to top (owner end last).
    pub(crate) deque: Vec<MdfsNodeCkpt>,
    /// PG-nodes this worker parked in the stopped burst, in the burst's
    /// deterministic park order.
    pub(crate) parked: Vec<MdfsNodeCkpt>,
}

/// One frozen MDFS search node ("thread"). States are materialized at
/// save time (spilled snapshots are faulted back in first), so the
/// checkpoint file is self-contained.
#[derive(Clone, Debug)]
pub(crate) struct MdfsNodeCkpt {
    pub(crate) state: MachineState,
    pub(crate) cursors: Cursors,
    /// Compiled-transition indices already explored, sorted.
    pub(crate) tried: Vec<usize>,
    /// Output-blocked transitions awaiting new data, sorted.
    pub(crate) blocked: Vec<usize>,
    pub(crate) barren: usize,
    pub(crate) path: Vec<String>,
}

impl MdfsCheckpoint {
    /// Every frozen node, in no particular order.
    pub(crate) fn nodes(&self) -> impl Iterator<Item = &MdfsNodeCkpt> {
        self.workers
            .iter()
            .flat_map(|w| w.deque.iter().chain(w.parked.iter()))
            .chain(self.pg_prior.iter())
    }

    pub(crate) fn node_count(&self) -> usize {
        self.nodes().count()
    }
}

impl Checkpoint {
    /// `"dfs"` for a static-mode checkpoint, `"mdfs"` for an on-line one.
    pub fn mode(&self) -> &'static str {
        match &self.body {
            CheckpointBody::Dfs(_) => "dfs",
            CheckpointBody::Mdfs(_) => "mdfs",
        }
    }

    /// Depth of the search at the stop point: the DFS path depth, or the
    /// deepest frozen MDFS node.
    pub fn depth(&self) -> usize {
        match &self.body {
            CheckpointBody::Dfs(dfs) => dfs.depth(),
            CheckpointBody::Mdfs(m) => m.nodes().map(|n| n.path.len()).max().unwrap_or(0),
        }
    }

    /// Saved search nodes awaiting exploration: backtracking frames
    /// (DFS) or frozen deque + parked nodes (MDFS).
    pub fn pending_frames(&self) -> usize {
        match &self.body {
            CheckpointBody::Dfs(dfs) => dfs.pending_frames(),
            CheckpointBody::Mdfs(m) => m.node_count(),
        }
    }

    /// Checkable events in the trace under analysis.
    pub fn events_total(&self) -> usize {
        match &self.body {
            CheckpointBody::Dfs(dfs) => dfs.events_total(),
            CheckpointBody::Mdfs(_) => self.trace.events.len(),
        }
    }

    /// Counters accumulated up to the stop; resuming continues them.
    pub fn stats(&self) -> &SearchStats {
        &self.stats
    }

    /// Structural cross-check against the analyzer about to resume this
    /// checkpoint. A file that decodes cleanly may still belong to a
    /// *different* specification (or a different trace); resuming it
    /// verbatim would index out of range deep inside the search. This
    /// turns every such mismatch into an error up front.
    pub(crate) fn validate_against(
        &self,
        module: &estelle_frontend::sema::model::AnalyzedModule,
        transition_count: usize,
    ) -> Result<(), String> {
        let ip_count = module.ips.len();
        if self.trace.inputs.len() != ip_count || self.trace.outputs.len() != ip_count {
            return Err(format!(
                "checkpoint trace has {} IP stream(s), specification has {}",
                self.trace.inputs.len(),
                ip_count
            ));
        }
        for e in &self.trace.events {
            let info = module.ip(estelle_frontend::sema::model::IpId(e.ip as u32));
            let sigs = match e.dir {
                crate::trace::Dir::In => &info.inputs,
                crate::trace::Dir::Out => &info.outputs,
            };
            if e.interaction >= sigs.len() {
                return Err(format!(
                    "trace event {} names interaction {} of {} at IP `{}`",
                    e.index,
                    e.interaction,
                    sigs.len(),
                    info.name
                ));
            }
        }
        let state_count = module.states.len() as u32;
        let check_cursors = |c: &crate::env::Cursors, what: &str| -> Result<(), String> {
            if c.input.len() != ip_count || c.output.len() != ip_count {
                return Err(format!(
                    "{} cursors cover {} IP(s), specification has {}",
                    what,
                    c.input.len(),
                    ip_count
                ));
            }
            for ip in 0..ip_count {
                if c.input[ip] > self.trace.inputs[ip].len()
                    || c.output[ip] > self.trace.outputs[ip].len()
                {
                    return Err(format!("{} cursors point past the trace streams", what));
                }
            }
            Ok(())
        };
        match &self.body {
            CheckpointBody::Dfs(dfs) => {
                if dfs.state.control.0 >= state_count {
                    return Err(format!(
                        "checkpoint control state {} out of range ({} states)",
                        dfs.state.control.0, state_count
                    ));
                }
                check_cursors(&dfs.cursors, "checkpoint")?;
                for (i, f) in dfs.stack.iter().enumerate() {
                    check_cursors(&f.cursors, "frame")?;
                    // Decoded frames are always resident (spill residency
                    // is a live-search concern; checkpoints carry the
                    // bytes inline).
                    if let Some(state) = f.state.resident_state() {
                        if state.control.0 >= state_count {
                            return Err(format!("frame {} control state out of range", i));
                        }
                    }
                    for fireable in &f.fireable {
                        if fireable.trans >= transition_count {
                            return Err(format!(
                                "frame {} references transition {} of {}",
                                i, fireable.trans, transition_count
                            ));
                        }
                    }
                }
            }
            CheckpointBody::Mdfs(m) => {
                for (i, n) in m.nodes().enumerate() {
                    if n.state.control.0 >= state_count {
                        return Err(format!("node {} control state out of range", i));
                    }
                    check_cursors(&n.cursors, "node")?;
                    for &t in n.tried.iter().chain(n.blocked.iter()) {
                        if t >= transition_count {
                            return Err(format!(
                                "node {} references transition {} of {}",
                                i, t, transition_count
                            ));
                        }
                    }
                }
            }
        }
        Ok(())
    }
}
