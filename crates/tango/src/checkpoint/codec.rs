//! Durable on-disk encoding of [`Checkpoint`]s.
//!
//! A limit-stopped analysis survives process death by writing its
//! checkpoint to a file that a *different* process — possibly on a
//! machine restarted in between — can load and resume. The format is a
//! hand-rolled binary layout (no external serialization crates, matching
//! the repo's no-dependency rule):
//!
//! ```text
//! +----------------+---------+-----------+
//! | magic (8B)     | version | #sections |   header
//! | b"TANGOCKP"    |  u32 LE |  u32 LE   |
//! +----------------+---------+-----------+
//! | tag u32 | len u64 | payload | CRC32  |   one per section
//! +------------------------------------+-+
//! | ...                                  |
//! +--------------------------------------+
//! | CRC32 of everything above            |   whole-file digest
//! +--------------------------------------+
//! ```
//!
//! Sections: `META` (progress numbers + [`SearchStats`], readable without
//! touching the machine state), `TRACE` (the resolved trace), then the
//! frozen search itself — for a static checkpoint `STATES` (the
//! deduplicated machine-state table) and `DFS`; for an on-line
//! (multi-worker MDFS) checkpoint a single `MDFS` section holding every
//! worker's deque and parked PG-nodes with their states inline.
//!
//! **COW dedup is preserved on disk.** In-memory, frames whose saves were
//! interned share one `Rc<MachineState>`; the encoder writes each unique
//! snapshot once into the `STATES` table (keyed by `Rc` pointer identity)
//! and frames reference it by index, carrying their original intern key
//! and charged-byte count so [`SnapshotStore::rebuild`] reproduces the
//! exact resident-byte accounting after a reload.
//!
//! **Failure is typed, never a panic.** Every way a file can be wrong —
//! empty, truncated, wrong magic, future version, flipped byte — maps to
//! a [`CheckpointError`] variant. Integrity checks run in a fixed order:
//! magic, version, structural walk (truncation), per-section CRC32 (so a
//! corrupt byte names its section), then the whole-file digest (covering
//! the headers between sections).
//!
//! **Writes are atomic.** [`Checkpoint::write_to`] writes a temp file in
//! the target directory, fsyncs it, renames it over the destination and
//! fsyncs the directory: a crash mid-write leaves the previous good
//! checkpoint intact, never a half-written one.
//!
//! [`SnapshotStore::rebuild`]: crate::search::snapshot::SnapshotStore::rebuild

use super::{Checkpoint, CheckpointBody, MdfsCheckpoint, MdfsNodeCkpt, MdfsWorkerCkpt};
use crate::env::Cursors;
use crate::search::dfs::{DfsCheckpoint, Frame};
use crate::search::snapshot::{FxBuildHasher, SavedState, Slot};
use crate::stats::SearchStats;
use crate::trace::{Dir, ResolvedEvent, ResolvedTrace};
use estelle_ast::Span;
use estelle_runtime::codec::{decode_state, decode_value, encode_state, encode_value};
use estelle_runtime::{
    ByteReader, ByteWriter, CodecError, Fireable, MachineState, RuntimeError, RuntimeErrorKind,
};
use crate::fault::{CheckpointFaultInjector, CheckpointWriteFault, RetryOutcome, RetryPolicy};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::fs::{self, File};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::rc::Rc;
use std::time::Duration;

/// First 8 bytes of every checkpoint file.
pub const MAGIC: [u8; 8] = *b"TANGOCKP";

/// Current format version. Bump on any change to the byte layout; old
/// readers refuse newer files with
/// [`CheckpointError::UnsupportedVersion`] instead of misreading them.
/// Version 2 added the spill counters to the stats block and the
/// explicit charges-state flag to each DFS frame. Version 3 added the
/// per-site fault counters (source/checkpoint retries and giveups,
/// spill giveups) to the stats block. Version 4 added the work-stealing
/// counters to the stats block, the mode byte (+ per-worker load table)
/// to `META`, and the `MDFS` section for on-line checkpoints.
pub const FORMAT_VERSION: u32 = 4;

const SEC_META: u32 = 1;
const SEC_TRACE: u32 = 2;
const SEC_STATES: u32 = 3;
const SEC_DFS: u32 = 4;
const SEC_MDFS: u32 = 5;

const MODE_DFS: u8 = 0;
const MODE_MDFS: u8 = 1;

fn section_name(tag: u32) -> &'static str {
    match tag {
        SEC_META => "meta",
        SEC_TRACE => "trace",
        SEC_STATES => "states",
        SEC_DFS => "dfs",
        SEC_MDFS => "mdfs",
        _ => "unknown",
    }
}

/// Why a checkpoint file could not be written or read.
#[derive(Debug)]
pub enum CheckpointError {
    /// The underlying filesystem operation failed.
    Io(std::io::Error),
    /// The file does not start with the checkpoint magic — not a
    /// checkpoint at all.
    BadMagic,
    /// The file was written by a newer format than this build reads.
    UnsupportedVersion { found: u32, supported: u32 },
    /// The file ends before the structure is complete.
    Truncated { context: String },
    /// A section's payload (or the file as a whole) fails its CRC32.
    ChecksumMismatch { section: &'static str },
    /// Structurally invalid content behind valid checksums (unknown tag,
    /// out-of-range index, inconsistent lengths …).
    Malformed(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {}", e),
            CheckpointError::BadMagic => f.write_str("not a tango checkpoint file (bad magic)"),
            CheckpointError::UnsupportedVersion { found, supported } => write!(
                f,
                "checkpoint format version {} not supported (this build reads up to {})",
                found, supported
            ),
            CheckpointError::Truncated { context } => {
                write!(f, "checkpoint file truncated while reading {}", context)
            }
            CheckpointError::ChecksumMismatch { section } => {
                write!(f, "checkpoint checksum mismatch in {} section", section)
            }
            CheckpointError::Malformed(m) => write!(f, "malformed checkpoint: {}", m),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<CodecError> for CheckpointError {
    fn from(e: CodecError) -> Self {
        match e {
            CodecError::Truncated { context } => CheckpointError::Truncated {
                context: context.to_string(),
            },
            CodecError::Malformed(m) => CheckpointError::Malformed(m),
        }
    }
}

/// Progress summary decoded from a checkpoint's `META` section alone —
/// no machine state is loaded, so inspecting a multi-megabyte checkpoint
/// is O(header).
#[derive(Clone, Debug)]
pub struct CheckpointInfo {
    /// Format version of the file.
    pub version: u32,
    /// `"dfs"` for a static-mode checkpoint, `"mdfs"` for an on-line one.
    pub mode: &'static str,
    /// Depth of the search path at the stop point.
    pub depth: usize,
    /// Saved backtracking frames awaiting exploration.
    pub pending_frames: usize,
    /// Checkable events in the trace under analysis.
    pub events_total: usize,
    /// Worker count of the saving run (`mdfs` checkpoints only).
    pub workers_at_save: Option<u32>,
    /// Per-worker `(deque, parked)` node counts of the saving run
    /// (`mdfs` checkpoints only; empty for `dfs`).
    pub worker_loads: Vec<(usize, usize)>,
    /// Counters accumulated up to the stop.
    pub stats: SearchStats,
}

impl Checkpoint {
    /// Serialize this checkpoint and atomically replace `path` with it.
    /// On return the file is durable (fsynced); on error the previous
    /// contents of `path`, if any, are untouched. Transient failures
    /// retry on the [`RetryPolicy::checkpoint`] schedule.
    pub fn write_to(&self, path: &Path) -> Result<(), CheckpointError> {
        self.write_to_with(path, &RetryPolicy::checkpoint(), None)
            .result
    }

    /// [`Checkpoint::write_to`] with an explicit retry policy and an
    /// optional fault injector deciding the fate of each write attempt
    /// (the chaos layer's checkpoint site). Injected short writes tear
    /// the temp file only — the destination keeps its previous contents,
    /// which is exactly the atomic-rename contract under test. Returns
    /// the retry count alongside the result so autosave can feed
    /// `SearchStats::checkpoint_retries`.
    pub fn write_to_with(
        &self,
        path: &Path,
        policy: &RetryPolicy,
        mut injector: Option<&mut CheckpointFaultInjector>,
    ) -> RetryOutcome<(), CheckpointError> {
        let bytes = match encode_checkpoint(self) {
            Ok(b) => b,
            Err(e) => {
                return RetryOutcome {
                    result: Err(e),
                    retries: 0,
                }
            }
        };
        policy.run(&mut |_| {
            let fault = injector
                .as_mut()
                .map_or(CheckpointWriteFault::Pass, |i| i.next_fault());
            match fault {
                CheckpointWriteFault::Pass => write_atomic_once(path, &bytes),
                CheckpointWriteFault::IoError => Err(CheckpointError::Io(
                    std::io::Error::other("checkpoint write I/O error (injected)"),
                )),
                CheckpointWriteFault::ShortWrite => {
                    // The torn write of a crashing process: half the bytes
                    // land in the temp file, the rename never happens.
                    let _ = fs::write(tmp_path(path), &bytes[..bytes.len() / 2]);
                    Err(CheckpointError::Io(std::io::Error::other(
                        "checkpoint short write (injected)",
                    )))
                }
                CheckpointWriteFault::DiskFull => Err(CheckpointError::Io(
                    std::io::Error::other("no space left on device (injected)"),
                )),
            }
        })
    }

    /// Load a checkpoint written by [`Checkpoint::write_to`], verifying
    /// magic, version, per-section checksums and the whole-file digest.
    pub fn read_from(path: &Path) -> Result<Checkpoint, CheckpointError> {
        decode_checkpoint(&fs::read(path)?)
    }

    /// Verify the file's integrity and decode only its progress summary.
    pub fn read_info(path: &Path) -> Result<CheckpointInfo, CheckpointError> {
        let bytes = fs::read(path)?;
        let (version, sections) = parse_file(&bytes)?;
        let mut r = ByteReader::new(find_section(&sections, SEC_META)?);
        let info = decode_meta(&mut r, version)?;
        expect_done(&r, SEC_META)?;
        Ok(info)
    }
}

// ---------------------------------------------------------------- CRC32

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the classic
/// bitwise formulation; checkpoint I/O is nowhere near hot enough to
/// justify a table. Shared with the spill-segment format, which
/// checksums each record payload with the same function.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

// ------------------------------------------------------------- encoding

fn encode_checkpoint(cp: &Checkpoint) -> Result<Vec<u8>, CheckpointError> {
    let sections = match &cp.body {
        CheckpointBody::Dfs(dfs) => {
            // Unique-state table: frames whose saves were interned share a
            // snapshot slot, so slot identity recovers the dedup the snapshot
            // store established. Each unique snapshot is written once. The
            // search makes every frame resident before checkpointing; a spilled
            // frame here means that read-back failed, which is not encodable.
            let mut order: Vec<Rc<MachineState>> = Vec::new();
            let mut index: HashMap<usize, u32> = HashMap::new();
            for f in &dfs.stack {
                let slot = f.state.slot_id();
                if let std::collections::hash_map::Entry::Vacant(e) = index.entry(slot) {
                    let rc = f.state.resident_state().ok_or_else(|| {
                        CheckpointError::Malformed(
                            "cannot encode a checkpoint while a frame's snapshot is spilled to disk"
                                .to_string(),
                        )
                    })?;
                    e.insert(order.len() as u32);
                    order.push(rc);
                }
            }
            vec![
                (SEC_META, encode_meta(cp)),
                (SEC_TRACE, encode_trace(&cp.trace)),
                (SEC_STATES, encode_states(&order)),
                (SEC_DFS, encode_dfs(dfs, &index)),
            ]
        }
        CheckpointBody::Mdfs(m) => vec![
            (SEC_META, encode_meta(cp)),
            (SEC_TRACE, encode_trace(&cp.trace)),
            (SEC_MDFS, encode_mdfs(m)),
        ],
    };

    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(sections.len() as u32).to_le_bytes());
    for (tag, payload) in &sections {
        out.extend_from_slice(&tag.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(payload);
        out.extend_from_slice(&crc32(payload).to_le_bytes());
    }
    let digest = crc32(&out);
    out.extend_from_slice(&digest.to_le_bytes());
    Ok(out)
}

fn encode_meta(cp: &Checkpoint) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_usize(cp.depth());
    w.put_usize(cp.pending_frames());
    w.put_usize(cp.events_total());
    encode_stats(&mut w, &cp.stats);
    match &cp.body {
        CheckpointBody::Dfs(_) => w.put_u8(MODE_DFS),
        CheckpointBody::Mdfs(m) => {
            w.put_u8(MODE_MDFS);
            w.put_u32(m.workers_at_save);
            w.put_u32(m.workers.len() as u32);
            for wk in &m.workers {
                w.put_usize(wk.deque.len());
                w.put_usize(wk.parked.len());
            }
        }
    }
    w.into_bytes()
}

/// Shared with the post-mortem dump format (`telemetry::dump`), whose
/// `STATS` section is exactly this block — one stats codec, two files.
pub(crate) fn encode_stats(w: &mut ByteWriter, s: &SearchStats) {
    w.put_u64(s.transitions_executed);
    w.put_u64(s.generates);
    w.put_u64(s.restores);
    w.put_u64(s.saves);
    // Nanosecond resolution in a u64 covers ~584 years of wall time.
    w.put_u64(s.wall_time.as_nanos() as u64);
    w.put_usize(s.max_depth);
    w.put_u64(s.fanout_sum);
    w.put_u64(s.fanout_samples);
    w.put_u64(s.pg_nodes);
    w.put_u64(s.error_branches);
    w.put_u64(s.hash_prunes);
    w.put_u64(s.barren_prunes);
    w.put_u64(s.intern_hits);
    w.put_usize(s.snapshot_bytes);
    w.put_usize(s.peak_snapshot_bytes);
    w.put_u64(s.spill_writes);
    w.put_u64(s.spill_reads);
    w.put_u64(s.spill_retries);
    w.put_u64(s.spill_evictions);
    w.put_usize(s.spilled_bytes);
    w.put_usize(s.peak_spilled_bytes);
    w.put_u64(s.source_retries);
    w.put_u64(s.source_giveups);
    w.put_u64(s.checkpoint_retries);
    w.put_u64(s.checkpoint_giveups);
    w.put_u64(s.spill_giveups);
    w.put_u64(s.steals);
    w.put_u64(s.steal_failures);
}

fn encode_trace(trace: &ResolvedTrace) -> Vec<u8> {
    let mut w = ByteWriter::new();
    // Stream count (== IP count); the streams themselves are re-derived
    // from the event list on decode.
    w.put_u32(trace.inputs.len() as u32);
    w.put_u32(trace.events.len() as u32);
    for e in &trace.events {
        w.put_u8(match e.dir {
            Dir::In => 0,
            Dir::Out => 1,
        });
        w.put_u32(e.ip as u32);
        w.put_u32(e.interaction as u32);
        w.put_u32(e.params.len() as u32);
        for p in &e.params {
            encode_value(&mut w, p);
        }
    }
    w.into_bytes()
}

fn encode_states(order: &[Rc<MachineState>]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u32(order.len() as u32);
    for st in order {
        encode_state(&mut w, st);
    }
    w.into_bytes()
}

fn encode_cursors(w: &mut ByteWriter, c: &Cursors) {
    w.put_u32(c.input.len() as u32);
    for &v in &c.input {
        w.put_usize(v);
    }
    w.put_u32(c.output.len() as u32);
    for &v in &c.output {
        w.put_usize(v);
    }
}

fn encode_fireable(w: &mut ByteWriter, f: &Fireable) {
    w.put_usize(f.trans);
    w.put_bool(f.fabricated);
    w.put_u32(f.params.len() as u32);
    for p in &f.params {
        encode_value(w, p);
    }
}

pub(crate) fn kind_to_u8(k: RuntimeErrorKind) -> u8 {
    match k {
        RuntimeErrorKind::UndefinedValue => 0,
        RuntimeErrorKind::UndefinedControl => 1,
        RuntimeErrorKind::DanglingPointer => 2,
        RuntimeErrorKind::IndexOutOfBounds => 3,
        RuntimeErrorKind::DivisionByZero => 4,
        RuntimeErrorKind::Overflow => 5,
        RuntimeErrorKind::CallDepthExceeded => 6,
        RuntimeErrorKind::LoopLimitExceeded => 7,
        RuntimeErrorKind::OutputRejected => 8,
        RuntimeErrorKind::Internal => 9,
        RuntimeErrorKind::Panic => 10,
    }
}

fn kind_from_u8(b: u8) -> Result<RuntimeErrorKind, CodecError> {
    Ok(match b {
        0 => RuntimeErrorKind::UndefinedValue,
        1 => RuntimeErrorKind::UndefinedControl,
        2 => RuntimeErrorKind::DanglingPointer,
        3 => RuntimeErrorKind::IndexOutOfBounds,
        4 => RuntimeErrorKind::DivisionByZero,
        5 => RuntimeErrorKind::Overflow,
        6 => RuntimeErrorKind::CallDepthExceeded,
        7 => RuntimeErrorKind::LoopLimitExceeded,
        8 => RuntimeErrorKind::OutputRejected,
        9 => RuntimeErrorKind::Internal,
        10 => RuntimeErrorKind::Panic,
        other => {
            return Err(CodecError::Malformed(format!(
                "unknown runtime-error kind {}",
                other
            )))
        }
    })
}

fn encode_spec_error(w: &mut ByteWriter, e: &RuntimeError) {
    w.put_u8(kind_to_u8(e.kind));
    w.put_str(&e.message);
    match e.span {
        None => w.put_u8(0),
        Some(s) => {
            w.put_u8(1);
            w.put_u32(s.start);
            w.put_u32(s.end);
        }
    }
}

fn encode_path(w: &mut ByteWriter, path: &[String]) {
    w.put_u32(path.len() as u32);
    for p in path {
        w.put_str(p);
    }
}

fn encode_dfs(dfs: &DfsCheckpoint, index: &HashMap<usize, u32>) -> Vec<u8> {
    let mut w = ByteWriter::new();
    encode_state(&mut w, &dfs.state);
    encode_cursors(&mut w, &dfs.cursors);
    encode_path(&mut w, &dfs.path);
    w.put_u32(dfs.stack.len() as u32);
    for f in &dfs.stack {
        w.put_u32(index[&f.state.slot_id()]);
        w.put_u64(f.state.key());
        w.put_usize(f.state.bytes());
        w.put_bool(f.state.charges_state());
        encode_cursors(&mut w, &f.cursors);
        w.put_u32(f.fireable.len() as u32);
        for fr in &f.fireable {
            encode_fireable(&mut w, fr);
        }
        w.put_usize(f.next);
        w.put_usize(f.path_len);
        w.put_usize(f.barren);
    }
    // Sorted for a deterministic encoding: the same checkpoint always
    // produces the same bytes.
    let mut visited: Vec<u64> = dfs.visited.iter().copied().collect();
    visited.sort_unstable();
    w.put_u32(visited.len() as u32);
    for v in visited {
        w.put_u64(v);
    }
    w.put_u32(dfs.spec_errors.len() as u32);
    for e in &dfs.spec_errors {
        encode_spec_error(&mut w, e);
    }
    w.put_usize(dfs.best.0);
    encode_path(&mut w, &dfs.best.1);
    match dfs.best_pending_len {
        None => w.put_u8(0),
        Some(n) => {
            w.put_u8(1);
            w.put_usize(n);
        }
    }
    w.put_usize(dfs.total_events);
    w.put_usize(dfs.barren);
    w.put_bool(dfs.at_node);
    w.into_bytes()
}

fn encode_mdfs_node(w: &mut ByteWriter, n: &MdfsNodeCkpt) {
    encode_state(w, &n.state);
    encode_cursors(w, &n.cursors);
    w.put_u32(n.tried.len() as u32);
    for &t in &n.tried {
        w.put_usize(t);
    }
    w.put_u32(n.blocked.len() as u32);
    for &t in &n.blocked {
        w.put_usize(t);
    }
    w.put_usize(n.barren);
    encode_path(w, &n.path);
}

fn encode_mdfs_nodes(w: &mut ByteWriter, nodes: &[MdfsNodeCkpt]) {
    w.put_u32(nodes.len() as u32);
    for n in nodes {
        encode_mdfs_node(w, n);
    }
}

/// The frozen multi-worker search front. Unlike `DFS`, states are inline
/// per node (MDFS nodes own their snapshots; there is no intern table to
/// reconstruct) — the store dedup is re-established by the resuming run's
/// own saves.
fn encode_mdfs(m: &MdfsCheckpoint) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u32(m.workers_at_save);
    w.put_bool(m.eof);
    w.put_u32(m.workers.len() as u32);
    for wk in &m.workers {
        encode_mdfs_nodes(&mut w, &wk.deque);
        encode_mdfs_nodes(&mut w, &wk.parked);
    }
    encode_mdfs_nodes(&mut w, &m.pg_prior);
    w.into_bytes()
}

// ------------------------------------------------------------- decoding

/// A section's tag and raw payload, CRC-verified by [`parse_file`].
type RawSection<'a> = (u32, &'a [u8]);

/// Structural walk + integrity checks. Returns the version and the raw
/// `(tag, payload)` list; every payload's CRC and the whole-file digest
/// have been verified when this returns `Ok`.
fn parse_file(bytes: &[u8]) -> Result<(u32, Vec<RawSection<'_>>), CheckpointError> {
    let truncated = |context: &str| CheckpointError::Truncated {
        context: context.to_string(),
    };
    if bytes.len() < MAGIC.len() {
        return Err(truncated("magic"));
    }
    if bytes[..MAGIC.len()] != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    fn take<'a>(
        bytes: &'a [u8],
        pos: &mut usize,
        n: usize,
        context: &str,
    ) -> Result<&'a [u8], CheckpointError> {
        if bytes.len() - *pos < n {
            return Err(CheckpointError::Truncated {
                context: context.to_string(),
            });
        }
        let s = &bytes[*pos..*pos + n];
        *pos += n;
        Ok(s)
    }
    let get_u32 = |s: &[u8]| u32::from_le_bytes(s.try_into().expect("4 bytes"));

    let mut pos = MAGIC.len();
    let version = get_u32(take(bytes, &mut pos, 4, "format version")?);
    if version != FORMAT_VERSION {
        return Err(CheckpointError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let nsections = get_u32(take(bytes, &mut pos, 4, "section count")?) as usize;

    let mut sections: Vec<(u32, &[u8], u32)> = Vec::new();
    for _ in 0..nsections {
        let tag = get_u32(take(bytes, &mut pos, 4, "section tag")?);
        let len = u64::from_le_bytes(
            take(bytes, &mut pos, 8, "section length")?
                .try_into()
                .expect("8 bytes"),
        );
        let len = usize::try_from(len).map_err(|_| truncated("section payload"))?;
        let payload = take(bytes, &mut pos, len, "section payload")?;
        let stored = get_u32(take(bytes, &mut pos, 4, "section checksum")?);
        sections.push((tag, payload, stored));
    }
    let digest_at = pos;
    let stored_digest = get_u32(take(bytes, &mut pos, 4, "file digest")?);
    if pos != bytes.len() {
        return Err(CheckpointError::Malformed(format!(
            "{} trailing byte(s) after file digest",
            bytes.len() - pos
        )));
    }

    // Per-section checksums first, so a flipped payload byte names its
    // section; the whole-file digest then covers the headers in between.
    for &(tag, payload, stored) in &sections {
        if crc32(payload) != stored {
            return Err(CheckpointError::ChecksumMismatch {
                section: section_name(tag),
            });
        }
    }
    if crc32(&bytes[..digest_at]) != stored_digest {
        return Err(CheckpointError::ChecksumMismatch { section: "file" });
    }

    Ok((
        version,
        sections.into_iter().map(|(t, p, _)| (t, p)).collect(),
    ))
}

fn find_section<'a>(
    sections: &[RawSection<'a>],
    tag: u32,
) -> Result<&'a [u8], CheckpointError> {
    sections
        .iter()
        .find(|(t, _)| *t == tag)
        .map(|(_, p)| *p)
        .ok_or_else(|| {
            CheckpointError::Malformed(format!("missing {} section", section_name(tag)))
        })
}

fn expect_done(r: &ByteReader<'_>, tag: u32) -> Result<(), CheckpointError> {
    if r.is_done() {
        Ok(())
    } else {
        Err(CheckpointError::Malformed(format!(
            "{} trailing byte(s) in {} section",
            r.remaining(),
            section_name(tag)
        )))
    }
}

fn decode_checkpoint(bytes: &[u8]) -> Result<Checkpoint, CheckpointError> {
    let (version, sections) = parse_file(bytes)?;

    let mut r = ByteReader::new(find_section(&sections, SEC_META)?);
    let info = decode_meta(&mut r, version)?;
    expect_done(&r, SEC_META)?;

    let mut r = ByteReader::new(find_section(&sections, SEC_TRACE)?);
    let trace = decode_trace(&mut r)?;
    expect_done(&r, SEC_TRACE)?;

    let body = match info.mode {
        "mdfs" => {
            let mut r = ByteReader::new(find_section(&sections, SEC_MDFS)?);
            let m = decode_mdfs(&mut r)?;
            expect_done(&r, SEC_MDFS)?;
            CheckpointBody::Mdfs(m)
        }
        _ => {
            let mut r = ByteReader::new(find_section(&sections, SEC_STATES)?);
            let states = decode_states(&mut r)?;
            expect_done(&r, SEC_STATES)?;

            let mut r = ByteReader::new(find_section(&sections, SEC_DFS)?);
            let dfs = decode_dfs(&mut r, &states)?;
            expect_done(&r, SEC_DFS)?;
            CheckpointBody::Dfs(dfs)
        }
    };

    Ok(Checkpoint {
        body,
        trace,
        stats: info.stats,
    })
}

fn decode_meta(r: &mut ByteReader<'_>, version: u32) -> Result<CheckpointInfo, CheckpointError> {
    let depth = r.get_usize("depth")?;
    let pending_frames = r.get_usize("pending frames")?;
    let events_total = r.get_usize("events total")?;
    let stats = decode_stats(r)?;
    let (mode, workers_at_save, worker_loads) = match r.get_u8("mode")? {
        MODE_DFS => ("dfs", None, Vec::new()),
        MODE_MDFS => {
            let workers_at_save = r.get_u32("workers at save")?;
            let n = r.get_u32("worker load count")? as usize;
            let mut loads = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                let deque = r.get_usize("worker deque length")?;
                let parked = r.get_usize("worker parked length")?;
                loads.push((deque, parked));
            }
            ("mdfs", Some(workers_at_save), loads)
        }
        other => {
            return Err(CheckpointError::Malformed(format!(
                "unknown checkpoint mode {}",
                other
            )))
        }
    };
    Ok(CheckpointInfo {
        version,
        mode,
        depth,
        pending_frames,
        events_total,
        workers_at_save,
        worker_loads,
        stats,
    })
}

pub(crate) fn decode_stats(r: &mut ByteReader<'_>) -> Result<SearchStats, CodecError> {
    Ok(SearchStats {
        transitions_executed: r.get_u64("TE")?,
        generates: r.get_u64("GE")?,
        restores: r.get_u64("RE")?,
        saves: r.get_u64("SA")?,
        wall_time: Duration::from_nanos(r.get_u64("wall time")?),
        max_depth: r.get_usize("max depth")?,
        fanout_sum: r.get_u64("fanout sum")?,
        fanout_samples: r.get_u64("fanout samples")?,
        pg_nodes: r.get_u64("pg nodes")?,
        error_branches: r.get_u64("error branches")?,
        hash_prunes: r.get_u64("hash prunes")?,
        barren_prunes: r.get_u64("barren prunes")?,
        intern_hits: r.get_u64("intern hits")?,
        snapshot_bytes: r.get_usize("snapshot bytes")?,
        peak_snapshot_bytes: r.get_usize("peak snapshot bytes")?,
        spill_writes: r.get_u64("spill writes")?,
        spill_reads: r.get_u64("spill reads")?,
        spill_retries: r.get_u64("spill retries")?,
        spill_evictions: r.get_u64("spill evictions")?,
        spilled_bytes: r.get_usize("spilled bytes")?,
        peak_spilled_bytes: r.get_usize("peak spilled bytes")?,
        source_retries: r.get_u64("source retries")?,
        source_giveups: r.get_u64("source giveups")?,
        checkpoint_retries: r.get_u64("checkpoint retries")?,
        checkpoint_giveups: r.get_u64("checkpoint giveups")?,
        spill_giveups: r.get_u64("spill giveups")?,
        steals: r.get_u64("steals")?,
        steal_failures: r.get_u64("steal failures")?,
    })
}

fn decode_trace(r: &mut ByteReader<'_>) -> Result<ResolvedTrace, CheckpointError> {
    let ip_count = r.get_u32("stream count")? as usize;
    let mut out = ResolvedTrace::empty(ip_count);
    let n = r.get_len(6, "trace events")?;
    for index in 0..n {
        let dir = match r.get_u8("event direction")? {
            0 => Dir::In,
            1 => Dir::Out,
            other => {
                return Err(CheckpointError::Malformed(format!(
                    "unknown event direction tag {}",
                    other
                )))
            }
        };
        let ip = r.get_u32("event ip")? as usize;
        if ip >= ip_count {
            return Err(CheckpointError::Malformed(format!(
                "event {} references ip {} of {}",
                index, ip, ip_count
            )));
        }
        let interaction = r.get_u32("event interaction")? as usize;
        let np = r.get_u32("event params")? as usize;
        let mut params = Vec::with_capacity(np.min(64));
        for _ in 0..np {
            params.push(decode_value(r)?);
        }
        match dir {
            Dir::In => out.inputs[ip].push(index),
            Dir::Out => out.outputs[ip].push(index),
        }
        out.events.push(ResolvedEvent {
            dir,
            ip,
            interaction,
            params,
            index,
        });
    }
    Ok(out)
}

fn decode_states(r: &mut ByteReader<'_>) -> Result<Vec<Rc<MachineState>>, CodecError> {
    let n = r.get_u32("state count")? as usize;
    let mut states = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        states.push(Rc::new(decode_state(r)?));
    }
    Ok(states)
}

fn decode_cursors(r: &mut ByteReader<'_>) -> Result<Cursors, CodecError> {
    let ni = r.get_u32("input cursors")? as usize;
    let mut input = Vec::with_capacity(ni.min(1024));
    for _ in 0..ni {
        input.push(r.get_usize("input cursor")?);
    }
    let no = r.get_u32("output cursors")? as usize;
    let mut output = Vec::with_capacity(no.min(1024));
    for _ in 0..no {
        output.push(r.get_usize("output cursor")?);
    }
    Ok(Cursors { input, output })
}

fn decode_fireable(r: &mut ByteReader<'_>) -> Result<Fireable, CodecError> {
    let trans = r.get_usize("fireable transition")?;
    let fabricated = r.get_bool("fireable fabricated flag")?;
    let np = r.get_u32("fireable params")? as usize;
    let mut params = Vec::with_capacity(np.min(64));
    for _ in 0..np {
        params.push(decode_value(r)?);
    }
    Ok(Fireable {
        trans,
        params,
        fabricated,
    })
}

fn decode_spec_error(r: &mut ByteReader<'_>) -> Result<RuntimeError, CodecError> {
    let kind = kind_from_u8(r.get_u8("error kind")?)?;
    let message = r.get_str("error message")?;
    let span = match r.get_u8("error span tag")? {
        0 => None,
        1 => {
            let start = r.get_u32("span start")?;
            let end = r.get_u32("span end")?;
            if start > end {
                return Err(CodecError::Malformed(format!(
                    "inverted span {}..{}",
                    start, end
                )));
            }
            Some(Span::new(start, end))
        }
        other => {
            return Err(CodecError::Malformed(format!(
                "unknown span tag {}",
                other
            )))
        }
    };
    Ok(RuntimeError {
        kind,
        message,
        span,
    })
}

fn decode_path(r: &mut ByteReader<'_>) -> Result<Vec<String>, CodecError> {
    let n = r.get_u32("path length")? as usize;
    let mut path = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        path.push(r.get_str("path step")?);
    }
    Ok(path)
}

fn decode_dfs(
    r: &mut ByteReader<'_>,
    states: &[Rc<MachineState>],
) -> Result<DfsCheckpoint, CheckpointError> {
    let state = decode_state(r)?;
    let cursors = decode_cursors(r)?;
    let path = decode_path(r)?;
    let nframes = r.get_u32("frame count")? as usize;
    let mut stack = Vec::with_capacity(nframes.min(1024));
    // Frames that shared a snapshot in the saving search must share one
    // slot again, so the rebuilt store re-derives the same dedup.
    let mut slots: Vec<Option<Rc<Slot>>> = vec![None; states.len()];
    for i in 0..nframes {
        let state_index = r.get_u32("frame state index")? as usize;
        let rc = states.get(state_index).ok_or_else(|| {
            CheckpointError::Malformed(format!(
                "frame {} references state {} of {}",
                i,
                state_index,
                states.len()
            ))
        })?;
        let key = r.get_u64("frame intern key")?;
        let bytes = r.get_usize("frame charged bytes")?;
        let charges_state = r.get_bool("frame charges-state flag")?;
        let slot = match &slots[state_index] {
            Some(s) => Rc::clone(s),
            None => {
                let s = SavedState::decoded_slot(key, Rc::clone(rc));
                slots[state_index] = Some(Rc::clone(&s));
                s
            }
        };
        let saved = SavedState::from_decoded(slot, bytes, charges_state);
        let cursors = decode_cursors(r)?;
        let nf = r.get_u32("frame fireable count")? as usize;
        let mut fireable = Vec::with_capacity(nf.min(64));
        for _ in 0..nf {
            fireable.push(decode_fireable(r)?);
        }
        let next = r.get_usize("frame next")?;
        let path_len = r.get_usize("frame path length")?;
        let barren = r.get_usize("frame barren count")?;
        if next > fireable.len() {
            return Err(CheckpointError::Malformed(format!(
                "frame {} cursor {} past its {} fireables",
                i,
                next,
                fireable.len()
            )));
        }
        stack.push(Frame {
            state: saved,
            cursors,
            fireable,
            next,
            path_len,
            barren,
        });
    }
    let nv = r.get_len(8, "visited set")?;
    let mut visited: HashSet<u64, FxBuildHasher> =
        HashSet::with_capacity_and_hasher(nv, FxBuildHasher::default());
    for _ in 0..nv {
        visited.insert(r.get_u64("visited hash")?);
    }
    let ne = r.get_u32("spec error count")? as usize;
    let mut spec_errors = Vec::with_capacity(ne.min(1024));
    for _ in 0..ne {
        spec_errors.push(decode_spec_error(r)?);
    }
    let best_explained = r.get_usize("best explained")?;
    let best_path = decode_path(r)?;
    let best_pending_len = match r.get_u8("best pending tag")? {
        0 => None,
        1 => Some(r.get_usize("best pending length")?),
        other => {
            return Err(CheckpointError::Malformed(format!(
                "unknown best-pending tag {}",
                other
            )))
        }
    };
    let total_events = r.get_usize("total events")?;
    let barren = r.get_usize("barren count")?;
    let at_node = r.get_bool("at-node flag")?;
    Ok(DfsCheckpoint {
        state,
        cursors,
        path,
        stack,
        visited,
        spec_errors,
        best: (best_explained, best_path),
        best_pending_len,
        total_events,
        barren,
        at_node,
    })
}

fn decode_mdfs_node(r: &mut ByteReader<'_>) -> Result<MdfsNodeCkpt, CheckpointError> {
    let state = decode_state(r)?;
    let cursors = decode_cursors(r)?;
    let nt = r.get_u32("tried count")? as usize;
    let mut tried = Vec::with_capacity(nt.min(1024));
    for _ in 0..nt {
        tried.push(r.get_usize("tried transition")?);
    }
    let nb = r.get_u32("blocked count")? as usize;
    let mut blocked = Vec::with_capacity(nb.min(1024));
    for _ in 0..nb {
        blocked.push(r.get_usize("blocked transition")?);
    }
    let barren = r.get_usize("node barren count")?;
    let path = decode_path(r)?;
    Ok(MdfsNodeCkpt {
        state,
        cursors,
        tried,
        blocked,
        barren,
        path,
    })
}

fn decode_mdfs_nodes(r: &mut ByteReader<'_>) -> Result<Vec<MdfsNodeCkpt>, CheckpointError> {
    let n = r.get_u32("node count")? as usize;
    let mut nodes = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        nodes.push(decode_mdfs_node(r)?);
    }
    Ok(nodes)
}

fn decode_mdfs(r: &mut ByteReader<'_>) -> Result<MdfsCheckpoint, CheckpointError> {
    let workers_at_save = r.get_u32("workers at save")?;
    let eof = r.get_bool("eof flag")?;
    let nw = r.get_u32("worker count")? as usize;
    let mut workers = Vec::with_capacity(nw.min(1024));
    for _ in 0..nw {
        let deque = decode_mdfs_nodes(r)?;
        let parked = decode_mdfs_nodes(r)?;
        workers.push(MdfsWorkerCkpt { deque, parked });
    }
    let pg_prior = decode_mdfs_nodes(r)?;
    Ok(MdfsCheckpoint {
        workers_at_save,
        eof,
        workers,
        pg_prior,
    })
}

// --------------------------------------------------------- atomic write

/// The temp-file sibling one atomic write stages into before the rename
/// (pid-suffixed so concurrent writers to the same path cannot collide).
fn tmp_path(path: &Path) -> PathBuf {
    let mut tmp_name = path.as_os_str().to_owned();
    tmp_name.push(format!(".tmp.{}", std::process::id()));
    PathBuf::from(tmp_name)
}

/// One write attempt: temp file in the same directory, fsync, rename
/// over the destination, fsync the directory. A crash at any point
/// leaves either the old file or the new one, never a mix. Retries are
/// the caller's job, via [`RetryPolicy::checkpoint`] — each attempt is
/// this full sequence, so a retry never observes a half-written file.
pub(crate) fn write_atomic_once(path: &Path, bytes: &[u8]) -> Result<(), CheckpointError> {
    let tmp = tmp_path(path);
    let result = (|| -> Result<(), CheckpointError> {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        fs::rename(&tmp, path)?;
        // Make the rename itself durable. Directory fsync is a
        // best-effort POSIX-ism; opening a directory read-only fails on
        // some platforms, and the rename is already atomic without it.
        let dir = match path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p,
            _ => Path::new("."),
        };
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_check_vector() {
        // The classic CRC-32/IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn crc32_empty_and_sensitivity() {
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"tango"), crc32(b"tangp"));
    }

    #[test]
    fn stats_roundtrip() {
        let s = SearchStats {
            transitions_executed: 12345,
            generates: 678,
            restores: 90,
            saves: 91,
            wall_time: Duration::from_micros(987_654),
            max_depth: 42,
            fanout_sum: 100,
            fanout_samples: 40,
            pg_nodes: 7,
            error_branches: 3,
            hash_prunes: 11,
            barren_prunes: 2,
            intern_hits: 19,
            snapshot_bytes: 4096,
            peak_snapshot_bytes: 8192,
            spill_writes: 23,
            spill_reads: 17,
            spill_retries: 2,
            spill_evictions: 25,
            spilled_bytes: 2048,
            peak_spilled_bytes: 3072,
            source_retries: 5,
            source_giveups: 1,
            checkpoint_retries: 4,
            checkpoint_giveups: 2,
            spill_giveups: 3,
            steals: 31,
            steal_failures: 6,
        };
        let mut w = ByteWriter::new();
        encode_stats(&mut w, &s);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = decode_stats(&mut r).expect("decodes");
        assert!(r.is_done());
        assert_eq!(back.transitions_executed, s.transitions_executed);
        assert_eq!(back.wall_time, s.wall_time);
        assert_eq!(back.peak_snapshot_bytes, s.peak_snapshot_bytes);
        assert_eq!(back.spill_writes, s.spill_writes);
        assert_eq!(back.spill_evictions, s.spill_evictions);
        assert_eq!(back.peak_spilled_bytes, s.peak_spilled_bytes);
        assert_eq!(back.source_retries, s.source_retries);
        assert_eq!(back.source_giveups, s.source_giveups);
        assert_eq!(back.checkpoint_retries, s.checkpoint_retries);
        assert_eq!(back.checkpoint_giveups, s.checkpoint_giveups);
        assert_eq!(back.spill_giveups, s.spill_giveups);
        assert_eq!(back.steals, s.steals);
        assert_eq!(back.steal_failures, s.steal_failures);
    }

    #[test]
    fn atomic_write_retries_transient_failures_with_backoff() {
        let mut attempts = 0u32;
        let mut slept: Vec<Duration> = Vec::new();
        let out = RetryPolicy::checkpoint().run_with_sleep(&mut |d| slept.push(d), &mut |_| {
            attempts += 1;
            if attempts < 3 {
                Err(CheckpointError::Io(std::io::Error::other("transient")))
            } else {
                Ok(())
            }
        });
        assert!(out.result.is_ok(), "two transient failures must be absorbed");
        assert_eq!(attempts, 3);
        assert_eq!(out.retries, 2, "the outcome reports the retries it cost");
        assert_eq!(
            slept,
            vec![Duration::from_millis(4), Duration::from_millis(8)],
            "backoff must double between attempts"
        );
    }

    #[test]
    fn atomic_write_surfaces_persistent_failure_after_bounded_retries() {
        let mut attempts = 0u32;
        let out: RetryOutcome<(), _> =
            RetryPolicy::checkpoint().run_with_sleep(&mut |_| {}, &mut |_| {
                attempts += 1;
                Err(CheckpointError::Io(std::io::Error::other("dead disk")))
            });
        match out.result {
            Err(CheckpointError::Io(e)) => assert!(e.to_string().contains("dead disk")),
            other => panic!("persistent failure must surface as Io, got {:?}", other),
        }
        assert_eq!(attempts, 4, "retries are bounded: 1 try + 3 retries");
    }

    #[test]
    fn error_kind_mapping_is_total_and_injective() {
        let kinds = [
            RuntimeErrorKind::UndefinedValue,
            RuntimeErrorKind::UndefinedControl,
            RuntimeErrorKind::DanglingPointer,
            RuntimeErrorKind::IndexOutOfBounds,
            RuntimeErrorKind::DivisionByZero,
            RuntimeErrorKind::Overflow,
            RuntimeErrorKind::CallDepthExceeded,
            RuntimeErrorKind::LoopLimitExceeded,
            RuntimeErrorKind::OutputRejected,
            RuntimeErrorKind::Internal,
            RuntimeErrorKind::Panic,
        ];
        for (i, &k) in kinds.iter().enumerate() {
            assert_eq!(kind_to_u8(k), i as u8);
            assert_eq!(kind_from_u8(i as u8).expect("maps back"), k);
        }
        assert!(kind_from_u8(kinds.len() as u8).is_err());
    }
}
