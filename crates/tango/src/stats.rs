//! Search statistics: the counters reported in the paper's tables.
//!
//! Figure 3 and Figure 4 report, per analysis run: CPU time (CPUT),
//! transitions executed (TE), generates (GE), restores/backtracks (RE) and
//! state saves (SA). We track the same counters plus fanout accounting for
//! the §4.2 discussion (average fanout 2.6 → 1.5 under full checking).

use std::fmt;
use std::time::Duration;

/// Counters for one trace-analysis run.
#[derive(Clone, Debug, Default)]
pub struct SearchStats {
    /// TE: transitions executed (edges searched in the search tree).
    pub transitions_executed: u64,
    /// GE: generate operations (fireable-list computations).
    pub generates: u64,
    /// RE: restores, i.e. backtracks performed.
    pub restores: u64,
    /// SA: state saves.
    pub saves: u64,
    /// Wall-clock time of the search.
    pub cpu_time: Duration,
    /// Deepest point reached in the search tree.
    pub max_depth: usize,
    /// Sum of fireable-list sizes over all generates with ≥1 candidate —
    /// `fanout_sum / fanout_samples` is the paper's average fanout.
    pub fanout_sum: u64,
    pub fanout_samples: u64,
    /// PG-nodes created (dynamic mode only).
    pub pg_nodes: u64,
    /// Branches abandoned because of runtime errors in the specification
    /// (division by zero on a path, etc.).
    pub error_branches: u64,
    /// States pruned by the optional visited-state hash table.
    pub hash_prunes: u64,
    /// Paths cut by the consecutive-barren-steps bound (non-progress
    /// cycles, unbounded fabrication on unobserved IPs).
    pub barren_prunes: u64,
    /// Saves deduplicated by the snapshot-interning cache: the state was
    /// already resident, so it was shared instead of copied (COW mode
    /// only; always 0 under `--cow=off`).
    pub intern_hits: u64,
    /// Approximate bytes of saved state snapshots currently held by the
    /// search (DFS frames, MDFS work + PG nodes) — the quantity the
    /// `max_state_bytes` budget governs. Deduplicated: an interned
    /// snapshot referenced by several frames is charged once.
    pub snapshot_bytes: usize,
    /// High-water mark of `snapshot_bytes` over the run.
    pub peak_snapshot_bytes: usize,
}

impl SearchStats {
    /// Average branching factor over the search.
    pub fn average_fanout(&self) -> f64 {
        if self.fanout_samples == 0 {
            0.0
        } else {
            self.fanout_sum as f64 / self.fanout_samples as f64
        }
    }

    /// Transitions searched per CPU second — the paper's §4 throughput
    /// metric.
    pub fn transitions_per_second(&self) -> f64 {
        let secs = self.cpu_time.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.transitions_executed as f64 / secs
        }
    }

    /// Merge another run's counters into this one (used by the
    /// initial-state search, which runs several analyses).
    pub fn absorb(&mut self, other: &SearchStats) {
        self.transitions_executed += other.transitions_executed;
        self.generates += other.generates;
        self.restores += other.restores;
        self.saves += other.saves;
        self.cpu_time += other.cpu_time;
        self.max_depth = self.max_depth.max(other.max_depth);
        self.fanout_sum += other.fanout_sum;
        self.fanout_samples += other.fanout_samples;
        self.pg_nodes += other.pg_nodes;
        self.error_branches += other.error_branches;
        self.hash_prunes += other.hash_prunes;
        self.barren_prunes += other.barren_prunes;
        self.intern_hits += other.intern_hits;
        self.snapshot_bytes = other.snapshot_bytes;
        self.peak_snapshot_bytes = self.peak_snapshot_bytes.max(other.peak_snapshot_bytes);
    }
}

impl fmt::Display for SearchStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CPUT={:.3}s TE={} GE={} RE={} SA={}",
            self.cpu_time.as_secs_f64(),
            self.transitions_executed,
            self.generates,
            self.restores,
            self.saves
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fanout_average() {
        let mut s = SearchStats::default();
        assert_eq!(s.average_fanout(), 0.0);
        s.fanout_sum = 12;
        s.fanout_samples = 5;
        assert!((s.average_fanout() - 2.4).abs() < 1e-9);
    }

    #[test]
    fn absorb_accumulates() {
        let mut a = SearchStats {
            transitions_executed: 10,
            max_depth: 4,
            ..Default::default()
        };
        let b = SearchStats {
            transitions_executed: 5,
            restores: 2,
            max_depth: 9,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.transitions_executed, 15);
        assert_eq!(a.restores, 2);
        assert_eq!(a.max_depth, 9);
    }

    #[test]
    fn display_matches_table_columns() {
        let s = SearchStats {
            transitions_executed: 173,
            generates: 104,
            restores: 69,
            saves: 69,
            cpu_time: Duration::from_millis(900),
            ..Default::default()
        };
        let line = s.to_string();
        assert!(line.contains("TE=173"));
        assert!(line.contains("GE=104"));
        assert!(line.contains("RE=69"));
        assert!(line.contains("SA=69"));
    }
}
