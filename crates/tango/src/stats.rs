//! Search statistics: the counters reported in the paper's tables.
//!
//! Figure 3 and Figure 4 report, per analysis run: CPU time (CPUT),
//! transitions executed (TE), generates (GE), restores/backtracks (RE) and
//! state saves (SA). We track the same counters plus fanout accounting for
//! the §4.2 discussion (average fanout 2.6 → 1.5 under full checking).
//!
//! On timing: the paper's CPUT column was process CPU time on a shared
//! SPARCstation; what this engine measures is **wall-clock elapsed time**
//! of the search. The field is named `wall_time` accordingly — the
//! `Display` output keeps the paper's `CPUT=` column label as a
//! documented alias so report lines stay comparable to the tables.
//! Genuine per-worker busy time (elapsed minus idle-poll sleeps) is
//! reported separately through the telemetry metrics registry
//! (`mdfs.worker0.busy_seconds`).

use std::fmt;
use std::time::Duration;

/// Counters for one trace-analysis run.
#[derive(Clone, Debug, Default)]
pub struct SearchStats {
    /// TE: transitions executed (edges searched in the search tree).
    pub transitions_executed: u64,
    /// GE: generate operations (fireable-list computations).
    pub generates: u64,
    /// RE: restores, i.e. backtracks performed.
    pub restores: u64,
    /// SA: state saves.
    pub saves: u64,
    /// Wall-clock elapsed time of the search (the paper's CPUT column;
    /// see the module docs for why the name differs).
    pub wall_time: Duration,
    /// Deepest point reached in the search tree.
    pub max_depth: usize,
    /// Sum of fireable-list sizes over all generates with ≥1 candidate —
    /// `fanout_sum / fanout_samples` is the paper's average fanout.
    pub fanout_sum: u64,
    pub fanout_samples: u64,
    /// PG-nodes created (dynamic mode only).
    pub pg_nodes: u64,
    /// Branches abandoned because of runtime errors in the specification
    /// (division by zero on a path, etc.).
    pub error_branches: u64,
    /// States pruned by the optional visited-state hash table.
    pub hash_prunes: u64,
    /// Paths cut by the consecutive-barren-steps bound (non-progress
    /// cycles, unbounded fabrication on unobserved IPs).
    pub barren_prunes: u64,
    /// Saves deduplicated by the snapshot-interning cache: the state was
    /// already resident, so it was shared instead of copied (COW mode
    /// only; always 0 under `--cow=off`).
    pub intern_hits: u64,
    /// Approximate bytes of saved state snapshots currently held by the
    /// search (DFS frames, MDFS work + PG nodes) — the quantity the
    /// `max_state_bytes` budget governs. Deduplicated: an interned
    /// snapshot referenced by several frames is charged once.
    pub snapshot_bytes: usize,
    /// High-water mark of `snapshot_bytes` over the run.
    pub peak_snapshot_bytes: usize,
    /// Snapshot records written to disk spill segments (spill tier only;
    /// always 0 with spilling off).
    pub spill_writes: u64,
    /// Spilled snapshots read (and checksum-verified) back from disk.
    pub spill_reads: u64,
    /// Transient spill I/O errors absorbed by retry + backoff.
    pub spill_retries: u64,
    /// Snapshots evicted from RAM under the memory budget (disk writes
    /// plus write-free adoptions of records already on disk).
    pub spill_evictions: u64,
    /// Approximate bytes of snapshots currently resident only in spill
    /// segments. Point-in-time residency, like `snapshot_bytes`.
    pub spilled_bytes: usize,
    /// High-water mark of `spilled_bytes` over the run.
    pub peak_spilled_bytes: usize,
    /// Trace-source faults absorbed losslessly by retrying (injected
    /// read errors under `RecoveryPolicy::Restart`, re-read rotations).
    pub source_retries: u64,
    /// Trace-source faults the feed gave up on (degraded to early eof or
    /// partial data). Always paired with a `source_faults` diagnostic.
    pub source_giveups: u64,
    /// Checkpoint autosave write failures absorbed by retry + backoff.
    pub checkpoint_retries: u64,
    /// Checkpoint autosaves abandoned after exhausting retries
    /// (warn-and-continue; recorded in `checkpoint_faults`).
    pub checkpoint_giveups: u64,
    /// Spill operations abandoned after exhausting retries (the search
    /// then degrades to `Inconclusive(SpillFailure)`).
    pub spill_giveups: u64,
    /// Search nodes taken from *another* worker's deque (multi-worker
    /// MDFS only; always 0 single-threaded).
    pub steals: u64,
    /// Steal sweeps that found every other deque empty (the worker then
    /// parked until new work appeared or the burst ended).
    pub steal_failures: u64,
}

impl SearchStats {
    /// Deprecated alias for [`SearchStats::wall_time`]: the measurement
    /// was always wall-clock, never process CPU time, and the old name
    /// said otherwise.
    #[deprecated(since = "0.5.0", note = "renamed to `wall_time`; it was always wall-clock")]
    pub fn cpu_time(&self) -> Duration {
        self.wall_time
    }

    /// Average branching factor over the search.
    pub fn average_fanout(&self) -> f64 {
        if self.fanout_samples == 0 {
            0.0
        } else {
            self.fanout_sum as f64 / self.fanout_samples as f64
        }
    }

    /// Transitions searched per second of wall time — the paper's §4
    /// throughput metric.
    pub fn transitions_per_second(&self) -> f64 {
        let secs = self.wall_time.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.transitions_executed as f64 / secs
        }
    }

    /// Merge another run's counters into this one (used by the §2.4.1
    /// initial-state search, which runs several analyses and accumulates
    /// one report, and by stop/resume rounds).
    ///
    /// All event counters accumulate. `snapshot_bytes` deliberately does
    /// **not**: it is point-in-time residency, not a flow, so summing
    /// rounds would double-count memory that was released between them.
    /// The merged value is last-writer-wins — the residency of the most
    /// recently absorbed round, which for a sequential multi-round
    /// analysis is the residency *now*. The across-rounds high-water
    /// mark is what `peak_snapshot_bytes` keeps (by `max`).
    pub fn absorb(&mut self, other: &SearchStats) {
        self.transitions_executed += other.transitions_executed;
        self.generates += other.generates;
        self.restores += other.restores;
        self.saves += other.saves;
        self.wall_time += other.wall_time;
        self.max_depth = self.max_depth.max(other.max_depth);
        self.fanout_sum += other.fanout_sum;
        self.fanout_samples += other.fanout_samples;
        self.pg_nodes += other.pg_nodes;
        self.error_branches += other.error_branches;
        self.hash_prunes += other.hash_prunes;
        self.barren_prunes += other.barren_prunes;
        self.intern_hits += other.intern_hits;
        // Last-writer-wins residency; see the doc comment above.
        self.snapshot_bytes = other.snapshot_bytes;
        self.peak_snapshot_bytes = self.peak_snapshot_bytes.max(other.peak_snapshot_bytes);
        self.spill_writes += other.spill_writes;
        self.spill_reads += other.spill_reads;
        self.spill_retries += other.spill_retries;
        self.spill_evictions += other.spill_evictions;
        self.spilled_bytes = other.spilled_bytes;
        self.peak_spilled_bytes = self.peak_spilled_bytes.max(other.peak_spilled_bytes);
        self.source_retries += other.source_retries;
        self.source_giveups += other.source_giveups;
        self.checkpoint_retries += other.checkpoint_retries;
        self.checkpoint_giveups += other.checkpoint_giveups;
        self.spill_giveups += other.spill_giveups;
        self.steals += other.steals;
        self.steal_failures += other.steal_failures;
    }

    /// Faults absorbed by retrying, across every site — the number the
    /// progress heartbeat reports as ` retries=`.
    pub fn total_fault_retries(&self) -> u64 {
        self.source_retries + self.spill_retries + self.checkpoint_retries
    }

    /// Faults that exhausted their retries, across every site. Non-zero
    /// means the run degraded somewhere — the post-mortem dump layer
    /// treats any giveup as a dump-worthy outcome even when the verdict
    /// itself completed.
    pub fn total_fault_giveups(&self) -> u64 {
        self.source_giveups + self.spill_giveups + self.checkpoint_giveups
    }
}

impl fmt::Display for SearchStats {
    /// The paper's table columns (`CPUT=` is the documented alias for
    /// wall time) followed by the extension counters discussed in
    /// DESIGN §6: hash prunes (HP), barren prunes (BP) and snapshot
    /// intern hits (IH).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CPUT={:.3}s TE={} GE={} RE={} SA={} HP={} BP={} IH={}",
            self.wall_time.as_secs_f64(),
            self.transitions_executed,
            self.generates,
            self.restores,
            self.saves,
            self.hash_prunes,
            self.barren_prunes,
            self.intern_hits
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fanout_average() {
        let mut s = SearchStats::default();
        assert_eq!(s.average_fanout(), 0.0);
        s.fanout_sum = 12;
        s.fanout_samples = 5;
        assert!((s.average_fanout() - 2.4).abs() < 1e-9);
    }

    #[test]
    fn absorb_accumulates() {
        let mut a = SearchStats {
            transitions_executed: 10,
            max_depth: 4,
            ..Default::default()
        };
        let b = SearchStats {
            transitions_executed: 5,
            restores: 2,
            max_depth: 9,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.transitions_executed, 15);
        assert_eq!(a.restores, 2);
        assert_eq!(a.max_depth, 9);
    }

    #[test]
    fn absorb_snapshot_bytes_is_last_writer_wins_residency() {
        // Residency is point-in-time, not additive: absorbing three
        // rounds must report the latest round's residency, while the
        // peak keeps the across-rounds high-water mark.
        let mut total = SearchStats::default();
        for (resident, peak) in [(1000, 1500), (400, 2000), (250, 300)] {
            let round = SearchStats {
                snapshot_bytes: resident,
                peak_snapshot_bytes: peak,
                saves: 1,
                ..Default::default()
            };
            total.absorb(&round);
        }
        assert_eq!(total.snapshot_bytes, 250, "last round's residency wins");
        assert_eq!(total.peak_snapshot_bytes, 2000, "peak is max over rounds");
        assert_eq!(total.saves, 3, "flow counters still accumulate");
    }

    #[test]
    fn absorb_spill_counters_flow_and_gauge_correctly() {
        let mut total = SearchStats::default();
        for (writes, spilled, peak) in [(3u64, 900usize, 900usize), (2, 100, 1200)] {
            let round = SearchStats {
                spill_writes: writes,
                spill_reads: writes,
                spill_retries: 1,
                spill_evictions: writes,
                spilled_bytes: spilled,
                peak_spilled_bytes: peak,
                ..Default::default()
            };
            total.absorb(&round);
        }
        assert_eq!(total.spill_writes, 5, "writes are a flow: they sum");
        assert_eq!(total.spill_retries, 2);
        assert_eq!(total.spilled_bytes, 100, "disk residency is last-writer-wins");
        assert_eq!(total.peak_spilled_bytes, 1200, "peak is max over rounds");
    }

    #[test]
    fn absorb_sums_fault_counters_across_rounds() {
        let mut total = SearchStats::default();
        for _ in 0..2 {
            let round = SearchStats {
                source_retries: 3,
                source_giveups: 1,
                checkpoint_retries: 2,
                checkpoint_giveups: 1,
                spill_retries: 4,
                spill_giveups: 1,
                ..Default::default()
            };
            total.absorb(&round);
        }
        assert_eq!(total.source_retries, 6);
        assert_eq!(total.source_giveups, 2);
        assert_eq!(total.checkpoint_retries, 4);
        assert_eq!(total.checkpoint_giveups, 2);
        assert_eq!(total.spill_giveups, 2);
        assert_eq!(
            total.total_fault_retries(),
            6 + 8 + 4,
            "heartbeat total spans source+spill+checkpoint"
        );
    }

    #[test]
    fn absorb_sums_steal_counters() {
        let mut total = SearchStats::default();
        for _ in 0..2 {
            let round = SearchStats {
                steals: 7,
                steal_failures: 2,
                ..Default::default()
            };
            total.absorb(&round);
        }
        assert_eq!(total.steals, 14);
        assert_eq!(total.steal_failures, 4);
    }

    #[test]
    fn deprecated_cpu_time_aliases_wall_time() {
        let s = SearchStats {
            wall_time: Duration::from_millis(250),
            ..Default::default()
        };
        #[allow(deprecated)]
        let aliased = s.cpu_time();
        assert_eq!(aliased, s.wall_time);
    }

    #[test]
    fn display_matches_table_columns() {
        let s = SearchStats {
            transitions_executed: 173,
            generates: 104,
            restores: 69,
            saves: 69,
            wall_time: Duration::from_millis(900),
            ..Default::default()
        };
        let line = s.to_string();
        assert!(line.contains("CPUT=0.900s"), "{}", line);
        assert!(line.contains("TE=173"));
        assert!(line.contains("GE=104"));
        assert!(line.contains("RE=69"));
        assert!(line.contains("SA=69"));
    }

    #[test]
    fn display_includes_extension_counters() {
        let s = SearchStats {
            hash_prunes: 11,
            barren_prunes: 7,
            intern_hits: 3,
            ..Default::default()
        };
        let line = s.to_string();
        assert!(line.contains("HP=11"), "{}", line);
        assert!(line.contains("BP=7"), "{}", line);
        assert!(line.contains("IH=3"), "{}", line);
    }
}
