//! Live introspection endpoint: observe a running analysis over HTTP.
//!
//! A deliberately tiny, std-only responder (`TcpListener` + one accept
//! thread — the workspace vendors no async runtime and no HTTP crate)
//! serving three read-only JSON routes:
//!
//! * `/metrics`  — the metrics registry's `"tango-metrics"` document;
//! * `/status`   — the heartbeat as JSON: verdict-so-far, TE/GE/RE/SA,
//!   rate, ETA, retries, resident/spilled bytes;
//! * `/profile`  — the transition hot-spot table as rows.
//!
//! The search thread never blocks on the network: it *pushes* rendered
//! JSON documents into a shared [`IntrospectHandle`] (a mutex around
//! three strings, swapped wholesale), and the accept thread serves
//! whatever snapshot is current. A slow or absent reader costs the
//! analysis nothing beyond the rate-limited render; a burst of readers
//! sees consistent documents. Responses are `Connection: close` —
//! fleet pollers (ROADMAP item 2) issue one GET per scrape, exactly
//! what the future `tango-serve` daemon will mount per session.

use std::io::{Read, Write as _};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Schema identifier of the `/status` document.
pub const STATUS_SCHEMA_VERSION: u32 = 1;

/// The three pre-rendered documents the server hands out. Defaults are
/// valid JSON, so a scrape that races analysis startup still parses.
struct Snapshot {
    status: String,
    metrics: String,
    profile: String,
}

impl Default for Snapshot {
    fn default() -> Self {
        Snapshot {
            status: format!(
                "{{\"schema\":\"tango-status\",\"version\":{},\"verdict\":\"starting\",\
                 \"te\":0,\"ge\":0,\"re\":0,\"sa\":0,\"depth\":0,\"rate\":0.0,\"eta_s\":null,\
                 \"retries\":0,\"giveups\":0,\"resident_bytes\":0,\"spilled_bytes\":0,\
                 \"done\":false}}",
                STATUS_SCHEMA_VERSION
            ),
            metrics: "{\"schema\":\"tango-metrics\",\"version\":1,\"counters\":{},\
                      \"gauges\":{},\"histograms\":{}}"
                .to_string(),
            profile: "{\"schema\":\"tango-profile\",\"version\":1,\"rows\":[]}".to_string(),
        }
    }
}

/// The write side: the telemetry layer pushes rendered documents here.
/// Cloneable; all clones share one snapshot.
#[derive(Clone)]
pub struct IntrospectHandle {
    shared: Arc<Mutex<Snapshot>>,
}

impl IntrospectHandle {
    pub fn set_status(&self, json: String) {
        if let Ok(mut s) = self.shared.lock() {
            s.status = json;
        }
    }

    pub fn set_metrics(&self, json: String) {
        if let Ok(mut s) = self.shared.lock() {
            s.metrics = json;
        }
    }

    pub fn set_profile(&self, json: String) {
        if let Ok(mut s) = self.shared.lock() {
            s.profile = json;
        }
    }
}

/// The listener plus its accept thread. Dropping the server stops the
/// thread and closes the socket.
pub struct IntrospectionServer {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    handle: IntrospectHandle,
    thread: Option<JoinHandle<()>>,
}

impl IntrospectionServer {
    /// Bind `addr` (e.g. `127.0.0.1:7070`; port `0` picks a free one —
    /// read it back from [`IntrospectionServer::local_addr`]) and start
    /// serving the current snapshot.
    pub fn bind(addr: &str) -> std::io::Result<IntrospectionServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        // Non-blocking accept so the thread can poll the stop flag; the
        // 15ms nap bounds both shutdown latency and idle CPU.
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let handle = IntrospectHandle {
            shared: Arc::new(Mutex::new(Snapshot::default())),
        };
        let thread = {
            let stop = Arc::clone(&stop);
            let shared = Arc::clone(&handle.shared);
            std::thread::Builder::new()
                .name("tango-introspect".to_string())
                .spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        match listener.accept() {
                            Ok((stream, _)) => serve_one(stream, &shared),
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                std::thread::sleep(Duration::from_millis(15));
                            }
                            Err(_) => std::thread::sleep(Duration::from_millis(15)),
                        }
                    }
                })?
        };
        Ok(IntrospectionServer {
            addr: local,
            stop,
            handle,
            thread: Some(thread),
        })
    }

    /// The bound address (resolves a `:0` request to the actual port).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The write side to thread into the telemetry handle.
    pub fn handle(&self) -> IntrospectHandle {
        self.handle.clone()
    }
}

impl Drop for IntrospectionServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Serve one request on an accepted connection. Read errors and
/// malformed requests drop the connection — a misbehaving client must
/// not take the endpoint down.
fn serve_one(mut stream: TcpStream, shared: &Arc<Mutex<Snapshot>>) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_nonblocking(false);
    // The request line is all we need; headers are read (up to a small
    // cap) only to drain the request before responding.
    let mut buf = [0u8; 2048];
    let mut len = 0usize;
    loop {
        match stream.read(&mut buf[len..]) {
            Ok(0) => break,
            Ok(n) => {
                len += n;
                if buf[..len].windows(4).any(|w| w == b"\r\n\r\n") || len == buf.len() {
                    break;
                }
            }
            Err(_) => return,
        }
    }
    let request = String::from_utf8_lossy(&buf[..len]);
    let mut parts = request.split_whitespace();
    let (method, path) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) => (m, p),
        _ => return,
    };
    if method != "GET" {
        respond(
            &mut stream,
            "405 Method Not Allowed",
            "{\"error\":\"only GET is supported\"}",
        );
        return;
    }
    let body = {
        let snap = match shared.lock() {
            Ok(s) => s,
            Err(_) => return,
        };
        match path {
            "/status" | "/status/" => Some(snap.status.clone()),
            "/metrics" | "/metrics/" => Some(snap.metrics.clone()),
            "/profile" | "/profile/" => Some(snap.profile.clone()),
            _ => None,
        }
    };
    match body {
        Some(b) => respond(&mut stream, "200 OK", &b),
        None => respond(
            &mut stream,
            "404 Not Found",
            "{\"error\":\"unknown path; try /metrics, /status or /profile\"}",
        ),
    }
}

fn respond(stream: &mut TcpStream, status: &str, body: &str) {
    let response = format!(
        "HTTP/1.1 {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\
         Connection: close\r\n\r\n{}",
        status,
        body.len(),
        body
    );
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        let req = format!("GET {} HTTP/1.1\r\nHost: x\r\n\r\n", path);
        stream.write_all(req.as_bytes()).expect("send");
        let mut out = String::new();
        stream.read_to_string(&mut out).expect("read");
        let (head, body) = out.split_once("\r\n\r\n").expect("header/body split");
        (head.to_string(), body.to_string())
    }

    #[test]
    fn serves_default_snapshots_before_any_push() {
        let server = IntrospectionServer::bind("127.0.0.1:0").expect("bind");
        let addr = server.local_addr();
        let (head, body) = get(addr, "/status");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{}", head);
        assert!(head.contains("Content-Type: application/json"));
        assert!(body.contains("\"schema\":\"tango-status\""), "{}", body);
        assert!(body.contains("\"verdict\":\"starting\""));
        let (_, metrics) = get(addr, "/metrics");
        assert!(metrics.contains("\"schema\":\"tango-metrics\""));
        let (_, profile) = get(addr, "/profile");
        assert!(profile.contains("\"schema\":\"tango-profile\""));
    }

    #[test]
    fn pushed_snapshots_replace_served_documents() {
        let server = IntrospectionServer::bind("127.0.0.1:0").expect("bind");
        let handle = server.handle();
        handle.set_status("{\"schema\":\"tango-status\",\"te\":42}".to_string());
        let (_, body) = get(server.local_addr(), "/status");
        assert!(body.contains("\"te\":42"), "{}", body);
    }

    #[test]
    fn unknown_paths_get_a_json_404_and_posts_a_405() {
        let server = IntrospectionServer::bind("127.0.0.1:0").expect("bind");
        let addr = server.local_addr();
        let (head, body) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{}", head);
        assert!(body.contains("unknown path"));

        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(b"POST /status HTTP/1.1\r\nHost: x\r\n\r\n")
            .expect("send");
        let mut out = String::new();
        stream.read_to_string(&mut out).expect("read");
        assert!(out.starts_with("HTTP/1.1 405"), "{}", out);
    }

    #[test]
    fn drop_stops_the_accept_thread_and_frees_the_port() {
        let server = IntrospectionServer::bind("127.0.0.1:0").expect("bind");
        let addr = server.local_addr();
        drop(server);
        // The port is closed: a fresh bind to the same address works.
        let again = TcpListener::bind(addr);
        assert!(again.is_ok(), "port must be released on drop");
    }
}
