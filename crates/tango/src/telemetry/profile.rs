//! Per-transition hot-spot profile.
//!
//! For every compiled transition: how often the search tried to fire
//! it, how often that attempt failed (output mismatch, guard error) and
//! how much wall time the fire attempts cost cumulatively. The profile
//! explains *where the analysis time went* — on the paper's invalid-TP0
//! blowups a handful of data transitions absorb nearly all TE — and
//! feeds both the CLI's sorted `profile` report section and the
//! Graphviz heat overlay (`estelle_runtime::graph::to_dot_with_heat`).

use std::fmt::Write as _;
use std::time::Duration;

/// Counters for one compiled transition.
#[derive(Clone, Copy, Debug, Default)]
pub struct TransitionStats {
    /// Fire attempts that completed with every output matched.
    pub fires: u64,
    /// Fire attempts that failed (rejected output, guard/runtime error).
    pub fails: u64,
    /// Cumulative wall time spent inside `Machine::fire` for this
    /// transition, nanoseconds.
    pub nanos: u64,
}

impl TransitionStats {
    pub fn attempts(&self) -> u64 {
        self.fires + self.fails
    }

    pub fn total_time(&self) -> Duration {
        Duration::from_nanos(self.nanos)
    }
}

/// The whole profile, indexed by compiled-transition id.
#[derive(Clone, Debug)]
pub struct TransitionProfile {
    entries: Vec<TransitionStats>,
}

impl TransitionProfile {
    pub fn new(transition_count: usize) -> Self {
        TransitionProfile {
            entries: vec![TransitionStats::default(); transition_count],
        }
    }

    #[inline]
    pub(crate) fn record(&mut self, trans: usize, fired: bool, nanos: u64) {
        if let Some(e) = self.entries.get_mut(trans) {
            if fired {
                e.fires += 1;
            } else {
                e.fails += 1;
            }
            e.nanos += nanos;
        }
    }

    pub fn entries(&self) -> &[TransitionStats] {
        &self.entries
    }

    /// Transition ids sorted hottest-first (by cumulative time, then by
    /// attempts for timer-resolution ties).
    pub fn ranked(&self) -> Vec<usize> {
        let mut ids: Vec<usize> = (0..self.entries.len())
            .filter(|&i| self.entries[i].attempts() > 0)
            .collect();
        ids.sort_by_key(|&i| {
            let e = &self.entries[i];
            (std::cmp::Reverse(e.nanos), std::cmp::Reverse(e.attempts()), i)
        });
        ids
    }

    /// Per-transition heat weights in `[0, 1]`, normalized against the
    /// hottest transition's cumulative time (falling back to attempt
    /// counts when the run was too fast for the timer). Input for
    /// `estelle_runtime::graph::to_dot_with_heat`.
    pub fn heat_weights(&self) -> Vec<f64> {
        let by_time = self.entries.iter().map(|e| e.nanos).max().unwrap_or(0) > 0;
        let max = self
            .entries
            .iter()
            .map(|e| if by_time { e.nanos } else { e.attempts() })
            .max()
            .unwrap_or(0);
        self.entries
            .iter()
            .map(|e| {
                let v = if by_time { e.nanos } else { e.attempts() };
                if max == 0 {
                    0.0
                } else {
                    v as f64 / max as f64
                }
            })
            .collect()
    }

    /// Render the sorted hot-transition table. `name` maps a compiled
    /// transition id to its display name.
    pub fn render_table(&self, name: &dyn Fn(usize) -> String) -> String {
        let total_nanos: u64 = self.entries.iter().map(|e| e.nanos).sum();
        let mut out = String::new();
        out.push_str("hot transitions (by cumulative fire time):\n");
        let _ = writeln!(
            out,
            "{:>4} {:<24} {:>10} {:>10} {:>11} {:>9} {:>6}",
            "rank", "transition", "fires", "fails", "total(ms)", "avg(us)", "%time"
        );
        for (rank, id) in self.ranked().into_iter().enumerate() {
            let e = &self.entries[id];
            let ms = e.nanos as f64 / 1e6;
            let avg_us = e.nanos as f64 / 1e3 / e.attempts().max(1) as f64;
            let pct = if total_nanos == 0 {
                0.0
            } else {
                100.0 * e.nanos as f64 / total_nanos as f64
            };
            let _ = writeln!(
                out,
                "{:>4} {:<24} {:>10} {:>10} {:>11.3} {:>9.2} {:>5.1}%",
                rank + 1,
                name(id),
                e.fires,
                e.fails,
                ms,
                avg_us,
                pct
            );
        }
        out
    }

    /// Overlay labels for the Graphviz export: one short annotation per
    /// transition with attempts and cumulative time (empty for
    /// never-attempted transitions, which stay unannotated).
    pub fn heat_labels(&self) -> Vec<String> {
        self.entries
            .iter()
            .map(|e| {
                if e.attempts() == 0 {
                    String::new()
                } else {
                    format!(
                        "{} fired, {} failed, {:.1}ms",
                        e.fires,
                        e.fails,
                        e.nanos as f64 / 1e6
                    )
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_rank_by_time() {
        let mut p = TransitionProfile::new(3);
        p.record(0, true, 100);
        p.record(2, false, 5_000);
        p.record(2, true, 5_000);
        p.record(1, true, 0);
        assert_eq!(p.ranked(), vec![2, 0, 1]);
        assert_eq!(p.entries()[2].fires, 1);
        assert_eq!(p.entries()[2].fails, 1);
        assert_eq!(p.entries()[2].attempts(), 2);
        // Out-of-range ids are ignored, not a panic.
        p.record(99, true, 1);
    }

    #[test]
    fn heat_weights_normalize_to_unit_range() {
        let mut p = TransitionProfile::new(2);
        p.record(0, true, 400);
        p.record(1, true, 100);
        let w = p.heat_weights();
        assert_eq!(w[0], 1.0);
        assert_eq!(w[1], 0.25);
    }

    #[test]
    fn heat_weights_fall_back_to_attempts_without_timing() {
        let mut p = TransitionProfile::new(2);
        p.record(0, true, 0);
        p.record(0, false, 0);
        p.record(1, true, 0);
        let w = p.heat_weights();
        assert_eq!(w[0], 1.0);
        assert_eq!(w[1], 0.5);
    }

    #[test]
    fn table_lists_hottest_first_and_skips_untouched() {
        let mut p = TransitionProfile::new(3);
        p.record(1, true, 2_000_000);
        p.record(0, false, 1_000_000);
        let table = p.render_table(&|i| format!("t{}", i));
        let t1 = table.find("t1 ").unwrap();
        let t0 = table.find("t0 ").unwrap();
        assert!(t1 < t0, "{}", table);
        assert!(!table.contains("t2 "), "untouched transitions omitted");
        assert!(p.heat_labels()[2].is_empty());
        assert!(p.heat_labels()[1].contains("1 fired"));
    }
}
