//! Per-transition hot-spot profile.
//!
//! For every compiled transition: how often the search tried to fire
//! it, how often that attempt failed (output mismatch, guard error) and
//! how much wall time the fire attempts cost cumulatively. The profile
//! explains *where the analysis time went* — on the paper's invalid-TP0
//! blowups a handful of data transitions absorb nearly all TE — and
//! feeds the CLI's sorted `profile` report section, the Graphviz heat
//! overlay (`estelle_runtime::graph::to_dot_with_heat`), and — through
//! the serializable [`PgoProfile`] — the compiler's profile-guided
//! optimization round trip (`--pgo-out` → `--pgo-in`).

use estelle_runtime::PgoHints;
use std::fmt::Write as _;
use std::time::Duration;

/// Counters for one compiled transition.
#[derive(Clone, Copy, Debug, Default)]
pub struct TransitionStats {
    /// Fire attempts that completed with every output matched.
    pub fires: u64,
    /// Fire attempts that failed (rejected output, guard/runtime error).
    pub fails: u64,
    /// Cumulative wall time spent inside `Machine::fire` for this
    /// transition, nanoseconds.
    pub nanos: u64,
}

impl TransitionStats {
    pub fn attempts(&self) -> u64 {
        self.fires + self.fails
    }

    pub fn total_time(&self) -> Duration {
        Duration::from_nanos(self.nanos)
    }
}

/// The whole profile, indexed by compiled-transition id.
#[derive(Clone, Debug)]
pub struct TransitionProfile {
    entries: Vec<TransitionStats>,
}

impl TransitionProfile {
    pub fn new(transition_count: usize) -> Self {
        TransitionProfile {
            entries: vec![TransitionStats::default(); transition_count],
        }
    }

    #[inline]
    pub(crate) fn record(&mut self, trans: usize, fired: bool, nanos: u64) {
        if let Some(e) = self.entries.get_mut(trans) {
            if fired {
                e.fires += 1;
            } else {
                e.fails += 1;
            }
            e.nanos += nanos;
        }
    }

    pub fn entries(&self) -> &[TransitionStats] {
        &self.entries
    }

    /// Transition ids sorted hottest-first (by cumulative time, then by
    /// attempts for timer-resolution ties).
    pub fn ranked(&self) -> Vec<usize> {
        let mut ids: Vec<usize> = (0..self.entries.len())
            .filter(|&i| self.entries[i].attempts() > 0)
            .collect();
        ids.sort_by_key(|&i| {
            let e = &self.entries[i];
            (std::cmp::Reverse(e.nanos), std::cmp::Reverse(e.attempts()), i)
        });
        ids
    }

    /// Per-transition heat weights in `[0, 1]`, normalized against the
    /// hottest transition's cumulative time (falling back to attempt
    /// counts when the run was too fast for the timer). Input for
    /// `estelle_runtime::graph::to_dot_with_heat`.
    pub fn heat_weights(&self) -> Vec<f64> {
        let by_time = self.entries.iter().map(|e| e.nanos).max().unwrap_or(0) > 0;
        let max = self
            .entries
            .iter()
            .map(|e| if by_time { e.nanos } else { e.attempts() })
            .max()
            .unwrap_or(0);
        self.entries
            .iter()
            .map(|e| {
                let v = if by_time { e.nanos } else { e.attempts() };
                if max == 0 {
                    0.0
                } else {
                    v as f64 / max as f64
                }
            })
            .collect()
    }

    /// Render the sorted hot-transition table. `name` maps a compiled
    /// transition id to its display name.
    pub fn render_table(&self, name: &dyn Fn(usize) -> String) -> String {
        let total_nanos: u64 = self.entries.iter().map(|e| e.nanos).sum();
        let mut out = String::new();
        out.push_str("hot transitions (by cumulative fire time):\n");
        let _ = writeln!(
            out,
            "{:>4} {:<24} {:>10} {:>10} {:>11} {:>9} {:>6}",
            "rank", "transition", "fires", "fails", "total(ms)", "avg(us)", "%time"
        );
        for (rank, id) in self.ranked().into_iter().enumerate() {
            let e = &self.entries[id];
            let ms = e.nanos as f64 / 1e6;
            let avg_us = e.nanos as f64 / 1e3 / e.attempts().max(1) as f64;
            let pct = if total_nanos == 0 {
                0.0
            } else {
                100.0 * e.nanos as f64 / total_nanos as f64
            };
            let _ = writeln!(
                out,
                "{:>4} {:<24} {:>10} {:>10} {:>11.3} {:>9.2} {:>5.1}%",
                rank + 1,
                name(id),
                e.fires,
                e.fails,
                ms,
                avg_us,
                pct
            );
        }
        out
    }

    /// Overlay labels for the Graphviz export: one short annotation per
    /// transition with attempts and cumulative time (empty for
    /// never-attempted transitions, which stay unannotated).
    pub fn heat_labels(&self) -> Vec<String> {
        self.entries
            .iter()
            .map(|e| {
                if e.attempts() == 0 {
                    String::new()
                } else {
                    format!(
                        "{} fired, {} failed, {:.1}ms",
                        e.fires,
                        e.fails,
                        e.nanos as f64 / 1e6
                    )
                }
            })
            .collect()
    }
}

/// One serialized transition row of a [`PgoProfile`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PgoRow {
    pub fires: u64,
    pub fails: u64,
    pub nanos: u64,
    /// Display name of the transition at this index, recorded so a
    /// profile can be validated against the spec it is applied to.
    pub name: String,
}

/// Why a PGO profile file was rejected.
///
/// Profiles are validated like checkpoints: a profile recorded against a
/// different spec (wrong name, wrong transition count, renamed
/// transitions) is refused with a typed error instead of silently
/// reordering the wrong dispatch buckets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PgoError {
    /// The file does not start with the `tangopgo` magic line.
    BadMagic,
    /// The magic line names a format version this build cannot read.
    UnsupportedVersion(u64),
    /// A line failed to parse; carries the 1-based line number and a
    /// short reason.
    Malformed { line: usize, msg: String },
    /// The profile was recorded against a differently named spec.
    SpecMismatch { file: String, spec: String },
    /// The profile has a different number of transitions than the spec.
    TransitionCountMismatch { file: usize, spec: usize },
    /// The transition at `index` has a different name in the profile
    /// than in the spec.
    TransitionNameMismatch {
        index: usize,
        file: String,
        spec: String,
    },
}

impl std::fmt::Display for PgoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PgoError::BadMagic => write!(f, "not a tango PGO profile (missing `tangopgo` magic)"),
            PgoError::UnsupportedVersion(v) => {
                write!(f, "unsupported PGO profile version {} (expected 1)", v)
            }
            PgoError::Malformed { line, msg } => {
                write!(f, "malformed PGO profile at line {}: {}", line, msg)
            }
            PgoError::SpecMismatch { file, spec } => write!(
                f,
                "PGO profile was recorded for spec `{}`, not `{}`",
                file, spec
            ),
            PgoError::TransitionCountMismatch { file, spec } => write!(
                f,
                "PGO profile has {} transitions, spec has {}",
                file, spec
            ),
            PgoError::TransitionNameMismatch { index, file, spec } => write!(
                f,
                "PGO profile transition {} is `{}`, spec has `{}`",
                index, file, spec
            ),
        }
    }
}

impl std::error::Error for PgoError {}

/// A [`TransitionProfile`] in serializable form, tagged with the spec it
/// was recorded against (CLI `--pgo-out` / `--pgo-in`).
///
/// The file format is line-oriented text, one row per transition in
/// compiled-transition order:
///
/// ```text
/// tangopgo 1
/// spec lapd
/// transitions 21
/// t 0 152 38 91042 t_sabme_rx
/// t 1 0 190 15811 t_disc_rx
/// ...
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PgoProfile {
    /// Name of the spec the profile was recorded against.
    pub spec: String,
    /// One row per compiled transition, in transition-id order.
    pub rows: Vec<PgoRow>,
}

impl PgoProfile {
    /// Snapshot a live in-memory profile. `name` maps a compiled
    /// transition id to its display name (the same mapping
    /// [`TransitionProfile::render_table`] uses).
    pub fn from_profile(
        spec: &str,
        profile: &TransitionProfile,
        name: &dyn Fn(usize) -> String,
    ) -> Self {
        PgoProfile {
            spec: spec.to_string(),
            rows: profile
                .entries()
                .iter()
                .enumerate()
                .map(|(i, e)| PgoRow {
                    fires: e.fires,
                    fails: e.fails,
                    nanos: e.nanos,
                    name: name(i),
                })
                .collect(),
        }
    }

    /// Serialize to the `tangopgo 1` text format.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "tangopgo 1");
        let _ = writeln!(out, "spec {}", self.spec);
        let _ = writeln!(out, "transitions {}", self.rows.len());
        for (i, r) in self.rows.iter().enumerate() {
            let _ = writeln!(out, "t {} {} {} {} {}", i, r.fires, r.fails, r.nanos, r.name);
        }
        out
    }

    /// Parse the `tangopgo 1` text format.
    pub fn parse(text: &str) -> Result<Self, PgoError> {
        let mut lines = text.lines().enumerate();
        let (_, magic) = lines.next().ok_or(PgoError::BadMagic)?;
        let mut magic_parts = magic.split_whitespace();
        if magic_parts.next() != Some("tangopgo") {
            return Err(PgoError::BadMagic);
        }
        let version: u64 = magic_parts
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or(PgoError::BadMagic)?;
        if version != 1 {
            return Err(PgoError::UnsupportedVersion(version));
        }

        let malformed = |n: usize, msg: &str| PgoError::Malformed {
            line: n + 1,
            msg: msg.to_string(),
        };

        let (n, spec_line) = lines
            .next()
            .ok_or(malformed(1, "missing `spec` line"))?;
        let spec = spec_line
            .strip_prefix("spec ")
            .ok_or(malformed(n, "expected `spec <name>`"))?
            .trim()
            .to_string();

        let (n, count_line) = lines
            .next()
            .ok_or(malformed(2, "missing `transitions` line"))?;
        let count: usize = count_line
            .strip_prefix("transitions ")
            .and_then(|v| v.trim().parse().ok())
            .ok_or(malformed(n, "expected `transitions <count>`"))?;

        let mut rows = Vec::with_capacity(count);
        for (n, line) in lines {
            if line.trim().is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            if parts.next() != Some("t") {
                return Err(malformed(n, "expected `t <idx> <fires> <fails> <nanos> <name>`"));
            }
            let idx: usize = parts
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or(malformed(n, "bad transition index"))?;
            if idx != rows.len() {
                return Err(malformed(n, "transition rows out of order"));
            }
            let fires: u64 = parts
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or(malformed(n, "bad fires count"))?;
            let fails: u64 = parts
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or(malformed(n, "bad fails count"))?;
            let nanos: u64 = parts
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or(malformed(n, "bad nanos total"))?;
            let name = parts.next().ok_or(malformed(n, "missing transition name"))?;
            rows.push(PgoRow {
                fires,
                fails,
                nanos,
                name: name.to_string(),
            });
        }
        if rows.len() != count {
            return Err(PgoError::TransitionCountMismatch {
                file: rows.len(),
                spec: count,
            });
        }
        Ok(PgoProfile { spec, rows })
    }

    /// Validate this profile against the spec it is about to optimize and
    /// convert it to compiler hints. Mirrors checkpoint validation:
    /// the spec name, the transition count and every transition name must
    /// match, otherwise a typed [`PgoError`] is returned.
    pub fn hints_for(
        &self,
        spec: &str,
        transition_count: usize,
        name: &dyn Fn(usize) -> String,
    ) -> Result<PgoHints, PgoError> {
        if self.spec != spec {
            return Err(PgoError::SpecMismatch {
                file: self.spec.clone(),
                spec: spec.to_string(),
            });
        }
        if self.rows.len() != transition_count {
            return Err(PgoError::TransitionCountMismatch {
                file: self.rows.len(),
                spec: transition_count,
            });
        }
        let mut hints = PgoHints {
            fires: Vec::with_capacity(self.rows.len()),
            fails: Vec::with_capacity(self.rows.len()),
        };
        for (i, row) in self.rows.iter().enumerate() {
            let expect = name(i);
            if row.name != expect {
                return Err(PgoError::TransitionNameMismatch {
                    index: i,
                    file: row.name.clone(),
                    spec: expect,
                });
            }
            hints.fires.push(row.fires);
            hints.fails.push(row.fails);
        }
        Ok(hints)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_rank_by_time() {
        let mut p = TransitionProfile::new(3);
        p.record(0, true, 100);
        p.record(2, false, 5_000);
        p.record(2, true, 5_000);
        p.record(1, true, 0);
        assert_eq!(p.ranked(), vec![2, 0, 1]);
        assert_eq!(p.entries()[2].fires, 1);
        assert_eq!(p.entries()[2].fails, 1);
        assert_eq!(p.entries()[2].attempts(), 2);
        // Out-of-range ids are ignored, not a panic.
        p.record(99, true, 1);
    }

    #[test]
    fn heat_weights_normalize_to_unit_range() {
        let mut p = TransitionProfile::new(2);
        p.record(0, true, 400);
        p.record(1, true, 100);
        let w = p.heat_weights();
        assert_eq!(w[0], 1.0);
        assert_eq!(w[1], 0.25);
    }

    #[test]
    fn heat_weights_fall_back_to_attempts_without_timing() {
        let mut p = TransitionProfile::new(2);
        p.record(0, true, 0);
        p.record(0, false, 0);
        p.record(1, true, 0);
        let w = p.heat_weights();
        assert_eq!(w[0], 1.0);
        assert_eq!(w[1], 0.5);
    }

    #[test]
    fn table_lists_hottest_first_and_skips_untouched() {
        let mut p = TransitionProfile::new(3);
        p.record(1, true, 2_000_000);
        p.record(0, false, 1_000_000);
        let table = p.render_table(&|i| format!("t{}", i));
        let t1 = table.find("t1 ").unwrap();
        let t0 = table.find("t0 ").unwrap();
        assert!(t1 < t0, "{}", table);
        assert!(!table.contains("t2 "), "untouched transitions omitted");
        assert!(p.heat_labels()[2].is_empty());
        assert!(p.heat_labels()[1].contains("1 fired"));
    }

    fn sample_pgo() -> PgoProfile {
        let mut p = TransitionProfile::new(3);
        p.record(0, true, 120);
        p.record(1, false, 40);
        p.record(2, true, 9_000);
        p.record(2, true, 1_000);
        PgoProfile::from_profile("lapd", &p, &|i| format!("t{}", i))
    }

    #[test]
    fn pgo_profile_round_trips_through_text() {
        let pgo = sample_pgo();
        let text = pgo.render();
        assert!(text.starts_with("tangopgo 1\nspec lapd\ntransitions 3\n"), "{}", text);
        let back = PgoProfile::parse(&text).expect("parses");
        assert_eq!(back, pgo);
        assert_eq!(back.rows[2].fires, 2);
        assert_eq!(back.rows[2].nanos, 10_000);
    }

    #[test]
    fn pgo_hints_carry_fires_and_fails() {
        let pgo = sample_pgo();
        let hints = pgo.hints_for("lapd", 3, &|i| format!("t{}", i)).expect("valid");
        assert_eq!(hints.fires, vec![1, 0, 2]);
        assert_eq!(hints.fails, vec![0, 1, 0]);
    }

    #[test]
    fn pgo_validation_rejects_foreign_profiles_with_typed_errors() {
        let pgo = sample_pgo();
        assert_eq!(
            pgo.hints_for("tp0", 3, &|i| format!("t{}", i)),
            Err(PgoError::SpecMismatch {
                file: "lapd".into(),
                spec: "tp0".into()
            })
        );
        assert_eq!(
            pgo.hints_for("lapd", 5, &|i| format!("t{}", i)),
            Err(PgoError::TransitionCountMismatch { file: 3, spec: 5 })
        );
        let err = pgo
            .hints_for("lapd", 3, &|i| format!("renamed{}", i))
            .unwrap_err();
        assert_eq!(
            err,
            PgoError::TransitionNameMismatch {
                index: 0,
                file: "t0".into(),
                spec: "renamed0".into()
            }
        );
        assert!(err.to_string().contains("transition 0"));
    }

    #[test]
    fn pgo_parse_rejects_bad_inputs() {
        assert_eq!(PgoProfile::parse(""), Err(PgoError::BadMagic));
        assert_eq!(
            PgoProfile::parse("checkpoint 1\nspec x\n"),
            Err(PgoError::BadMagic)
        );
        assert_eq!(
            PgoProfile::parse("tangopgo 9\nspec x\ntransitions 0\n"),
            Err(PgoError::UnsupportedVersion(9))
        );
        let truncated = "tangopgo 1\nspec x\ntransitions 2\nt 0 1 2 3 a\n";
        assert_eq!(
            PgoProfile::parse(truncated),
            Err(PgoError::TransitionCountMismatch { file: 1, spec: 2 })
        );
        let garbled = "tangopgo 1\nspec x\ntransitions 1\nt 0 one 2 3 a\n";
        assert!(matches!(
            PgoProfile::parse(garbled),
            Err(PgoError::Malformed { line: 4, .. })
        ));
        let out_of_order = "tangopgo 1\nspec x\ntransitions 2\nt 1 1 2 3 a\nt 0 1 2 3 b\n";
        assert!(matches!(
            PgoProfile::parse(out_of_order),
            Err(PgoError::Malformed { .. })
        ));
    }
}
