//! Metrics registry: counters, gauges and fixed-bucket histograms.
//!
//! The registry is the numeric side of the telemetry layer: where the
//! event stream answers *what happened*, the registry answers *how much
//! and how fast*. It is hand-rolled (the workspace vendors no crates)
//! and exports one JSON document whose well-formedness `bench::json`
//! validates in CI. Names are dotted paths (`search.te`,
//! `mdfs.worker0.busy_seconds`); histograms use fixed upper-bound
//! buckets plus an overflow bucket, cumulative-sum-free so merging two
//! registries is plain addition.

use crate::stats::SearchStats;
use std::collections::BTreeMap;
use std::fmt::Write as _;

use super::event::json_escape;

/// Schema marker written into every exported document.
pub const METRICS_SCHEMA_VERSION: u32 = 1;

/// Fanout histogram bounds: the paper's §4.2 discussion lives around
/// average fanout 1.5–2.6, so the low buckets are fine-grained.
pub const FANOUT_BOUNDS: &[f64] = &[1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 32.0];

/// Search-depth histogram bounds (powers of two).
pub const DEPTH_BOUNDS: &[f64] = &[
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0, 4096.0, 16384.0,
];

/// Per-generate latency bounds, microseconds.
pub const LATENCY_US_BOUNDS: &[f64] = &[1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 500.0, 2000.0];

/// Snapshot-residency bounds, bytes (powers of four) — the timeline of
/// `snapshot_bytes` values observed at save points.
pub const SNAPSHOT_BYTES_BOUNDS: &[f64] = &[
    1024.0,
    4096.0,
    16384.0,
    65536.0,
    262144.0,
    1048576.0,
    4194304.0,
    16777216.0,
    67108864.0,
];

/// One fixed-bucket histogram: `counts[i]` is the number of samples
/// `<= bounds[i]` (and above the previous bound); the last entry of
/// `counts` is the overflow bucket.
#[derive(Clone, Debug)]
pub struct Histogram {
    bounds: &'static [f64],
    counts: Vec<u64>,
    sum: f64,
    count: u64,
}

impl Histogram {
    fn new(bounds: &'static [f64]) -> Self {
        Histogram {
            bounds,
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            count: 0,
        }
    }

    fn observe(&mut self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += v;
        self.count += 1;
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> f64 {
        self.sum
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// (upper bound, samples in bucket) pairs; the final pair uses
    /// `f64::INFINITY` for the overflow bucket.
    pub fn buckets(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.bounds
            .iter()
            .copied()
            .chain(std::iter::once(f64::INFINITY))
            .zip(self.counts.iter().copied())
    }
}

/// Format an `f64` as valid JSON (never `NaN`/`inf` tokens).
fn json_number(x: f64) -> String {
    if x.is_finite() {
        if x == x.trunc() && x.abs() < 1e15 {
            format!("{:.1}", x)
        } else {
            format!("{:.6}", x)
        }
    } else {
        "null".to_string()
    }
}

/// The registry: monotonic counters, point-in-time gauges and fixed
/// bucket histograms, all keyed by dotted-path names. Export order is
/// the `BTreeMap` name order, so the document is deterministic.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    // Gauge names are owned: worker-indexed series (`mdfs.worker3.…`)
    // are built at runtime, unlike the fixed counter/histogram names.
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Add to a monotonic counter (created at zero on first touch).
    pub fn inc(&mut self, name: &'static str, by: u64) {
        *self.counters.entry(name).or_insert(0) += by;
    }

    /// Set a counter to an absolute value (used when folding a final
    /// `SearchStats`, whose fields are already cumulative).
    pub fn set_counter(&mut self, name: &'static str, value: u64) {
        self.counters.insert(name, value);
    }

    /// Set a gauge.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Record one histogram sample; the histogram is created with
    /// `bounds` on first touch (later calls reuse the existing buckets).
    pub fn observe(&mut self, name: &'static str, bounds: &'static [f64], v: f64) {
        self.histograms
            .entry(name)
            .or_insert_with(|| Histogram::new(bounds))
            .observe(v);
    }

    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Fold a run's final counters into the registry. `SearchStats`
    /// fields are cumulative over a whole analysis (including
    /// stop/resume rounds and the §2.4.1 initial-state search, whose
    /// per-round stats are absorbed upstream), so these are absolute
    /// sets, not increments.
    pub fn record_stats(&mut self, stats: &SearchStats) {
        self.set_counter("search.te", stats.transitions_executed);
        self.set_counter("search.ge", stats.generates);
        self.set_counter("search.re", stats.restores);
        self.set_counter("search.sa", stats.saves);
        self.set_counter("search.pg_nodes", stats.pg_nodes);
        self.set_counter("search.error_branches", stats.error_branches);
        self.set_counter("search.hash_prunes", stats.hash_prunes);
        self.set_counter("search.barren_prunes", stats.barren_prunes);
        self.set_counter("search.intern_hits", stats.intern_hits);
        self.set_gauge("search.wall_seconds", stats.wall_time.as_secs_f64());
        self.set_gauge(
            "search.transitions_per_second",
            stats.transitions_per_second(),
        );
        self.set_gauge("search.average_fanout", stats.average_fanout());
        self.set_gauge("search.max_depth", stats.max_depth as f64);
        self.set_gauge("search.snapshot_bytes", stats.snapshot_bytes as f64);
        self.set_gauge(
            "search.peak_snapshot_bytes",
            stats.peak_snapshot_bytes as f64,
        );
        // Work-stealing series appear only when a steal was attempted
        // (i.e. the run actually had ≥2 workers), so single-worker runs
        // export a byte-identical document.
        if stats.steals + stats.steal_failures > 0 {
            self.set_counter("mdfs.steals", stats.steals);
            self.set_counter("mdfs.steal_failures", stats.steal_failures);
        }
        // Spill-tier series appear only when the tier did something, so
        // spill-off runs export a byte-identical document.
        if stats.spill_writes + stats.spill_reads + stats.spill_evictions > 0 {
            self.set_counter("spill.writes", stats.spill_writes);
            self.set_counter("spill.reads", stats.spill_reads);
            self.set_counter("spill.retries", stats.spill_retries);
            self.set_counter("spill.evictions", stats.spill_evictions);
            self.set_gauge("spill.spilled_bytes", stats.spilled_bytes as f64);
            self.set_gauge(
                "spill.peak_spilled_bytes",
                stats.peak_spilled_bytes as f64,
            );
        }
        // Per-site fault series, gated the same way: a site that saw no
        // faults exports nothing, so fault-free runs stay byte-identical
        // with the fault hooks compiled in.
        let fault_sites: [(&'static str, &'static str, u64, u64); 3] = [
            (
                "fault.source.retries",
                "fault.source.giveups",
                stats.source_retries,
                stats.source_giveups,
            ),
            (
                "fault.spill.retries",
                "fault.spill.giveups",
                stats.spill_retries,
                stats.spill_giveups,
            ),
            (
                "fault.checkpoint.retries",
                "fault.checkpoint.giveups",
                stats.checkpoint_retries,
                stats.checkpoint_giveups,
            ),
        ];
        for (retries_name, giveups_name, retries, giveups) in fault_sites {
            if retries + giveups > 0 {
                self.set_counter(retries_name, retries);
                self.set_counter(giveups_name, giveups);
            }
        }
    }

    /// Export the registry as one JSON document (validated by
    /// `bench::json::validate` in CI and by `json_check`).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        let _ = write!(
            out,
            "{{\n  \"schema\": \"tango-metrics\",\n  \"version\": {},\n  \"counters\": {{",
            METRICS_SCHEMA_VERSION
        );
        for (i, (name, v)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{}\n    \"{}\": {}", sep, json_escape(name), v);
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{}\n    \"{}\": {}",
                sep,
                json_escape(name),
                json_number(*v)
            );
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{}\n    \"{}\": {{\"buckets\": [", sep, json_escape(name));
            for (j, (le, count)) in h.buckets().enumerate() {
                let sep = if j == 0 { "" } else { ", " };
                let le = if le.is_finite() {
                    json_number(le)
                } else {
                    "\"+inf\"".to_string()
                };
                let _ = write!(out, "{}{{\"le\": {}, \"count\": {}}}", sep, le, count);
            }
            let _ = write!(
                out,
                "], \"sum\": {}, \"count\": {}}}",
                json_number(h.sum),
                h.count
            );
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(&[1.0, 4.0, 16.0]);
        for v in [0.5, 1.0, 3.0, 100.0] {
            h.observe(v);
        }
        let buckets: Vec<_> = h.buckets().collect();
        assert_eq!(buckets[0], (1.0, 2)); // 0.5 and 1.0
        assert_eq!(buckets[1], (4.0, 1)); // 3.0
        assert_eq!(buckets[2], (16.0, 0));
        assert_eq!(buckets[3].1, 1); // overflow: 100.0
        assert!(buckets[3].0.is_infinite());
        assert_eq!(h.count(), 4);
        assert!((h.mean() - 26.125).abs() < 1e-9);
    }

    #[test]
    fn registry_round_trip_and_determinism() {
        let mut m = MetricsRegistry::new();
        m.inc("search.te", 3);
        m.inc("search.te", 2);
        m.set_gauge("search.wall_seconds", 1.5);
        m.observe("search.fanout", FANOUT_BOUNDS, 2.0);
        assert_eq!(m.counter("search.te"), Some(5));
        assert_eq!(m.gauge("search.wall_seconds"), Some(1.5));
        assert_eq!(m.histogram("search.fanout").unwrap().count(), 1);
        assert_eq!(m.to_json(), m.clone().to_json());
        assert!(m.to_json().contains("\"schema\": \"tango-metrics\""));
    }

    #[test]
    fn record_stats_sets_absolute_values() {
        let stats = SearchStats {
            transitions_executed: 10,
            generates: 7,
            restores: 3,
            saves: 4,
            wall_time: Duration::from_millis(500),
            max_depth: 9,
            ..Default::default()
        };
        let mut m = MetricsRegistry::new();
        m.record_stats(&stats);
        m.record_stats(&stats); // idempotent, not doubling
        assert_eq!(m.counter("search.te"), Some(10));
        assert_eq!(m.gauge("search.max_depth"), Some(9.0));
        assert_eq!(m.gauge("search.wall_seconds"), Some(0.5));
    }

    #[test]
    fn fault_series_appear_only_for_sites_that_saw_faults() {
        let clean = SearchStats::default();
        let mut m = MetricsRegistry::new();
        m.record_stats(&clean);
        assert_eq!(m.counter("fault.source.retries"), None);
        assert_eq!(m.counter("fault.spill.retries"), None);
        assert_eq!(m.counter("fault.checkpoint.retries"), None);

        let faulty = SearchStats {
            source_retries: 2,
            checkpoint_retries: 1,
            checkpoint_giveups: 1,
            ..Default::default()
        };
        let mut m = MetricsRegistry::new();
        m.record_stats(&faulty);
        assert_eq!(m.counter("fault.source.retries"), Some(2));
        assert_eq!(m.counter("fault.source.giveups"), Some(0));
        // Spill saw nothing — still absent.
        assert_eq!(m.counter("fault.spill.retries"), None);
        assert_eq!(m.counter("fault.checkpoint.retries"), Some(1));
        assert_eq!(m.counter("fault.checkpoint.giveups"), Some(1));
    }

    #[test]
    fn export_is_valid_json_by_hand_inspection() {
        // The real validation runs in CI through bench::json; here we
        // pin the shape against obvious breakage.
        let mut m = MetricsRegistry::new();
        m.observe("search.depth", DEPTH_BOUNDS, 3.0);
        m.set_gauge("nan_gauge", f64::NAN);
        let doc = m.to_json();
        assert!(doc.contains("\"nan_gauge\": null"));
        assert!(doc.contains("\"le\": \"+inf\""));
        assert!(!doc.contains("NaN"));
    }
}
