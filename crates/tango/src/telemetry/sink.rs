//! Pluggable event sinks.
//!
//! A sink receives every [`SearchEvent`] the searches emit, already
//! stamped with a monotonically increasing sequence number and a worker
//! id — sinks see events in merge order and never reorder them. Two
//! implementations ship: [`JsonlSink`] streams rendered lines into any
//! writer (a file for `--trace-out`, a `Vec<u8>` in tests), and
//! [`RingBufferSink`] keeps the last N *rendered lines* in memory.
//! (The always-on black box over compact binary records is the
//! [`super::recorder::FlightRecorder`], which needs no sink at all;
//! a ring of rendered JSONL is for tests and ad-hoc tooling.)

use super::event::SearchEvent;
use std::collections::VecDeque;
use std::io::Write;

/// Receives the stamped event stream. Implementations must be cheap per
/// call: the searches emit on their hot path.
pub trait EventSink {
    /// One event, in merge order.
    fn emit(&mut self, seq: u64, worker: u16, event: &SearchEvent<'_>);

    /// Push any buffered output to its destination. Called when a search
    /// ends and by [`super::Telemetry::flush`].
    fn flush(&mut self) {}
}

/// Streams rendered JSONL lines into a writer (buffered by the caller's
/// writer choice; `--trace-out` wraps a `BufWriter<File>`).
pub struct JsonlSink<W: Write> {
    out: W,
    buf: String,
    /// First write error, reported once on flush-by-drop paths instead
    /// of panicking the search.
    error: Option<std::io::Error>,
}

impl<W: Write> JsonlSink<W> {
    pub fn new(out: W) -> Self {
        JsonlSink {
            out,
            buf: String::with_capacity(128),
            error: None,
        }
    }

    /// The first I/O error the sink swallowed, if any.
    pub fn io_error(&self) -> Option<&std::io::Error> {
        self.error.as_ref()
    }

    /// Flush and hand back the writer (tests read the bytes out).
    pub fn into_inner(mut self) -> W {
        let _ = self.out.flush();
        self.out
    }
}

impl<W: Write> EventSink for JsonlSink<W> {
    fn emit(&mut self, seq: u64, worker: u16, event: &SearchEvent<'_>) {
        if self.error.is_some() {
            return;
        }
        self.buf.clear();
        event.render(seq, worker, &mut self.buf);
        self.buf.push('\n');
        if let Err(e) = self.out.write_all(self.buf.as_bytes()) {
            self.error = Some(e);
        }
    }

    fn flush(&mut self) {
        if let Err(e) = self.out.flush() {
            self.error.get_or_insert(e);
        }
    }
}

/// Keeps the last `capacity` rendered lines in memory, dropping the
/// oldest — bounded no matter how long the search runs.
pub struct RingBufferSink {
    lines: VecDeque<String>,
    capacity: usize,
    /// Total events seen (including those already evicted).
    emitted: u64,
}

impl RingBufferSink {
    pub fn new(capacity: usize) -> Self {
        RingBufferSink {
            lines: VecDeque::with_capacity(capacity.min(1024)),
            capacity: capacity.max(1),
            emitted: 0,
        }
    }

    /// The retained tail of the stream, oldest first.
    pub fn lines(&self) -> impl Iterator<Item = &str> {
        self.lines.iter().map(String::as_str)
    }

    /// Total events emitted into the sink over its lifetime.
    pub fn total_emitted(&self) -> u64 {
        self.emitted
    }

    pub fn into_lines(self) -> Vec<String> {
        self.lines.into()
    }
}

impl EventSink for RingBufferSink {
    fn emit(&mut self, seq: u64, worker: u16, event: &SearchEvent<'_>) {
        self.emitted += 1;
        if self.lines.len() == self.capacity {
            self.lines.pop_front();
        }
        self.lines.push_back(event.to_jsonl(seq, worker));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(depth: usize) -> SearchEvent<'static> {
        SearchEvent::Restore { depth }
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.emit(0, 0, &ev(1));
        sink.emit(1, 0, &ev(2));
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"seq\":0"));
        assert!(lines[1].contains("\"depth\":2"));
    }

    #[test]
    fn ring_buffer_keeps_only_the_tail() {
        let mut sink = RingBufferSink::new(3);
        for i in 0..10 {
            sink.emit(i, 0, &ev(i as usize));
        }
        assert_eq!(sink.total_emitted(), 10);
        let lines: Vec<_> = sink.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"seq\":7"));
        assert!(lines[2].contains("\"seq\":9"));
    }

    #[test]
    fn jsonl_sink_swallows_io_errors_once() {
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk gone"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut sink = JsonlSink::new(Broken);
        sink.emit(0, 0, &ev(0));
        sink.emit(1, 0, &ev(1));
        assert!(sink.io_error().is_some());
    }
}
