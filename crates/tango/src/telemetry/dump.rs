//! Post-mortem `.tangodump` files: what the black box writes down when
//! a run ends badly.
//!
//! Any non-Completed outcome — every [`InconclusiveReason`], a fault
//! site that gave up after its retries, a panic-isolated branch — is
//! worth a durable artifact that explains itself *after* the process is
//! gone (GenTra4CP's self-describing-trace principle). The dump captures
//! the flight recorder's retained tail, the final [`SearchStats`], the
//! top-K transition hot spots, the armed chaos plan and the path of the
//! newest autosaved checkpoint, so the triage loop is: read the dump,
//! see where the time and memory went, resume from the checkpoint it
//! names.
//!
//! The byte format deliberately mirrors the checkpoint codec (DESIGN
//! §6.12 holds the section table):
//!
//! ```text
//! +----------------+---------+-----------+
//! | magic (8B)     | version | #sections |   header
//! | b"TANGODMP"    |  u32 LE |  u32 LE   |
//! +----------------+---------+-----------+
//! | tag u32 | len u64 | payload | CRC32  |   META | STATS | RING |
//! +------------------------------------+-+   HOTSPOTS | PLAN
//! | CRC32 of everything above            |   whole-file digest
//! +--------------------------------------+
//! ```
//!
//! The `STATS` payload is byte-for-byte the checkpoint codec's stats
//! block (one codec, two formats), integrity failures map to the typed
//! [`DumpError`] (never a panic — pinned by `tests/flight_recorder.rs`),
//! and writes go through the same atomic temp+fsync+rename sequence as
//! checkpoints, so a crash mid-dump never leaves a torn file.
//!
//! [`InconclusiveReason`]: crate::verdict::InconclusiveReason

use super::recorder::{kind_name, FlightRecord, KIND_COUNT};
use super::Telemetry;
use crate::checkpoint::codec::{
    crc32, decode_stats, encode_stats, kind_to_u8, write_atomic_once, CheckpointError,
};
use crate::fault::FaultPlan;
use crate::stats::SearchStats;
use crate::telemetry::event::json_escape;
use crate::verdict::{AnalysisReport, Verdict};
use estelle_runtime::{ByteReader, ByteWriter, CodecError, RuntimeErrorKind};
use std::fmt;
use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// First 8 bytes of every dump file.
pub const DUMP_MAGIC: [u8; 8] = *b"TANGODMP";

/// Current dump format version. Bump on any change to the byte layout;
/// old readers refuse newer files instead of misreading them.
pub const DUMP_FORMAT_VERSION: u32 = 1;

/// Hot-spot rows captured per dump — enough to see where the time went
/// without embedding the whole profile of a large specification.
pub const HOTSPOT_TOP_K: usize = 16;

/// Fault diagnostics retained per category (source/spill/checkpoint):
/// the first few tell the story; a thousand repeats of "no space left"
/// do not.
const FAULTS_CAP: usize = 8;

const SEC_META: u32 = 1;
const SEC_STATS: u32 = 2;
const SEC_RING: u32 = 3;
const SEC_HOTSPOTS: u32 = 4;
const SEC_PLAN: u32 = 5;

fn section_name(tag: u32) -> &'static str {
    match tag {
        SEC_META => "meta",
        SEC_STATS => "stats",
        SEC_RING => "ring",
        SEC_HOTSPOTS => "hotspots",
        SEC_PLAN => "plan",
        _ => "unknown",
    }
}

/// Why a dump file could not be written or read. Mirrors
/// [`CheckpointError`] variant-for-variant so the two post-crash
/// artifact formats fail the same way.
#[derive(Debug)]
pub enum DumpError {
    Io(std::io::Error),
    /// The file does not start with the dump magic — not a dump at all.
    BadMagic,
    UnsupportedVersion { found: u32, supported: u32 },
    Truncated { context: String },
    ChecksumMismatch { section: &'static str },
    Malformed(String),
}

impl fmt::Display for DumpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DumpError::Io(e) => write!(f, "dump I/O error: {}", e),
            DumpError::BadMagic => f.write_str("not a tango post-mortem dump (bad magic)"),
            DumpError::UnsupportedVersion { found, supported } => write!(
                f,
                "dump format version {} not supported (this build reads up to {})",
                found, supported
            ),
            DumpError::Truncated { context } => {
                write!(f, "dump file truncated while reading {}", context)
            }
            DumpError::ChecksumMismatch { section } => {
                write!(f, "dump checksum mismatch in {} section", section)
            }
            DumpError::Malformed(m) => write!(f, "malformed dump: {}", m),
        }
    }
}

impl std::error::Error for DumpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DumpError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DumpError {
    fn from(e: std::io::Error) -> Self {
        DumpError::Io(e)
    }
}

impl From<CodecError> for DumpError {
    fn from(e: CodecError) -> Self {
        match e {
            CodecError::Truncated { context } => DumpError::Truncated {
                context: context.to_string(),
            },
            CodecError::Malformed(m) => DumpError::Malformed(m),
        }
    }
}

impl From<CheckpointError> for DumpError {
    fn from(e: CheckpointError) -> Self {
        match e {
            CheckpointError::Io(e) => DumpError::Io(e),
            CheckpointError::BadMagic => DumpError::BadMagic,
            CheckpointError::UnsupportedVersion { found, supported } => {
                DumpError::UnsupportedVersion { found, supported }
            }
            CheckpointError::Truncated { context } => DumpError::Truncated { context },
            CheckpointError::ChecksumMismatch { section } => {
                DumpError::ChecksumMismatch { section }
            }
            CheckpointError::Malformed(m) => DumpError::Malformed(m),
        }
    }
}

/// One hot-spot row: a transition's profile counters with its name
/// resolved at capture time (the ring itself stores only indices).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HotspotRow {
    pub trans: u32,
    pub name: String,
    pub fires: u64,
    pub fails: u64,
    pub nanos: u64,
}

/// The flight recorder's state frozen into a dump: lifetime accounting
/// plus the retained tail, oldest record first.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RingCapture {
    pub capacity: u32,
    pub seen: u64,
    pub counts: [u64; KIND_COUNT],
    pub records: Vec<FlightRecord>,
}

/// The armed chaos plan at dump time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlanCapture {
    pub seed: u64,
    pub spec: String,
}

/// A complete in-memory post-mortem dump — what `capture` assembles,
/// `write_to` persists and `read_from` recovers.
#[derive(Clone, Debug)]
pub struct PostMortemDump {
    /// Format version of the file this was read from (or the current
    /// version for a fresh capture).
    pub version: u32,
    /// Search mode (`dfs` or `mdfs`) and specification module name.
    pub mode: String,
    pub spec: String,
    /// The verdict line — why this dump exists.
    pub reason: String,
    /// Gauges at capture: resident and spilled snapshot bytes.
    pub resident_bytes: u64,
    pub spilled_bytes: u64,
    /// Path of the newest autosaved checkpoint, when one exists — the
    /// resume handle this dump points its reader at.
    pub checkpoint_path: Option<String>,
    /// First few fault diagnostics per site (source, spill, checkpoint).
    pub faults: Vec<String>,
    /// Final cumulative counters.
    pub stats: SearchStats,
    pub ring: RingCapture,
    /// Top-K transitions by cumulative fire time.
    pub hotspots: Vec<HotspotRow>,
    /// The armed fault plan, `None` when the run was chaos-free.
    pub plan: Option<PlanCapture>,
}

/// Whether `report` is a dump-worthy outcome: any `Inconclusive`
/// verdict, any fault site that gave up, or a panic isolated on an
/// abandoned branch. Conclusive, fault-free runs produce no dump.
pub fn should_dump(report: &AnalysisReport) -> bool {
    matches!(report.verdict, Verdict::Inconclusive(_))
        || report.stats.total_fault_giveups() > 0
        || report
            .spec_errors
            .iter()
            .any(|e| e.kind == RuntimeErrorKind::Panic)
}

fn capped_faults(report: &AnalysisReport) -> Vec<String> {
    let mut out = Vec::new();
    for (site, list) in [
        ("source", &report.source_faults),
        ("spill", &report.spill_faults),
        ("checkpoint", &report.checkpoint_faults),
    ] {
        for f in list.iter().take(FAULTS_CAP) {
            out.push(format!("{}: {}", site, f));
        }
        if list.len() > FAULTS_CAP {
            out.push(format!(
                "{}: … {} more fault(s) elided",
                site,
                list.len() - FAULTS_CAP
            ));
        }
    }
    out
}

impl PostMortemDump {
    /// Freeze the black box: assemble a dump from the final report, the
    /// telemetry handle (flight recorder, profile, remembered mode/spec
    /// and transition names), the newest checkpoint path and the armed
    /// fault plan. Pure in-memory; pair with [`PostMortemDump::write_to`].
    pub fn capture(
        report: &AnalysisReport,
        tel: &Telemetry,
        checkpoint_path: Option<&Path>,
        plan: Option<&FaultPlan>,
    ) -> PostMortemDump {
        let ring = match tel.recorder() {
            Some(r) => RingCapture {
                capacity: r.capacity() as u32,
                seen: r.seen(),
                counts: *r.counts(),
                records: r.records(),
            },
            None => RingCapture::default(),
        };
        let hotspots = tel
            .profile()
            .map(|p| {
                p.ranked()
                    .into_iter()
                    .take(HOTSPOT_TOP_K)
                    .map(|id| {
                        let e = p.entries()[id];
                        HotspotRow {
                            trans: id as u32,
                            name: tel.transition_name(id).unwrap_or("?").to_string(),
                            fires: e.fires,
                            fails: e.fails,
                            nanos: e.nanos,
                        }
                    })
                    .collect()
            })
            .unwrap_or_default();
        PostMortemDump {
            version: DUMP_FORMAT_VERSION,
            mode: tel.mode().to_string(),
            spec: tel.spec().to_string(),
            reason: report.verdict.to_string(),
            resident_bytes: report.stats.snapshot_bytes as u64,
            spilled_bytes: report.stats.spilled_bytes as u64,
            checkpoint_path: checkpoint_path.map(|p| p.display().to_string()),
            faults: capped_faults(report),
            stats: report.stats.clone(),
            ring,
            hotspots,
            plan: plan.filter(|p| p.is_armed()).map(|p| PlanCapture {
                seed: p.seed,
                spec: p.describe(),
            }),
        }
    }

    /// Serialize and atomically replace `path` (temp + fsync + rename,
    /// like a checkpoint: a crash mid-dump leaves no torn file).
    pub fn write_to(&self, path: &Path) -> Result<(), DumpError> {
        Ok(write_atomic_once(path, &self.encode())?)
    }

    /// Load a dump written by [`PostMortemDump::write_to`], verifying
    /// magic, version, per-section checksums and the whole-file digest.
    pub fn read_from(path: &Path) -> Result<PostMortemDump, DumpError> {
        decode_dump(&fs::read(path)?)
    }

    pub fn encode(&self) -> Vec<u8> {
        let sections = [
            (SEC_META, self.encode_meta()),
            (SEC_STATS, {
                let mut w = ByteWriter::new();
                encode_stats(&mut w, &self.stats);
                w.into_bytes()
            }),
            (SEC_RING, self.encode_ring()),
            (SEC_HOTSPOTS, self.encode_hotspots()),
            (SEC_PLAN, self.encode_plan()),
        ];
        let mut out = Vec::new();
        out.extend_from_slice(&DUMP_MAGIC);
        out.extend_from_slice(&DUMP_FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(sections.len() as u32).to_le_bytes());
        for (tag, payload) in &sections {
            out.extend_from_slice(&tag.to_le_bytes());
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(payload);
            out.extend_from_slice(&crc32(payload).to_le_bytes());
        }
        let digest = crc32(&out);
        out.extend_from_slice(&digest.to_le_bytes());
        out
    }

    fn encode_meta(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_str(&self.mode);
        w.put_str(&self.spec);
        w.put_str(&self.reason);
        w.put_u64(self.resident_bytes);
        w.put_u64(self.spilled_bytes);
        match &self.checkpoint_path {
            None => w.put_bool(false),
            Some(p) => {
                w.put_bool(true);
                w.put_str(p);
            }
        }
        w.put_u32(self.faults.len() as u32);
        for f in &self.faults {
            w.put_str(f);
        }
        w.into_bytes()
    }

    fn encode_ring(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u32(self.ring.capacity);
        w.put_u64(self.ring.seen);
        for c in &self.ring.counts {
            w.put_u64(*c);
        }
        w.put_u32(self.ring.records.len() as u32);
        for r in &self.ring.records {
            r.encode(&mut w);
        }
        w.into_bytes()
    }

    /// The encoded `RING` payload alone — what the determinism test
    /// compares byte-for-byte across same-seed runs.
    pub fn ring_section_bytes(&self) -> Vec<u8> {
        self.encode_ring()
    }

    fn encode_hotspots(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u32(self.hotspots.len() as u32);
        for h in &self.hotspots {
            w.put_u32(h.trans);
            w.put_str(&h.name);
            w.put_u64(h.fires);
            w.put_u64(h.fails);
            w.put_u64(h.nanos);
        }
        w.into_bytes()
    }

    fn encode_plan(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match &self.plan {
            None => w.put_bool(false),
            Some(p) => {
                w.put_bool(true);
                w.put_u64(p.seed);
                w.put_str(&p.spec);
            }
        }
        w.into_bytes()
    }

    /// Render the human-facing triage view (`tango dump-info`).
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "tango post-mortem dump (format v{})", self.version);
        let _ = writeln!(out, "  mode: {}  spec: {}", self.mode, self.spec);
        let _ = writeln!(out, "  reason: {}", self.reason);
        let _ = writeln!(out, "  stats: {}", self.stats);
        let _ = writeln!(
            out,
            "  memory: resident={}B spilled={}B (peaks {}B/{}B)",
            self.resident_bytes,
            self.spilled_bytes,
            self.stats.peak_snapshot_bytes,
            self.stats.peak_spilled_bytes
        );
        let _ = writeln!(
            out,
            "  faults: retries={} giveups={}",
            self.stats.total_fault_retries(),
            self.stats.total_fault_giveups()
        );
        for f in &self.faults {
            let _ = writeln!(out, "    {}", f);
        }
        match &self.checkpoint_path {
            Some(p) => {
                let _ = writeln!(out, "  resume from: {}", p);
            }
            None => {
                let _ = writeln!(out, "  resume from: (no checkpoint recorded)");
            }
        }
        match &self.plan {
            Some(p) => {
                let _ = writeln!(out, "  chaos: seed={} plan={}", p.seed, p.spec);
            }
            None => {
                let _ = writeln!(out, "  chaos: unarmed");
            }
        }
        let _ = writeln!(
            out,
            "  flight recorder: {} record(s) retained of {} seen (capacity {})",
            self.ring.records.len(),
            self.ring.seen,
            self.ring.capacity
        );
        let _ = writeln!(
            out,
            "    lifetime counts: fire={} generate={} restore={} save={} \
             (final TE={} GE={} RE={} SA={})",
            self.ring.counts[super::recorder::KIND_FIRE as usize],
            self.ring.counts[super::recorder::KIND_GENERATE as usize],
            self.ring.counts[super::recorder::KIND_RESTORE as usize],
            self.ring.counts[super::recorder::KIND_SAVE as usize],
            self.stats.transitions_executed,
            self.stats.generates,
            self.stats.restores,
            self.stats.saves
        );
        if !self.hotspots.is_empty() {
            let _ = writeln!(out, "  hot transitions:");
            for (rank, h) in self.hotspots.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "    {:>2}. {:<24} fires={} fails={} total={:.3}ms",
                    rank + 1,
                    h.name,
                    h.fires,
                    h.fails,
                    h.nanos as f64 / 1e6
                );
            }
        }
        let tail = 10.min(self.ring.records.len());
        if tail > 0 {
            let _ = writeln!(out, "  last {} record(s):", tail);
            for r in &self.ring.records[self.ring.records.len() - tail..] {
                let _ = writeln!(
                    out,
                    "    seq={} {} flag={} depth={} trans={} a={} b={}",
                    r.seq,
                    kind_name(r.kind),
                    r.flag,
                    r.depth,
                    r.trans,
                    r.a,
                    r.b
                );
            }
        }
        out
    }

    /// Render the machine-facing view: one `tango-dump` header line then
    /// one line per retained flight record, every line a JSON document
    /// (validated by `bench/json_check --jsonl`).
    pub fn render_jsonl(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"schema\":\"tango-dump\",\"version\":{},\"mode\":\"{}\",\"spec\":\"{}\",\
             \"reason\":\"{}\",\"te\":{},\"ge\":{},\"re\":{},\"sa\":{},\
             \"resident_bytes\":{},\"spilled_bytes\":{},\"retries\":{},\"giveups\":{},\
             \"ring_seen\":{},\"ring_retained\":{},\"ring_capacity\":{}",
            self.version,
            json_escape(&self.mode),
            json_escape(&self.spec),
            json_escape(&self.reason),
            self.stats.transitions_executed,
            self.stats.generates,
            self.stats.restores,
            self.stats.saves,
            self.resident_bytes,
            self.spilled_bytes,
            self.stats.total_fault_retries(),
            self.stats.total_fault_giveups(),
            self.ring.seen,
            self.ring.records.len(),
            self.ring.capacity
        );
        if let Some(p) = &self.checkpoint_path {
            let _ = write!(out, ",\"checkpoint\":\"{}\"", json_escape(p));
        }
        if let Some(p) = &self.plan {
            let _ = write!(
                out,
                ",\"chaos_seed\":{},\"chaos_plan\":\"{}\"",
                p.seed,
                json_escape(&p.spec)
            );
        }
        out.push_str("}\n");
        for h in &self.hotspots {
            let _ = writeln!(
                out,
                "{{\"schema\":\"tango-dump-hotspot\",\"trans\":{},\"name\":\"{}\",\
                 \"fires\":{},\"fails\":{},\"nanos\":{}}}",
                h.trans,
                json_escape(&h.name),
                h.fires,
                h.fails,
                h.nanos
            );
        }
        for r in &self.ring.records {
            let _ = writeln!(
                out,
                "{{\"schema\":\"tango-dump-record\",\"seq\":{},\"kind\":\"{}\",\"flag\":{},\
                 \"depth\":{},\"trans\":{},\"a\":{},\"b\":{}}}",
                r.seq,
                kind_name(r.kind),
                r.flag,
                r.depth,
                r.trans,
                r.a,
                r.b
            );
        }
        out
    }
}

// ------------------------------------------------------------- decoding

/// `(tag, payload)` pairs in file order, checksum-verified.
type Sections<'a> = Vec<(u32, &'a [u8])>;

fn parse_file(bytes: &[u8]) -> Result<(u32, Sections<'_>), DumpError> {
    let truncated = |context: &str| DumpError::Truncated {
        context: context.to_string(),
    };
    if bytes.len() < DUMP_MAGIC.len() {
        return Err(truncated("magic"));
    }
    if bytes[..DUMP_MAGIC.len()] != DUMP_MAGIC {
        return Err(DumpError::BadMagic);
    }
    fn take<'a>(
        bytes: &'a [u8],
        pos: &mut usize,
        n: usize,
        context: &str,
    ) -> Result<&'a [u8], DumpError> {
        if bytes.len() - *pos < n {
            return Err(DumpError::Truncated {
                context: context.to_string(),
            });
        }
        let s = &bytes[*pos..*pos + n];
        *pos += n;
        Ok(s)
    }
    let get_u32 = |s: &[u8]| u32::from_le_bytes(s.try_into().expect("4 bytes"));

    let mut pos = DUMP_MAGIC.len();
    let version = get_u32(take(bytes, &mut pos, 4, "format version")?);
    if version != DUMP_FORMAT_VERSION {
        return Err(DumpError::UnsupportedVersion {
            found: version,
            supported: DUMP_FORMAT_VERSION,
        });
    }
    let nsections = get_u32(take(bytes, &mut pos, 4, "section count")?) as usize;
    let mut sections: Vec<(u32, &[u8], u32)> = Vec::new();
    for _ in 0..nsections {
        let tag = get_u32(take(bytes, &mut pos, 4, "section tag")?);
        let len = u64::from_le_bytes(
            take(bytes, &mut pos, 8, "section length")?
                .try_into()
                .expect("8 bytes"),
        );
        let len = usize::try_from(len).map_err(|_| truncated("section payload"))?;
        let payload = take(bytes, &mut pos, len, "section payload")?;
        let stored = get_u32(take(bytes, &mut pos, 4, "section checksum")?);
        sections.push((tag, payload, stored));
    }
    let digest_at = pos;
    let stored_digest = get_u32(take(bytes, &mut pos, 4, "file digest")?);
    if pos != bytes.len() {
        return Err(DumpError::Malformed(format!(
            "{} trailing byte(s) after file digest",
            bytes.len() - pos
        )));
    }
    for &(tag, payload, stored) in &sections {
        if crc32(payload) != stored {
            return Err(DumpError::ChecksumMismatch {
                section: section_name(tag),
            });
        }
    }
    if crc32(&bytes[..digest_at]) != stored_digest {
        return Err(DumpError::ChecksumMismatch { section: "file" });
    }
    Ok((
        version,
        sections.into_iter().map(|(t, p, _)| (t, p)).collect(),
    ))
}

fn find_section<'a>(sections: &[(u32, &'a [u8])], tag: u32) -> Result<&'a [u8], DumpError> {
    sections
        .iter()
        .find(|(t, _)| *t == tag)
        .map(|(_, p)| *p)
        .ok_or_else(|| DumpError::Malformed(format!("missing {} section", section_name(tag))))
}

fn expect_done(r: &ByteReader<'_>, tag: u32) -> Result<(), DumpError> {
    if r.is_done() {
        Ok(())
    } else {
        Err(DumpError::Malformed(format!(
            "{} trailing byte(s) in {} section",
            r.remaining(),
            section_name(tag)
        )))
    }
}

fn decode_dump(bytes: &[u8]) -> Result<PostMortemDump, DumpError> {
    let (version, sections) = parse_file(bytes)?;

    let mut r = ByteReader::new(find_section(&sections, SEC_META)?);
    let mode = r.get_str("dump mode")?;
    let spec = r.get_str("dump spec")?;
    let reason = r.get_str("dump reason")?;
    let resident_bytes = r.get_u64("resident bytes")?;
    let spilled_bytes = r.get_u64("spilled bytes")?;
    let checkpoint_path = if r.get_bool("checkpoint-path tag")? {
        Some(r.get_str("checkpoint path")?)
    } else {
        None
    };
    let nfaults = r.get_u32("fault count")? as usize;
    let mut faults = Vec::with_capacity(nfaults.min(64));
    for _ in 0..nfaults {
        faults.push(r.get_str("fault diagnostic")?);
    }
    expect_done(&r, SEC_META)?;

    let mut r = ByteReader::new(find_section(&sections, SEC_STATS)?);
    let stats = decode_stats(&mut r)?;
    expect_done(&r, SEC_STATS)?;

    let mut r = ByteReader::new(find_section(&sections, SEC_RING)?);
    let capacity = r.get_u32("ring capacity")?;
    let seen = r.get_u64("ring seen")?;
    let mut counts = [0u64; KIND_COUNT];
    for c in &mut counts {
        *c = r.get_u64("ring kind count")?;
    }
    let nrecords = r.get_u32("ring record count")? as usize;
    if nrecords > capacity as usize {
        return Err(DumpError::Malformed(format!(
            "ring holds {} records over its capacity {}",
            nrecords, capacity
        )));
    }
    let mut records = Vec::with_capacity(nrecords.min(65_536));
    for _ in 0..nrecords {
        records.push(FlightRecord::decode(&mut r)?);
    }
    expect_done(&r, SEC_RING)?;

    let mut r = ByteReader::new(find_section(&sections, SEC_HOTSPOTS)?);
    let nhot = r.get_u32("hotspot count")? as usize;
    let mut hotspots = Vec::with_capacity(nhot.min(1024));
    for _ in 0..nhot {
        hotspots.push(HotspotRow {
            trans: r.get_u32("hotspot transition")?,
            name: r.get_str("hotspot name")?,
            fires: r.get_u64("hotspot fires")?,
            fails: r.get_u64("hotspot fails")?,
            nanos: r.get_u64("hotspot nanos")?,
        });
    }
    expect_done(&r, SEC_HOTSPOTS)?;

    let mut r = ByteReader::new(find_section(&sections, SEC_PLAN)?);
    let plan = if r.get_bool("plan tag")? {
        Some(PlanCapture {
            seed: r.get_u64("plan seed")?,
            spec: r.get_str("plan spec")?,
        })
    } else {
        None
    };
    expect_done(&r, SEC_PLAN)?;

    Ok(PostMortemDump {
        version,
        mode,
        spec,
        reason,
        resident_bytes,
        spilled_bytes,
        checkpoint_path,
        faults,
        stats,
        ring: RingCapture {
            capacity,
            seen,
            counts,
            records,
        },
        hotspots,
        plan,
    })
}

/// Map a runtime-error kind to the recorder's error-branch flag code
/// (shared with the checkpoint codec's on-disk mapping).
pub(crate) fn error_kind_code(kind: RuntimeErrorKind) -> u8 {
    kind_to_u8(kind)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verdict::InconclusiveReason;

    fn sample_dump() -> PostMortemDump {
        PostMortemDump {
            version: DUMP_FORMAT_VERSION,
            mode: "dfs".to_string(),
            spec: "tp0".to_string(),
            reason: "inconclusive (TransitionLimit)".to_string(),
            resident_bytes: 4096,
            spilled_bytes: 0,
            checkpoint_path: Some("out/tp0.ckpt".to_string()),
            faults: vec!["spill: torn tail".to_string()],
            stats: SearchStats {
                transitions_executed: 100,
                generates: 60,
                restores: 40,
                saves: 40,
                ..Default::default()
            },
            ring: RingCapture {
                capacity: 4,
                seen: 9,
                counts: {
                    let mut c = [0u64; KIND_COUNT];
                    c[super::super::recorder::KIND_FIRE as usize] = 9;
                    c
                },
                records: vec![
                    FlightRecord {
                        seq: 7,
                        kind: super::super::recorder::KIND_FIRE,
                        flag: 1,
                        depth: 3,
                        trans: 2,
                        a: 0,
                        b: 0,
                    };
                    4
                ],
            },
            hotspots: vec![HotspotRow {
                trans: 2,
                name: "T3".to_string(),
                fires: 9,
                fails: 1,
                nanos: 12_345,
            }],
            plan: Some(PlanCapture {
                seed: 42,
                spec: "seed=42,spill.io_error=0.5".to_string(),
            }),
        }
    }

    #[test]
    fn dump_round_trips_byte_exact() {
        let d = sample_dump();
        let bytes = d.encode();
        let back = decode_dump(&bytes).expect("decodes");
        assert_eq!(back.mode, d.mode);
        assert_eq!(back.reason, d.reason);
        assert_eq!(back.checkpoint_path, d.checkpoint_path);
        assert_eq!(back.faults, d.faults);
        assert_eq!(back.stats.transitions_executed, 100);
        assert_eq!(back.ring, d.ring);
        assert_eq!(back.hotspots, d.hotspots);
        assert_eq!(back.plan, d.plan);
        assert_eq!(back.encode(), bytes, "re-encoding is byte-identical");
    }

    #[test]
    fn corruption_is_typed_never_a_panic() {
        let good = sample_dump().encode();

        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xFF;
        assert!(matches!(decode_dump(&bad_magic), Err(DumpError::BadMagic)));

        let mut future = good.clone();
        future[8] = 0xEE;
        assert!(matches!(
            decode_dump(&future),
            Err(DumpError::UnsupportedVersion { .. })
        ));

        assert!(matches!(
            decode_dump(&good[..good.len() / 2]),
            Err(DumpError::Truncated { .. })
        ));

        // Flip a byte inside the META payload (header 16B + tag 4B +
        // len 8B, then the mode string's length prefix and bytes): the
        // per-section CRC must name the section.
        let mut flipped = good.clone();
        flipped[32] ^= 0x01;
        assert!(matches!(
            decode_dump(&flipped),
            Err(DumpError::ChecksumMismatch { section: "meta" })
        ));

        let mut trailing = good.clone();
        trailing.push(0);
        assert!(matches!(
            decode_dump(&trailing),
            Err(DumpError::Malformed(_))
        ));
    }

    #[test]
    fn should_dump_covers_every_non_completed_outcome() {
        use estelle_runtime::RuntimeError;
        for reason in [
            InconclusiveReason::TransitionLimit,
            InconclusiveReason::DepthLimit,
            InconclusiveReason::PgNodeLimit,
            InconclusiveReason::TimeLimit,
            InconclusiveReason::MemoryLimit,
            InconclusiveReason::SpillFailure,
        ] {
            let r = AnalysisReport::new(Verdict::Inconclusive(reason), SearchStats::default());
            assert!(should_dump(&r), "{:?} must dump", reason);
        }
        let clean = AnalysisReport::new(Verdict::Valid, SearchStats::default());
        assert!(!should_dump(&clean), "clean completion must not dump");

        let mut giveup = AnalysisReport::new(Verdict::Valid, SearchStats::default());
        giveup.stats.checkpoint_giveups = 1;
        assert!(should_dump(&giveup), "a chaos giveup dumps even when valid");

        let mut panicked = AnalysisReport::new(Verdict::Invalid, SearchStats::default());
        panicked.spec_errors.push(RuntimeError {
            kind: RuntimeErrorKind::Panic,
            message: "isolated".to_string(),
            span: None,
        });
        assert!(should_dump(&panicked), "an isolated panic dumps");
        panicked.spec_errors[0].kind = RuntimeErrorKind::DivisionByZero;
        assert!(
            !should_dump(&panicked),
            "ordinary spec errors are part of a conclusive verdict"
        );
    }

    #[test]
    fn fault_lists_are_capped_in_the_dump() {
        let mut r = AnalysisReport::new(
            Verdict::Inconclusive(InconclusiveReason::SpillFailure),
            SearchStats::default(),
        );
        r.spill_faults = (0..20).map(|i| format!("fault {}", i)).collect();
        let faults = capped_faults(&r);
        assert_eq!(faults.len(), FAULTS_CAP + 1);
        assert!(faults.last().unwrap().contains("12 more fault(s) elided"));
    }

    #[test]
    fn jsonl_rendering_is_line_per_document(
    ) {
        let text = sample_dump().render_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1 + 1 + 4, "header + hotspot + 4 records");
        assert!(lines[0].starts_with("{\"schema\":\"tango-dump\""));
        assert!(lines[0].contains("\"chaos_seed\":42"));
        assert!(lines[1].starts_with("{\"schema\":\"tango-dump-hotspot\""));
        assert!(lines[2].contains("\"kind\":\"fire\""));
    }

    #[test]
    fn human_rendering_names_the_resume_checkpoint() {
        let text = sample_dump().render_human();
        assert!(text.contains("resume from: out/tp0.ckpt"), "{}", text);
        assert!(text.contains("reason: inconclusive (TransitionLimit)"));
        assert!(text.contains("chaos: seed=42"));
    }
}
