//! Live progress heartbeats for long-running searches.
//!
//! A multi-hour LAPD analysis used to be a silent process; the reporter
//! prints a periodic heartbeat with the paper's counters, the current
//! search rate and an ETA against the transition cap, either
//! human-readable (`progress: TE=… rate=…/s eta=…`) or as JSONL for
//! machines driving the analyzer (`--progress jsonl`). A final
//! heartbeat is always emitted when the search ends, so even a short
//! run leaves one line — CI greps for it.

use crate::stats::SearchStats;
use std::collections::VecDeque;
use std::io::Write;
use std::time::{Duration, Instant};

/// Beat samples retained for the sliding-window rate. Eight beats at
/// the default interval cover the last ~minute of the run; a slow spill
/// phase ages out of the window instead of dragging the rate (and the
/// ETA) down for the rest of a multi-hour analysis.
const RATE_WINDOW_BEATS: usize = 8;

/// Rate over the sliding window: TE gained between the oldest retained
/// beat sample `(elapsed_secs, te)` and the current `(t, te)` point,
/// divided by their time span. `None` when there is no prior sample,
/// the span is zero, or the counter moved backwards (callers fall back
/// to the lifetime average).
fn window_rate(window: &VecDeque<(f64, u64)>, t: f64, te: u64) -> Option<f64> {
    let &(t0, te0) = window.front()?;
    if t > t0 && te >= te0 {
        Some((te - te0) as f64 / (t - t0))
    } else {
        None
    }
}

/// Output format of a heartbeat line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProgressMode {
    /// `progress: TE=… GE=… RE=… SA=… depth=… rate=…/s eta=…s`
    Human,
    /// One JSON object per heartbeat:
    /// `{"ev":"heartbeat","te":…,"ge":…,"re":…,"sa":…,"depth":…,"rate":…,"eta_s":…}`
    Jsonl,
}

/// Periodic heartbeat printer. Owned by [`super::Telemetry`]; the
/// searches call [`Telemetry::tick`](super::Telemetry::tick) once per
/// loop iteration and the reporter rate-limits itself.
pub struct ProgressReporter {
    mode: ProgressMode,
    every: Duration,
    out: Box<dyn Write + Send>,
    started: Instant,
    last_beat: Instant,
    /// The last [`RATE_WINDOW_BEATS`] beat samples, oldest first.
    window: VecDeque<(f64, u64)>,
    /// Search workers feeding the counters. Multi-worker runs aggregate
    /// all workers into one TE stream before ticking, so the window
    /// still sees a single producer; the count is surfaced on the
    /// heartbeat (and `> 1` arms the non-monotone sample purge — a
    /// witness-aborted burst rolls TE back).
    workers: usize,
}

impl ProgressReporter {
    /// A reporter writing to `out` every `every` (heartbeats are also
    /// forced on search end regardless of the interval).
    pub fn new(mode: ProgressMode, every: Duration, out: Box<dyn Write + Send>) -> Self {
        let now = Instant::now();
        ProgressReporter {
            mode,
            every,
            out,
            started: now,
            last_beat: now,
            window: VecDeque::with_capacity(RATE_WINDOW_BEATS + 1),
            workers: 1,
        }
    }

    /// Record the run's worker count (surfaced on heartbeats when > 1).
    pub(crate) fn set_workers(&mut self, n: usize) {
        self.workers = n.max(1);
    }

    /// A reporter on standard error — where the CLI points `--progress`
    /// so heartbeats never corrupt the report on stdout.
    pub fn stderr(mode: ProgressMode, every: Duration) -> Self {
        ProgressReporter::new(mode, every, Box::new(std::io::stderr()))
    }

    /// Called on every search step; prints when the interval elapsed.
    pub(crate) fn tick(&mut self, stats: &SearchStats, max_transitions: u64) {
        let now = Instant::now();
        if now.duration_since(self.last_beat) < self.every {
            return;
        }
        self.beat(now, stats, max_transitions, false);
    }

    /// Forced final heartbeat at search end.
    pub(crate) fn finish(&mut self, stats: &SearchStats, max_transitions: u64) {
        self.beat(Instant::now(), stats, max_transitions, true);
    }

    fn beat(&mut self, now: Instant, stats: &SearchStats, max_transitions: u64, done: bool) {
        let t = now.duration_since(self.started).as_secs_f64();
        let te = stats.transitions_executed;
        // Sliding-window rate when the window is meaningful, lifetime
        // average otherwise (first beat, or a forced final beat in the
        // same instant as a periodic one).
        let rate = window_rate(&self.window, t, te).unwrap_or_else(|| {
            if t > 0.0 {
                te as f64 / t
            } else {
                0.0
            }
        });
        let eta_s = if done || rate <= 0.0 || te >= max_transitions {
            0.0
        } else {
            (max_transitions - te) as f64 / rate
        };
        self.last_beat = now;
        self.push_sample(t, te);
        // Spill-tier fields appear only once the tier did something, so
        // spill-off heartbeats keep their exact historical shape (and
        // the pinned line prefixes).
        let spilling =
            stats.spill_writes + stats.spill_reads + stats.spill_evictions > 0;
        // Same gating for fault-retry totals: a clean run's heartbeat is
        // byte-identical with the fault hooks compiled in.
        let fault_retries = stats.total_fault_retries();
        // And for the worker count: single-worker heartbeats keep their
        // exact historical shape.
        let multi = self.workers > 1;
        let line = match self.mode {
            ProgressMode::Human => {
                let spill = if spilling {
                    format!(
                        " spilled={}B evict={}",
                        stats.spilled_bytes, stats.spill_evictions
                    )
                } else {
                    String::new()
                };
                let retries = if fault_retries > 0 {
                    format!(" retries={}", fault_retries)
                } else {
                    String::new()
                };
                let workers = if multi {
                    format!(" workers={}", self.workers)
                } else {
                    String::new()
                };
                format!(
                    "progress: TE={} GE={} RE={} SA={} depth={}{} rate={:.0}/s eta={:.1}s{}{}{}\n",
                    te,
                    stats.generates,
                    stats.restores,
                    stats.saves,
                    stats.max_depth,
                    workers,
                    rate,
                    eta_s,
                    spill,
                    retries,
                    if done { " (done)" } else { "" }
                )
            }
            ProgressMode::Jsonl => {
                let spill = if spilling {
                    format!(
                        "\"spilled_bytes\":{},\"spill_evictions\":{},",
                        stats.spilled_bytes, stats.spill_evictions
                    )
                } else {
                    String::new()
                };
                let retries = if fault_retries > 0 {
                    format!("\"retries\":{},", fault_retries)
                } else {
                    String::new()
                };
                let workers = if multi {
                    format!("\"workers\":{},", self.workers)
                } else {
                    String::new()
                };
                format!(
                    "{{\"ev\":\"heartbeat\",\"te\":{},\"ge\":{},\"re\":{},\"sa\":{},\
                     \"depth\":{},{}\"rate\":{:.1},\"eta_s\":{:.1},{}{}\"done\":{}}}\n",
                    te,
                    stats.generates,
                    stats.restores,
                    stats.saves,
                    stats.max_depth,
                    workers,
                    rate,
                    eta_s,
                    spill,
                    retries,
                    done
                )
            }
        };
        let _ = self.out.write_all(line.as_bytes());
        let _ = self.out.flush();
    }

    /// Append one beat sample and evict beyond the window capacity.
    /// Samples ahead of the current counter are purged first: a
    /// multi-worker witness abort rolls the aggregated TE back to the
    /// burst start, and keeping the inflated samples would wedge the
    /// window rate on its fallback for up to a full window span.
    fn push_sample(&mut self, t: f64, te: u64) {
        while self.window.back().is_some_and(|&(_, te0)| te0 > te) {
            self.window.pop_back();
        }
        self.window.push_back((t, te));
        while self.window.len() > RATE_WINDOW_BEATS {
            self.window.pop_front();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    /// A `Write` handle the test can read back out of the reporter.
    #[derive(Clone, Default)]
    struct Shared(Arc<Mutex<Vec<u8>>>);
    impl Write for Shared {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn stats(te: u64) -> SearchStats {
        SearchStats {
            transitions_executed: te,
            generates: te / 2,
            max_depth: 5,
            ..Default::default()
        }
    }

    #[test]
    fn interval_gates_periodic_beats_but_not_finish() {
        let buf = Shared::default();
        let mut p = ProgressReporter::new(
            ProgressMode::Human,
            Duration::from_secs(3600),
            Box::new(buf.clone()),
        );
        for te in 0..50 {
            p.tick(&stats(te), 1000);
        }
        assert!(buf.0.lock().unwrap().is_empty(), "interval not elapsed");
        p.finish(&stats(50), 1000);
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert!(text.contains("progress: TE=50"), "{}", text);
        assert!(text.contains("(done)"));
    }

    #[test]
    fn jsonl_mode_emits_machine_readable_lines() {
        let buf = Shared::default();
        let mut p = ProgressReporter::new(
            ProgressMode::Jsonl,
            Duration::ZERO,
            Box::new(buf.clone()),
        );
        p.tick(&stats(10), 100);
        p.finish(&stats(20), 100);
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"ev\":\"heartbeat\",\"te\":10,"));
        assert!(lines[1].contains("\"done\":true"));
    }

    #[test]
    fn spill_fields_appear_only_under_spill_activity() {
        let buf = Shared::default();
        let mut p = ProgressReporter::new(
            ProgressMode::Human,
            Duration::ZERO,
            Box::new(buf.clone()),
        );
        let mut s = stats(10);
        p.tick(&s, 100);
        s.spill_writes = 4;
        s.spill_evictions = 4;
        s.spilled_bytes = 4096;
        p.finish(&s, 100);
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(!lines[0].contains("spilled="), "{}", lines[0]);
        assert!(lines[1].contains(" spilled=4096B evict=4 (done)"), "{}", lines[1]);

        // JSONL keeps its pinned prefix and inserts before "done".
        let buf = Shared::default();
        let mut p = ProgressReporter::new(
            ProgressMode::Jsonl,
            Duration::ZERO,
            Box::new(buf.clone()),
        );
        p.finish(&s, 100);
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert!(text.starts_with("{\"ev\":\"heartbeat\",\"te\":10,"), "{}", text);
        assert!(
            text.contains("\"spilled_bytes\":4096,\"spill_evictions\":4,\"done\":true"),
            "{}",
            text
        );
    }

    #[test]
    fn retry_field_appears_only_under_fault_activity() {
        let buf = Shared::default();
        let mut p = ProgressReporter::new(
            ProgressMode::Human,
            Duration::ZERO,
            Box::new(buf.clone()),
        );
        let mut s = stats(10);
        p.tick(&s, 100);
        s.source_retries = 2;
        s.spill_retries = 1;
        s.checkpoint_retries = 3;
        p.finish(&s, 100);
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(!lines[0].contains("retries="), "{}", lines[0]);
        assert!(lines[1].contains(" retries=6 (done)"), "{}", lines[1]);

        let buf = Shared::default();
        let mut p = ProgressReporter::new(
            ProgressMode::Jsonl,
            Duration::ZERO,
            Box::new(buf.clone()),
        );
        p.finish(&s, 100);
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert!(text.contains("\"retries\":6,\"done\":true"), "{}", text);
    }

    #[test]
    fn window_rate_follows_the_recent_phase_after_eviction() {
        let buf = Shared::default();
        let mut p = ProgressReporter::new(
            ProgressMode::Human,
            Duration::from_secs(3600),
            Box::new(buf.clone()),
        );
        // A slow phase: one TE every 10 seconds for 8 beats …
        for i in 0..8u64 {
            p.push_sample(i as f64 * 10.0, i);
        }
        // … then a fast phase of 100 TE/s. Eight fast beats evict every
        // slow sample (eviction is what distinguishes the window from a
        // cumulative average).
        for j in 0..8u64 {
            p.push_sample(80.0 + j as f64, 7 + (j + 1) * 100);
        }
        assert_eq!(p.window.len(), 8, "window is capped");
        assert_eq!(
            *p.window.front().unwrap(),
            (80.0, 107),
            "slow-phase samples must have aged out"
        );
        let rate = window_rate(&p.window, 88.0, 907).unwrap();
        assert!(
            (rate - 100.0).abs() < 1e-9,
            "window rate must be the fast phase's 100/s, not the \
             cumulative ~10/s; got {rate}"
        );
    }

    #[test]
    fn window_rate_falls_back_when_the_window_is_unusable() {
        let empty = VecDeque::new();
        assert!(window_rate(&empty, 5.0, 100).is_none(), "no prior sample");
        let mut w = VecDeque::new();
        w.push_back((5.0, 100));
        assert!(window_rate(&w, 5.0, 200).is_none(), "zero time span");
        assert!(
            window_rate(&w, 6.0, 50).is_none(),
            "TE moved backwards (resumed handle)"
        );
        assert_eq!(window_rate(&w, 7.0, 300), Some(100.0));
    }

    #[test]
    fn workers_field_appears_only_on_multi_worker_runs() {
        let buf = Shared::default();
        let mut p = ProgressReporter::new(
            ProgressMode::Human,
            Duration::ZERO,
            Box::new(buf.clone()),
        );
        p.tick(&stats(10), 100);
        p.set_workers(4);
        p.finish(&stats(20), 100);
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(!lines[0].contains("workers="), "{}", lines[0]);
        assert!(lines[1].contains(" depth=5 workers=4 rate="), "{}", lines[1]);

        let buf = Shared::default();
        let mut p = ProgressReporter::new(
            ProgressMode::Jsonl,
            Duration::ZERO,
            Box::new(buf.clone()),
        );
        p.set_workers(4);
        p.finish(&stats(20), 100);
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert!(text.contains("\"depth\":5,\"workers\":4,\"rate\":"), "{}", text);
    }

    #[test]
    fn window_recovers_after_a_multi_worker_rollback() {
        let buf = Shared::default();
        let mut p = ProgressReporter::new(
            ProgressMode::Human,
            Duration::from_secs(3600),
            Box::new(buf.clone()),
        );
        // Aggregated TE climbs, then a witness-aborted burst rolls it
        // back to the burst-start value …
        for i in 0..6u64 {
            p.push_sample(i as f64, i * 100);
        }
        p.push_sample(6.0, 250); // rollback: burst deltas discarded
        // … and the inflated samples must be gone so the very next beat
        // measures the replay's real rate instead of wedging on the
        // lifetime-average fallback.
        assert!(
            p.window.iter().all(|&(_, te)| te <= 250),
            "samples ahead of the rolled-back counter must be purged"
        );
        let rate = window_rate(&p.window, 7.0, 300).unwrap();
        assert!(rate > 0.0, "rate must be measurable right after rollback");
    }

    #[test]
    fn eta_counts_down_toward_the_cap() {
        let buf = Shared::default();
        let mut p = ProgressReporter::new(
            ProgressMode::Jsonl,
            Duration::ZERO,
            Box::new(buf.clone()),
        );
        std::thread::sleep(Duration::from_millis(5));
        p.tick(&stats(500), 100_000_000);
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        // 500 TE over ~5ms against a distant cap leaves a clearly
        // positive ETA at one-decimal rendering.
        assert!(text.contains("\"eta_s\":"), "{}", text);
        assert!(!text.contains("\"eta_s\":0.0"), "{}", text);
    }
}
