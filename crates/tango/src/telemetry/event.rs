//! The structured search-event stream: schema and JSONL rendering.
//!
//! Every observable step of a search — generate, fire, save, restore,
//! prune, park, checkpoint, verdict — is one event. The stream is the
//! complete, replayable story of how a verdict was reached (after
//! Ducassé's "rigorous tracer" criterion: the trace is specified, not
//! ad hoc), and it is versioned like the durable checkpoint format so
//! downstream analyzers can evolve independently of the searches
//! (DESIGN §6.8 holds the schema table).
//!
//! Rendering is deliberately integer-only and key-ordered: the same
//! search produces a byte-identical stream on every run (pinned by
//! `tests/telemetry.rs`), so streams can be diffed, content-addressed
//! and replayed. Wall-clock data never enters the stream; timing lives
//! in the metrics registry and the progress heartbeats instead.

use std::fmt::Write as _;

/// Bumped on any change to event kinds, field names or field order.
/// Consumers must refuse streams whose `meta` line names a newer version.
pub const TRACE_SCHEMA_VERSION: u32 = 1;

/// Why a search path was cut before exhausting its children.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PruneKind {
    /// The (state, cursor) pair was already visited (`--state-hashing`).
    Hash,
    /// The consecutive-barren-steps bound fired.
    Barren,
}

impl PruneKind {
    fn label(self) -> &'static str {
        match self {
            PruneKind::Hash => "hash",
            PruneKind::Barren => "barren",
        }
    }
}

/// One structured search event. Borrowed fields keep emission
/// allocation-free on the hot path; sinks render or copy as needed.
#[derive(Clone, Debug)]
pub enum SearchEvent<'a> {
    /// First line of every stream: schema identification plus the search
    /// mode (`dfs` or `mdfs`) and the specification module name.
    Meta { mode: &'a str, spec: &'a str },
    /// One fireable-list computation (GE). `fanout` is the candidate
    /// count offered to the search (post-filter for MDFS re-generates);
    /// `incomplete` marks a PG transition list (§3.1.1).
    Generate {
        depth: usize,
        fanout: usize,
        incomplete: bool,
    },
    /// One *Update* attempt (TE). `observable` is the when-clause
    /// `ip.interaction` driving the transition, empty for spontaneous
    /// ones; `fired` is whether the transition completed with all
    /// outputs matched.
    Fire {
        depth: usize,
        trans: usize,
        name: &'a str,
        observable: Option<(&'a str, &'a str)>,
        fired: bool,
    },
    /// One *Save* (SA) with its byte accounting: `bytes` is what this
    /// save charged against the memory budget (zero-ish when interned),
    /// `resident` the deduplicated pool total after the save.
    Save {
        depth: usize,
        bytes: usize,
        interned: bool,
        resident: usize,
    },
    /// One *Restore* (RE): the search backtracked (DFS) or switched to
    /// a saved node (MDFS).
    Restore { depth: usize },
    /// A path cut by an extension bound rather than by search failure.
    Prune { depth: usize, kind: PruneKind },
    /// MDFS only: a node parked on the PG-list to be revived when more
    /// trace data arrives.
    Park { depth: usize, pg_nodes: u64 },
    /// A durable checkpoint was written (CLI autosave or limit stop).
    Checkpoint { te: u64, path: &'a str },
    /// Terminal line of one search: the verdict plus the paper's
    /// counters, letting a consumer cross-check the stream against the
    /// final `SearchStats` (TE == fire events, GE == generate events,
    /// RE == restore events, SA == save events).
    Verdict {
        verdict: &'a str,
        te: u64,
        ge: u64,
        re: u64,
        sa: u64,
    },
}

/// Escape a string for embedding in a JSON document.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl SearchEvent<'_> {
    /// The event's kind tag as it appears in the `ev` field.
    pub fn kind(&self) -> &'static str {
        match self {
            SearchEvent::Meta { .. } => "meta",
            SearchEvent::Generate { .. } => "generate",
            SearchEvent::Fire { .. } => "fire",
            SearchEvent::Save { .. } => "save",
            SearchEvent::Restore { .. } => "restore",
            SearchEvent::Prune { .. } => "prune",
            SearchEvent::Park { .. } => "park",
            SearchEvent::Checkpoint { .. } => "checkpoint",
            SearchEvent::Verdict { .. } => "verdict",
        }
    }

    /// Render one JSONL line (no trailing newline) with the merge-order
    /// sequence number and worker id every event carries. Key order is
    /// fixed; output is deterministic for a deterministic search.
    pub fn render(&self, seq: u64, worker: u16, out: &mut String) {
        let _ = write!(out, "{{\"seq\":{},\"w\":{},\"ev\":\"{}\"", seq, worker, self.kind());
        match self {
            SearchEvent::Meta { mode, spec } => {
                let _ = write!(
                    out,
                    ",\"schema\":\"tango-trace\",\"version\":{},\"mode\":\"{}\",\"spec\":\"{}\"",
                    TRACE_SCHEMA_VERSION,
                    json_escape(mode),
                    json_escape(spec)
                );
            }
            SearchEvent::Generate {
                depth,
                fanout,
                incomplete,
            } => {
                let _ = write!(
                    out,
                    ",\"depth\":{},\"fanout\":{},\"incomplete\":{}",
                    depth, fanout, incomplete
                );
            }
            SearchEvent::Fire {
                depth,
                trans,
                name,
                observable,
                fired,
            } => {
                let _ = write!(
                    out,
                    ",\"depth\":{},\"trans\":{},\"name\":\"{}\"",
                    depth,
                    trans,
                    json_escape(name)
                );
                if let Some((ip, interaction)) = observable {
                    let _ = write!(
                        out,
                        ",\"observable\":\"{}.{}\"",
                        json_escape(ip),
                        json_escape(interaction)
                    );
                }
                let _ = write!(out, ",\"fired\":{}", fired);
            }
            SearchEvent::Save {
                depth,
                bytes,
                interned,
                resident,
            } => {
                let _ = write!(
                    out,
                    ",\"depth\":{},\"bytes\":{},\"interned\":{},\"resident\":{}",
                    depth, bytes, interned, resident
                );
            }
            SearchEvent::Restore { depth } => {
                let _ = write!(out, ",\"depth\":{}", depth);
            }
            SearchEvent::Prune { depth, kind } => {
                let _ = write!(out, ",\"depth\":{},\"kind\":\"{}\"", depth, kind.label());
            }
            SearchEvent::Park { depth, pg_nodes } => {
                let _ = write!(out, ",\"depth\":{},\"pg_nodes\":{}", depth, pg_nodes);
            }
            SearchEvent::Checkpoint { te, path } => {
                let _ = write!(out, ",\"te\":{},\"path\":\"{}\"", te, json_escape(path));
            }
            SearchEvent::Verdict {
                verdict,
                te,
                ge,
                re,
                sa,
            } => {
                let _ = write!(
                    out,
                    ",\"verdict\":\"{}\",\"te\":{},\"ge\":{},\"re\":{},\"sa\":{}",
                    json_escape(verdict),
                    te,
                    ge,
                    re,
                    sa
                );
            }
        }
        out.push('}');
    }

    /// Convenience: render to an owned line.
    pub fn to_jsonl(&self, seq: u64, worker: u16) -> String {
        let mut s = String::with_capacity(96);
        self.render(seq, worker, &mut s);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendering_is_stable_and_key_ordered() {
        let ev = SearchEvent::Fire {
            depth: 3,
            trans: 7,
            name: "t10",
            observable: Some(("U", "tconreq")),
            fired: true,
        };
        assert_eq!(
            ev.to_jsonl(12, 0),
            "{\"seq\":12,\"w\":0,\"ev\":\"fire\",\"depth\":3,\"trans\":7,\
             \"name\":\"t10\",\"observable\":\"U.tconreq\",\"fired\":true}"
        );
    }

    #[test]
    fn meta_carries_schema_version() {
        let line = SearchEvent::Meta {
            mode: "dfs",
            spec: "tp0",
        }
        .to_jsonl(0, 0);
        assert!(line.contains("\"schema\":\"tango-trace\""));
        assert!(line.contains(&format!("\"version\":{}", TRACE_SCHEMA_VERSION)));
    }

    #[test]
    fn strings_are_escaped() {
        let line = SearchEvent::Checkpoint {
            te: 5,
            path: "a\"b\\c\n",
        }
        .to_jsonl(1, 0);
        assert!(line.contains("a\\\"b\\\\c\\n"));
        assert_eq!(json_escape("tab\there"), "tab\\there");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn spontaneous_fire_omits_observable() {
        let line = SearchEvent::Fire {
            depth: 0,
            trans: 0,
            name: "Init",
            observable: None,
            fired: false,
        }
        .to_jsonl(0, 0);
        assert!(!line.contains("observable"));
        assert!(line.contains("\"fired\":false"));
    }
}
