//! Telemetry layer: structured search-event tracing, metrics, live
//! progress and per-transition profiling.
//!
//! Four cooperating facilities, all **off by default and zero-cost when
//! off** (the searches pay a handful of branch checks per step, nothing
//! else — no clock reads, no allocation, no formatting):
//!
//! * **Event stream** ([`event`], [`sink`]) — every Generate / Fire /
//!   Save / Restore / Prune / Park / Checkpoint / Verdict step as one
//!   versioned JSONL line through a pluggable [`EventSink`]. The stream
//!   is complete and deterministic: for a fixed trace and options the
//!   bytes are identical across runs, and the final [`SearchStats`]
//!   counters equal the per-kind event counts (TE = fire events, GE =
//!   generate, RE = restore, SA = save) — `tests/telemetry.rs` pins
//!   both for DFS and MDFS.
//! * **Metrics registry** ([`metrics`]) — counters, gauges and
//!   fixed-bucket histograms (fanout, depth, per-generate latency,
//!   snapshot-bytes timeline) exported as one JSON document.
//! * **Progress reporter** ([`progress`]) — periodic heartbeat with
//!   rate and ETA against the transition cap, human or JSONL.
//! * **Transition profile** ([`profile`]) — per-transition fire/fail
//!   counts and cumulative fire time; renders a sorted hot-spot table
//!   and the Graphviz heat overlay.
//!
//! One [`Telemetry`] handle bundles all four and is threaded through
//! [`crate::TraceAnalyzer`]'s `*_with` methods into both searches. It
//! stamps every event with a monotonically increasing sequence number
//! and a worker id, so multi-worker streams stay merge-ordered; it
//! survives stop/resume rounds, so a CLI autosave run produces one
//! continuous stream.

pub mod event;
pub mod metrics;
pub mod profile;
pub mod progress;
pub mod sink;

pub use event::{PruneKind, SearchEvent, TRACE_SCHEMA_VERSION};
pub use metrics::{Histogram, MetricsRegistry, METRICS_SCHEMA_VERSION};
pub use profile::{PgoError, PgoProfile, PgoRow, TransitionProfile, TransitionStats};
pub use progress::{ProgressMode, ProgressReporter};
pub use sink::{EventSink, JsonlSink, RingBufferSink};

use crate::stats::SearchStats;
use crate::verdict::Verdict;
use std::time::Instant;

/// The per-analysis telemetry handle. `Telemetry::off()` (also
/// `Default`) disables everything; builders switch on the individual
/// facilities. Pass it to the `*_with` analyzer entry points.
#[derive(Default)]
pub struct Telemetry {
    sink: Option<Box<dyn EventSink>>,
    metrics: Option<MetricsRegistry>,
    progress: Option<ProgressReporter>,
    profile: Option<TransitionProfile>,
    /// Merge-order sequence number of the next event.
    seq: u64,
    /// Worker id stamped on every event (MDFS workers; 0 for DFS).
    worker: u16,
    /// Cached: any of sink/metrics/profile is on (progress is checked
    /// separately — it ticks even when nothing else is enabled).
    active: bool,
    /// Cached: fire/generate steps should be timed (profile on, or
    /// metrics wanting the latency histogram).
    timing: bool,
    meta_emitted: bool,
}

impl Telemetry {
    /// Everything disabled: the zero-cost default.
    pub fn off() -> Self {
        Telemetry::default()
    }

    /// Attach an event sink; the full search-event stream flows into it.
    pub fn with_sink(mut self, sink: Box<dyn EventSink>) -> Self {
        self.sink = Some(sink);
        self.recache();
        self
    }

    /// Enable the metrics registry (histograms fill during the run;
    /// final counters land via [`Telemetry::finalize`]).
    pub fn with_metrics(mut self) -> Self {
        self.metrics = Some(MetricsRegistry::new());
        self.recache();
        self
    }

    /// Enable the per-transition profile for a machine with
    /// `transition_count` compiled transitions.
    pub fn with_profile(mut self, transition_count: usize) -> Self {
        self.profile = Some(TransitionProfile::new(transition_count));
        self.recache();
        self
    }

    /// Attach a progress reporter.
    pub fn with_progress(mut self, progress: ProgressReporter) -> Self {
        self.progress = Some(progress);
        self
    }

    /// Set the worker id stamped on subsequent events.
    pub fn with_worker(mut self, worker: u16) -> Self {
        self.worker = worker;
        self
    }

    fn recache(&mut self) {
        self.active = self.sink.is_some() || self.metrics.is_some() || self.profile.is_some();
        self.timing = self.profile.is_some() || self.metrics.is_some();
    }

    /// Whether any per-step hook would do work. The searches gate their
    /// hook calls on this so the off path evaluates no arguments.
    #[inline]
    pub(crate) fn hot(&self) -> bool {
        self.active
    }

    /// Whether the event stream is on (callers avoid name/observable
    /// lookups otherwise).
    #[inline]
    pub(crate) fn events_on(&self) -> bool {
        self.sink.is_some()
    }

    /// Start a step timer — `None` (no clock read) unless profiling or
    /// metrics need durations.
    #[inline]
    pub(crate) fn timer(&self) -> Option<Instant> {
        if self.timing {
            Some(Instant::now())
        } else {
            None
        }
    }

    #[inline]
    fn emit(&mut self, ev: &SearchEvent<'_>) {
        if let Some(sink) = &mut self.sink {
            sink.emit(self.seq, self.worker, ev);
            self.seq += 1;
        }
    }

    /// Emit the stream's `meta` header once per handle (a resumed or
    /// multi-round analysis keeps one continuous stream).
    pub(crate) fn begin(&mut self, mode: &str, spec: &str) {
        if self.meta_emitted || self.sink.is_none() {
            return;
        }
        self.meta_emitted = true;
        self.emit(&SearchEvent::Meta { mode, spec });
    }

    pub(crate) fn on_generate(
        &mut self,
        depth: usize,
        fanout: usize,
        incomplete: bool,
        t0: Option<Instant>,
    ) {
        if let Some(m) = &mut self.metrics {
            if let Some(t0) = t0 {
                m.observe(
                    "search.generate_latency_us",
                    metrics::LATENCY_US_BOUNDS,
                    t0.elapsed().as_secs_f64() * 1e6,
                );
            }
            if fanout > 0 {
                m.observe("search.fanout", metrics::FANOUT_BOUNDS, fanout as f64);
            }
            m.observe("search.depth", metrics::DEPTH_BOUNDS, depth as f64);
        }
        self.emit(&SearchEvent::Generate {
            depth,
            fanout,
            incomplete,
        });
    }

    pub(crate) fn on_fire(
        &mut self,
        depth: usize,
        trans: usize,
        name: &str,
        observable: Option<(&str, &str)>,
        fired: bool,
        t0: Option<Instant>,
    ) {
        let nanos = t0.map_or(0, |t| t.elapsed().as_nanos() as u64);
        if let Some(p) = &mut self.profile {
            p.record(trans, fired, nanos);
        }
        self.emit(&SearchEvent::Fire {
            depth,
            trans,
            name,
            observable,
            fired,
        });
    }

    pub(crate) fn on_save(&mut self, depth: usize, bytes: usize, interned: bool, resident: usize) {
        if let Some(m) = &mut self.metrics {
            m.observe(
                "search.snapshot_bytes_at_save",
                metrics::SNAPSHOT_BYTES_BOUNDS,
                resident as f64,
            );
        }
        self.emit(&SearchEvent::Save {
            depth,
            bytes,
            interned,
            resident,
        });
    }

    pub(crate) fn on_restore(&mut self, depth: usize) {
        self.emit(&SearchEvent::Restore { depth });
    }

    pub(crate) fn on_prune(&mut self, depth: usize, kind: PruneKind) {
        self.emit(&SearchEvent::Prune { depth, kind });
    }

    pub(crate) fn on_park(&mut self, depth: usize, pg_nodes: u64) {
        self.emit(&SearchEvent::Park { depth, pg_nodes });
    }

    /// Record a durable checkpoint write into the stream (the CLI calls
    /// this after each autosave).
    pub fn on_checkpoint(&mut self, te: u64, path: &str) {
        self.emit(&SearchEvent::Checkpoint { te, path });
    }

    /// Terminal hook of one search: verdict event plus the forced final
    /// heartbeat.
    pub(crate) fn on_verdict(&mut self, verdict: &Verdict, stats: &SearchStats, cap: u64) {
        if self.sink.is_some() {
            let v = verdict.to_string();
            self.emit(&SearchEvent::Verdict {
                verdict: &v,
                te: stats.transitions_executed,
                ge: stats.generates,
                re: stats.restores,
                sa: stats.saves,
            });
        }
        if let Some(p) = &mut self.progress {
            p.finish(stats, cap);
        }
    }

    /// Per-step progress tick (separate from [`Telemetry::hot`] — a
    /// progress-only configuration still heartbeats).
    #[inline]
    pub(crate) fn tick(&mut self, stats: &SearchStats, cap: u64) {
        if let Some(p) = &mut self.progress {
            p.tick(stats, cap);
        }
    }

    /// Fold the analysis's final counters into the metrics registry and
    /// flush the sink. Call once, with `AnalysisReport::stats` (which is
    /// cumulative across initial-state-search rounds and stop/resume).
    pub fn finalize(&mut self, stats: &SearchStats) {
        if let Some(m) = &mut self.metrics {
            m.record_stats(stats);
        }
        self.flush();
    }

    /// Flush any buffered sink output.
    pub fn flush(&mut self) {
        if let Some(s) = &mut self.sink {
            s.flush();
        }
    }

    /// The metrics registry, if enabled.
    pub fn metrics(&self) -> Option<&MetricsRegistry> {
        self.metrics.as_ref()
    }

    pub fn metrics_mut(&mut self) -> Option<&mut MetricsRegistry> {
        self.metrics.as_mut()
    }

    /// The transition profile, if enabled.
    pub fn profile(&self) -> Option<&TransitionProfile> {
        self.profile.as_ref()
    }

    /// Events emitted so far (the next sequence number).
    pub fn events_emitted(&self) -> u64 {
        self.seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_handle_reports_inactive_everywhere() {
        let t = Telemetry::off();
        assert!(!t.hot());
        assert!(!t.events_on());
        assert!(t.timer().is_none());
        assert!(t.metrics().is_none());
        assert!(t.profile().is_none());
    }

    #[test]
    fn meta_emitted_once_per_handle() {
        let mut t = Telemetry::off().with_sink(Box::new(RingBufferSink::new(16)));
        t.begin("dfs", "tp0");
        t.begin("dfs", "tp0");
        assert_eq!(t.events_emitted(), 1);
    }

    #[test]
    fn seq_numbers_are_contiguous_merge_order() {
        let mut t = Telemetry::off().with_sink(Box::new(RingBufferSink::new(16)));
        t.begin("dfs", "s");
        t.on_restore(1);
        t.on_prune(2, PruneKind::Barren);
        assert_eq!(t.events_emitted(), 3);
    }

    #[test]
    fn timing_enabled_by_profile_or_metrics() {
        assert!(Telemetry::off().with_profile(4).timer().is_some());
        assert!(Telemetry::off().with_metrics().timer().is_some());
        assert!(
            Telemetry::off()
                .with_sink(Box::new(RingBufferSink::new(4)))
                .timer()
                .is_none(),
            "the event stream alone must not read clocks"
        );
    }
}
