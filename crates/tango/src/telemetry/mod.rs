//! Telemetry layer: structured search-event tracing, metrics, live
//! progress and per-transition profiling.
//!
//! Four cooperating facilities, all **off by default and zero-cost when
//! off** (the searches pay a handful of branch checks per step, nothing
//! else — no clock reads, no allocation, no formatting):
//!
//! * **Event stream** ([`event`], [`sink`]) — every Generate / Fire /
//!   Save / Restore / Prune / Park / Checkpoint / Verdict step as one
//!   versioned JSONL line through a pluggable [`EventSink`]. The stream
//!   is complete and deterministic: for a fixed trace and options the
//!   bytes are identical across runs, and the final [`SearchStats`]
//!   counters equal the per-kind event counts (TE = fire events, GE =
//!   generate, RE = restore, SA = save) — `tests/telemetry.rs` pins
//!   both for DFS and MDFS.
//! * **Metrics registry** ([`metrics`]) — counters, gauges and
//!   fixed-bucket histograms (fanout, depth, per-generate latency,
//!   snapshot-bytes timeline) exported as one JSON document.
//! * **Progress reporter** ([`progress`]) — periodic heartbeat with
//!   rate and ETA against the transition cap, human or JSONL.
//! * **Transition profile** ([`profile`]) — per-transition fire/fail
//!   counts and cumulative fire time; renders a sorted hot-spot table
//!   and the Graphviz heat overlay.
//!
//! One [`Telemetry`] handle bundles all four and is threaded through
//! [`crate::TraceAnalyzer`]'s `*_with` methods into both searches. It
//! stamps every event with a monotonically increasing sequence number
//! and a worker id, so multi-worker streams stay merge-ordered; it
//! survives stop/resume rounds, so a CLI autosave run produces one
//! continuous stream.

pub mod dump;
pub mod event;
pub mod http;
pub mod metrics;
pub mod profile;
pub mod progress;
pub mod recorder;
pub mod sink;

pub use dump::{
    should_dump, DumpError, HotspotRow, PlanCapture, PostMortemDump, RingCapture,
    DUMP_FORMAT_VERSION, DUMP_MAGIC,
};
pub use event::{PruneKind, SearchEvent, TRACE_SCHEMA_VERSION};
pub use http::{IntrospectHandle, IntrospectionServer, STATUS_SCHEMA_VERSION};
pub use metrics::{Histogram, MetricsRegistry, METRICS_SCHEMA_VERSION};
pub use profile::{PgoError, PgoProfile, PgoRow, TransitionProfile, TransitionStats};
pub use progress::{ProgressMode, ProgressReporter};
pub use recorder::{FlightRecord, FlightRecorder, DEFAULT_RING_CAPACITY};
pub use sink::{EventSink, JsonlSink, RingBufferSink};

use crate::stats::SearchStats;
use crate::verdict::Verdict;
use estelle_runtime::RuntimeErrorKind;
use event::json_escape;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// The per-analysis telemetry handle. `Telemetry::off()` (also
/// `Default`) disables everything; builders switch on the individual
/// facilities. Pass it to the `*_with` analyzer entry points.
#[derive(Default)]
pub struct Telemetry {
    sink: Option<Box<dyn EventSink>>,
    metrics: Option<MetricsRegistry>,
    progress: Option<ProgressReporter>,
    profile: Option<TransitionProfile>,
    /// The black-box ring (cheap enough for the CLI to default on).
    flight: Option<FlightRecorder>,
    /// Live endpoint push side, when `--listen` mounted one.
    introspect: Option<Introspection>,
    /// Merge-order sequence number of the next event.
    seq: u64,
    /// Worker id stamped on every event (MDFS workers; 0 for DFS).
    worker: u16,
    /// Cached: any of sink/metrics/profile/recorder is on (progress is
    /// checked separately — it ticks even when nothing else is enabled).
    active: bool,
    /// Cached: fire/generate steps should be timed (profile on, or
    /// metrics wanting the latency histogram). The flight recorder
    /// deliberately does NOT set this: it never reads clocks.
    timing: bool,
    meta_emitted: bool,
    /// Remembered from `begin()` for post-mortem capture.
    mode: String,
    spec: String,
    /// Compiled-transition display names, for dump hot-spot rows and the
    /// `/profile` endpoint (the ring stores indices only).
    transition_names: Vec<String>,
}

/// Push-side state for the live endpoint: rate-limits renders so the
/// search pays one clock read every few hundred steps, not per step.
struct Introspection {
    handle: IntrospectHandle,
    /// Step counter; the clock is consulted every 256 ticks.
    ticks: u32,
    last_push: Instant,
    every: Duration,
    /// Previous push's (instant, TE) for the status rate.
    last_sample: Option<(Instant, u64)>,
    /// Verdict-so-far shown by `/status` while the search runs.
    verdict: String,
    /// Transition cap from the most recent tick, for ETA.
    cap: u64,
}

impl Telemetry {
    /// Everything disabled: the zero-cost default.
    pub fn off() -> Self {
        Telemetry::default()
    }

    /// Attach an event sink; the full search-event stream flows into it.
    pub fn with_sink(mut self, sink: Box<dyn EventSink>) -> Self {
        self.sink = Some(sink);
        self.recache();
        self
    }

    /// Enable the metrics registry (histograms fill during the run;
    /// final counters land via [`Telemetry::finalize`]).
    pub fn with_metrics(mut self) -> Self {
        self.metrics = Some(MetricsRegistry::new());
        self.recache();
        self
    }

    /// Enable the per-transition profile for a machine with
    /// `transition_count` compiled transitions.
    pub fn with_profile(mut self, transition_count: usize) -> Self {
        self.profile = Some(TransitionProfile::new(transition_count));
        self.recache();
        self
    }

    /// Attach a progress reporter.
    pub fn with_progress(mut self, progress: ProgressReporter) -> Self {
        self.progress = Some(progress);
        self
    }

    /// Set the worker id stamped on subsequent events.
    pub fn with_worker(mut self, worker: u16) -> Self {
        self.worker = worker;
        self
    }

    /// Switch the worker id stamped on subsequent events in place. The
    /// multi-worker MDFS coordinator replays each worker's buffered
    /// events through the one (non-`Send`) telemetry handle, setting
    /// the id per batch so the merged stream stays attributable.
    pub(crate) fn set_worker(&mut self, worker: u16) {
        self.worker = worker;
    }

    /// Record the run's search worker count; surfaced on progress
    /// heartbeats (` workers=N`, only when N > 1, so single-worker
    /// heartbeats keep their exact historical shape).
    pub(crate) fn set_workers(&mut self, n: usize) {
        if let Some(p) = &mut self.progress {
            p.set_workers(n);
        }
    }

    /// Enable the flight recorder with a ring of `capacity` records
    /// (see [`DEFAULT_RING_CAPACITY`]). Recording is allocation-free
    /// after warm-up and never reads clocks.
    pub fn with_recorder(mut self, capacity: usize) -> Self {
        self.flight = Some(FlightRecorder::new(capacity));
        self.recache();
        self
    }

    /// Attach the push side of a live introspection endpoint; status
    /// (and metrics/profile, when those facilities are on) documents are
    /// re-rendered into it at most every ~200ms.
    pub fn with_introspection(mut self, handle: IntrospectHandle) -> Self {
        self.introspect = Some(Introspection {
            handle,
            ticks: 0,
            last_push: Instant::now(),
            every: Duration::from_millis(200),
            last_sample: None,
            verdict: "running".to_string(),
            cap: 0,
        });
        self
    }

    /// Provide compiled-transition display names (index → name) for
    /// dump hot-spot rows and the `/profile` endpoint.
    pub fn with_transition_names(mut self, names: Vec<String>) -> Self {
        self.transition_names = names;
        self
    }

    fn recache(&mut self) {
        self.active = self.sink.is_some()
            || self.metrics.is_some()
            || self.profile.is_some()
            || self.flight.is_some();
        self.timing = self.profile.is_some() || self.metrics.is_some();
    }

    /// Whether any per-step hook would do work. The searches gate their
    /// hook calls on this so the off path evaluates no arguments.
    #[inline]
    pub(crate) fn hot(&self) -> bool {
        self.active
    }

    /// Whether the event stream is on (callers avoid name/observable
    /// lookups otherwise).
    #[inline]
    pub(crate) fn events_on(&self) -> bool {
        self.sink.is_some()
    }

    /// Start a step timer — `None` (no clock read) unless profiling or
    /// metrics need durations.
    #[inline]
    pub(crate) fn timer(&self) -> Option<Instant> {
        if self.timing {
            Some(Instant::now())
        } else {
            None
        }
    }

    #[inline]
    fn emit(&mut self, ev: &SearchEvent<'_>) {
        let mut advanced = false;
        if let Some(r) = &mut self.flight {
            r.record(self.seq, ev);
            advanced = true;
        }
        if let Some(sink) = &mut self.sink {
            sink.emit(self.seq, self.worker, ev);
            advanced = true;
        }
        if advanced {
            self.seq += 1;
        }
    }

    /// Emit the stream's `meta` header once per handle (a resumed or
    /// multi-round analysis keeps one continuous stream) and remember
    /// the mode/spec pair for post-mortem capture.
    pub(crate) fn begin(&mut self, mode: &str, spec: &str) {
        if self.meta_emitted {
            return;
        }
        self.mode = mode.to_string();
        self.spec = spec.to_string();
        if self.sink.is_none() && self.flight.is_none() {
            return;
        }
        self.meta_emitted = true;
        self.emit(&SearchEvent::Meta { mode, spec });
    }

    pub(crate) fn on_generate(
        &mut self,
        depth: usize,
        fanout: usize,
        incomplete: bool,
        t0: Option<Instant>,
    ) {
        let lat_us = t0.map(|t| t.elapsed().as_secs_f64() * 1e6);
        self.on_generate_dur(depth, fanout, incomplete, lat_us);
    }

    /// [`Telemetry::on_generate`] with the latency pre-measured —
    /// worker threads time their own steps and the coordinator replays
    /// them here, so the duration must not be re-read from a clock.
    pub(crate) fn on_generate_dur(
        &mut self,
        depth: usize,
        fanout: usize,
        incomplete: bool,
        lat_us: Option<f64>,
    ) {
        if let Some(m) = &mut self.metrics {
            if let Some(lat_us) = lat_us {
                m.observe(
                    "search.generate_latency_us",
                    metrics::LATENCY_US_BOUNDS,
                    lat_us,
                );
            }
            if fanout > 0 {
                m.observe("search.fanout", metrics::FANOUT_BOUNDS, fanout as f64);
            }
            m.observe("search.depth", metrics::DEPTH_BOUNDS, depth as f64);
        }
        self.emit(&SearchEvent::Generate {
            depth,
            fanout,
            incomplete,
        });
    }

    pub(crate) fn on_fire(
        &mut self,
        depth: usize,
        trans: usize,
        name: &str,
        observable: Option<(&str, &str)>,
        fired: bool,
        t0: Option<Instant>,
    ) {
        let nanos = t0.map_or(0, |t| t.elapsed().as_nanos() as u64);
        self.on_fire_dur(depth, trans, name, observable, fired, nanos);
    }

    /// [`Telemetry::on_fire`] with the duration pre-measured (see
    /// [`Telemetry::on_generate_dur`]).
    pub(crate) fn on_fire_dur(
        &mut self,
        depth: usize,
        trans: usize,
        name: &str,
        observable: Option<(&str, &str)>,
        fired: bool,
        nanos: u64,
    ) {
        if let Some(p) = &mut self.profile {
            p.record(trans, fired, nanos);
        }
        self.emit(&SearchEvent::Fire {
            depth,
            trans,
            name,
            observable,
            fired,
        });
    }

    pub(crate) fn on_save(&mut self, depth: usize, bytes: usize, interned: bool, resident: usize) {
        if let Some(m) = &mut self.metrics {
            m.observe(
                "search.snapshot_bytes_at_save",
                metrics::SNAPSHOT_BYTES_BOUNDS,
                resident as f64,
            );
        }
        self.emit(&SearchEvent::Save {
            depth,
            bytes,
            interned,
            resident,
        });
    }

    pub(crate) fn on_restore(&mut self, depth: usize) {
        self.emit(&SearchEvent::Restore { depth });
    }

    pub(crate) fn on_prune(&mut self, depth: usize, kind: PruneKind) {
        self.emit(&SearchEvent::Prune { depth, kind });
    }

    pub(crate) fn on_park(&mut self, depth: usize, pg_nodes: u64) {
        self.emit(&SearchEvent::Park { depth, pg_nodes });
    }

    /// Record a durable checkpoint write into the stream (the CLI calls
    /// this after each autosave).
    pub fn on_checkpoint(&mut self, te: u64, path: &str) {
        self.emit(&SearchEvent::Checkpoint { te, path });
    }

    /// Terminal hook of one search: verdict event plus the forced final
    /// heartbeat.
    pub(crate) fn on_verdict(&mut self, verdict: &Verdict, stats: &SearchStats, cap: u64) {
        if self.sink.is_some() || self.flight.is_some() {
            let v = verdict.to_string();
            self.emit(&SearchEvent::Verdict {
                verdict: &v,
                te: stats.transitions_executed,
                ge: stats.generates,
                re: stats.restores,
                sa: stats.saves,
            });
        }
        if let Some(i) = &mut self.introspect {
            i.verdict = verdict.to_string();
        }
        if let Some(p) = &mut self.progress {
            p.finish(stats, cap);
        }
    }

    /// MDFS only: the interim verdict changed (ValidSoFar ⇄
    /// LikelyInvalid) — keep `/status` truthful between heartbeats.
    pub(crate) fn on_interim_verdict(&mut self, verdict: &Verdict) {
        if let Some(i) = &mut self.introspect {
            i.verdict = verdict.to_string();
        }
    }

    /// Per-step progress tick (separate from [`Telemetry::hot`] — a
    /// progress-only configuration still heartbeats). Also folds fault
    /// deltas into the flight recorder and, every few hundred steps,
    /// refreshes the live endpoint.
    #[inline]
    pub(crate) fn tick(&mut self, stats: &SearchStats, cap: u64) {
        if let Some(p) = &mut self.progress {
            p.tick(stats, cap);
        }
        if let Some(r) = &mut self.flight {
            self.seq += r.note_faults(self.seq, stats);
        }
        if self.introspect.is_some() {
            self.introspect_tick(stats, cap, false);
        }
    }

    /// Rate-limited push of `/status` (plus `/metrics` and `/profile`
    /// when those facilities are on). The per-step cost while idle is
    /// one counter bump; the clock is read every 256 steps.
    fn introspect_tick(&mut self, stats: &SearchStats, cap: u64, force: bool) {
        let due = {
            let i = self.introspect.as_mut().expect("introspect checked by caller");
            i.cap = cap;
            i.ticks = i.ticks.wrapping_add(1);
            if !force && i.ticks & 0xFF != 0 {
                return;
            }
            let now = Instant::now();
            let due = force || now.duration_since(i.last_push) >= i.every;
            if due {
                i.last_push = now;
            }
            due
        };
        if !due {
            return;
        }
        let status = self.render_status_json(stats, force);
        let profile_json = self.profile.as_ref().map(|p| {
            let names = &self.transition_names;
            let mut out = String::from("{\"schema\":\"tango-profile\",\"version\":1,\"rows\":[");
            for (n, id) in p.ranked().into_iter().take(32).enumerate() {
                let e = p.entries()[id];
                if n > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"trans\":{},\"name\":\"{}\",\"fires\":{},\"fails\":{},\"nanos\":{}}}",
                    id,
                    json_escape(names.get(id).map(String::as_str).unwrap_or("?")),
                    e.fires,
                    e.fails,
                    e.nanos
                );
            }
            out.push_str("]}");
            out
        });
        let metrics_json = self.metrics.as_mut().map(|m| {
            m.record_stats(stats);
            m.to_json()
        });
        let i = self.introspect.as_mut().expect("introspect checked above");
        i.handle.set_status(status);
        if let Some(p) = profile_json {
            i.handle.set_profile(p);
        }
        if let Some(m) = metrics_json {
            i.handle.set_metrics(m);
        }
        i.last_sample = Some((i.last_push, stats.transitions_executed));
    }

    /// Render the `/status` document: the progress heartbeat's fields as
    /// one JSON object.
    fn render_status_json(&self, stats: &SearchStats, done: bool) -> String {
        let i = self.introspect.as_ref().expect("introspect checked by caller");
        let te = stats.transitions_executed;
        let rate = match i.last_sample {
            Some((t0, te0)) if te >= te0 => {
                let dt = i.last_push.duration_since(t0).as_secs_f64();
                if dt > 0.0 {
                    (te - te0) as f64 / dt
                } else {
                    stats.transitions_per_second()
                }
            }
            _ => stats.transitions_per_second(),
        };
        let eta = if done || rate <= 0.0 || i.cap == u64::MAX || i.cap <= te {
            None
        } else {
            Some((i.cap - te) as f64 / rate)
        };
        let mut out = format!(
            "{{\"schema\":\"tango-status\",\"version\":{},\"verdict\":\"{}\",\
             \"te\":{},\"ge\":{},\"re\":{},\"sa\":{},\"depth\":{},\"rate\":{:.1}",
            STATUS_SCHEMA_VERSION,
            json_escape(&i.verdict),
            te,
            stats.generates,
            stats.restores,
            stats.saves,
            stats.max_depth,
            rate
        );
        match eta {
            Some(s) => {
                let _ = write!(out, ",\"eta_s\":{:.0}", s);
            }
            None => out.push_str(",\"eta_s\":null"),
        }
        let _ = write!(
            out,
            ",\"retries\":{},\"giveups\":{},\"resident_bytes\":{},\"spilled_bytes\":{},\
             \"done\":{}}}",
            stats.total_fault_retries(),
            stats.total_fault_giveups(),
            stats.snapshot_bytes,
            stats.spilled_bytes,
            done
        );
        out
    }

    /// A branch was abandoned on a runtime error (including isolated
    /// panics). Recorder-only: the JSONL event stream's schema is pinned
    /// and does not carry error branches.
    #[inline]
    pub(crate) fn on_error_branch(&mut self, depth: usize, kind: RuntimeErrorKind) {
        if let Some(r) = &mut self.flight {
            r.record_error(self.seq, depth, dump::error_kind_code(kind));
            self.seq += 1;
        }
    }

    /// Fold the analysis's final counters into the metrics registry,
    /// fold trailing fault deltas into the recorder, push the final
    /// (`done`) status to the live endpoint and flush the sink. Call
    /// once, with `AnalysisReport::stats` (which is cumulative across
    /// initial-state-search rounds and stop/resume).
    pub fn finalize(&mut self, stats: &SearchStats) {
        if let Some(m) = &mut self.metrics {
            m.record_stats(stats);
        }
        if let Some(r) = &mut self.flight {
            self.seq += r.note_faults(self.seq, stats);
        }
        if self.introspect.is_some() {
            self.introspect_tick(stats, self.introspect.as_ref().map_or(0, |i| i.cap), true);
        }
        self.flush();
    }

    /// Flush any buffered sink output.
    pub fn flush(&mut self) {
        if let Some(s) = &mut self.sink {
            s.flush();
        }
    }

    /// The metrics registry, if enabled.
    pub fn metrics(&self) -> Option<&MetricsRegistry> {
        self.metrics.as_ref()
    }

    pub fn metrics_mut(&mut self) -> Option<&mut MetricsRegistry> {
        self.metrics.as_mut()
    }

    /// The transition profile, if enabled.
    pub fn profile(&self) -> Option<&TransitionProfile> {
        self.profile.as_ref()
    }

    /// The flight recorder, if enabled.
    pub fn recorder(&self) -> Option<&FlightRecorder> {
        self.flight.as_ref()
    }

    /// Search mode remembered from `begin()` (`""` before any search).
    pub fn mode(&self) -> &str {
        &self.mode
    }

    /// Specification module name remembered from `begin()`.
    pub fn spec(&self) -> &str {
        &self.spec
    }

    /// Display name of a compiled transition, when names were provided.
    pub fn transition_name(&self, trans: usize) -> Option<&str> {
        self.transition_names.get(trans).map(String::as_str)
    }

    /// Events emitted so far (the next sequence number).
    pub fn events_emitted(&self) -> u64 {
        self.seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_handle_reports_inactive_everywhere() {
        let t = Telemetry::off();
        assert!(!t.hot());
        assert!(!t.events_on());
        assert!(t.timer().is_none());
        assert!(t.metrics().is_none());
        assert!(t.profile().is_none());
    }

    #[test]
    fn meta_emitted_once_per_handle() {
        let mut t = Telemetry::off().with_sink(Box::new(RingBufferSink::new(16)));
        t.begin("dfs", "tp0");
        t.begin("dfs", "tp0");
        assert_eq!(t.events_emitted(), 1);
    }

    #[test]
    fn seq_numbers_are_contiguous_merge_order() {
        let mut t = Telemetry::off().with_sink(Box::new(RingBufferSink::new(16)));
        t.begin("dfs", "s");
        t.on_restore(1);
        t.on_prune(2, PruneKind::Barren);
        assert_eq!(t.events_emitted(), 3);
    }

    #[test]
    fn timing_enabled_by_profile_or_metrics() {
        assert!(Telemetry::off().with_profile(4).timer().is_some());
        assert!(Telemetry::off().with_metrics().timer().is_some());
        assert!(
            Telemetry::off()
                .with_sink(Box::new(RingBufferSink::new(4)))
                .timer()
                .is_none(),
            "the event stream alone must not read clocks"
        );
    }
}
