//! The flight recorder: an always-affordable black box for searches.
//!
//! Unlike the opt-in facilities in this module, the recorder is designed
//! to be **default on**: a fixed-capacity ring of compact binary records
//! over the [`SearchEvent`] stream plus fault/retry deltas. Its storage
//! is fully pre-allocated at construction — recording one event is a
//! bounds-masked store into a `Vec<FlightRecord>` (no allocation, no
//! clock read, no formatting), so a multi-hour run pays the same few
//! nanoseconds per step from first event to last.
//!
//! The ring retains the *tail* of the run — the part that explains a
//! verdict — while lifetime per-kind counters retain the whole story in
//! aggregate: after any non-resumed analysis, `fires()` equals the final
//! TE, `generates()` GE, `restores()` RE and `saves()` SA, which is the
//! cross-check `dump-info` prints next to the dumped `SearchStats`.
//! [`super::dump`] freezes the ring into the `RING` section of a
//! `.tangodump` post-mortem file.

use super::event::{PruneKind, SearchEvent};
use crate::stats::SearchStats;
use estelle_runtime::{ByteReader, ByteWriter, CodecError};

/// Default ring capacity (records), used by the CLI's always-on
/// recorder. 2048 compact records cover the last few thousand search
/// steps in ~64 KiB.
pub const DEFAULT_RING_CAPACITY: usize = 2048;

/// Record kinds. These are *recorder* codes, not the event-stream
/// schema: the ring additionally records error branches and fault
/// retries, which the JSONL stream does not carry.
pub const KIND_META: u8 = 0;
pub const KIND_GENERATE: u8 = 1;
pub const KIND_FIRE: u8 = 2;
pub const KIND_SAVE: u8 = 3;
pub const KIND_RESTORE: u8 = 4;
pub const KIND_PRUNE: u8 = 5;
pub const KIND_PARK: u8 = 6;
pub const KIND_CHECKPOINT: u8 = 7;
pub const KIND_VERDICT: u8 = 8;
pub const KIND_ERROR: u8 = 9;
pub const KIND_FAULT: u8 = 10;
/// Number of distinct record kinds (size of the per-kind count table).
pub const KIND_COUNT: usize = 11;

/// Fault sites for [`KIND_FAULT`] records (`flag` field).
pub const FAULT_SITE_SOURCE: u8 = 1;
pub const FAULT_SITE_SPILL: u8 = 2;
pub const FAULT_SITE_CHECKPOINT: u8 = 3;

pub(crate) fn kind_name(kind: u8) -> &'static str {
    match kind {
        KIND_META => "meta",
        KIND_GENERATE => "generate",
        KIND_FIRE => "fire",
        KIND_SAVE => "save",
        KIND_RESTORE => "restore",
        KIND_PRUNE => "prune",
        KIND_PARK => "park",
        KIND_CHECKPOINT => "checkpoint",
        KIND_VERDICT => "verdict",
        KIND_ERROR => "error",
        KIND_FAULT => "fault",
        _ => "unknown",
    }
}

/// One compact, fixed-size flight record. Strings never enter the ring
/// (that would allocate on the hot path); transitions are recorded by
/// index and resolved to names at dump-rendering time.
///
/// Field meaning by kind:
///
/// | kind       | `flag`            | `trans` | `a`            | `b`        |
/// |------------|-------------------|---------|----------------|------------|
/// | meta       | —                 | —       | —              | —          |
/// | generate   | incomplete        | —       | fanout         | —          |
/// | fire       | fired             | index   | —              | —          |
/// | save       | interned          | —       | bytes          | resident   |
/// | restore    | —                 | —       | —              | —          |
/// | prune      | 0=hash 1=barren   | —       | —              | —          |
/// | park       | —                 | —       | pg_nodes       | —          |
/// | checkpoint | —                 | —       | TE at save     | —          |
/// | verdict    | —                 | —       | TE             | GE         |
/// | error      | runtime-error kind| —       | —              | —          |
/// | fault      | site (1/2/3)      | —       | retries delta  | giveups Δ  |
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FlightRecord {
    pub seq: u64,
    pub kind: u8,
    pub flag: u8,
    pub depth: u32,
    pub trans: u32,
    pub a: u64,
    pub b: u64,
}

impl FlightRecord {
    pub(crate) fn encode(&self, w: &mut ByteWriter) {
        w.put_u64(self.seq);
        w.put_u8(self.kind);
        w.put_u8(self.flag);
        w.put_u32(self.depth);
        w.put_u32(self.trans);
        w.put_u64(self.a);
        w.put_u64(self.b);
    }

    pub(crate) fn decode(r: &mut ByteReader<'_>) -> Result<FlightRecord, CodecError> {
        Ok(FlightRecord {
            seq: r.get_u64("flight record seq")?,
            kind: r.get_u8("flight record kind")?,
            flag: r.get_u8("flight record flag")?,
            depth: r.get_u32("flight record depth")?,
            trans: r.get_u32("flight record trans")?,
            a: r.get_u64("flight record a")?,
            b: r.get_u64("flight record b")?,
        })
    }
}

/// The fixed-capacity event ring plus lifetime per-kind counters.
pub struct FlightRecorder {
    /// Pre-allocated ring storage; `len <= capacity` during warm-up,
    /// then a plain overwrite at `head`.
    ring: Vec<FlightRecord>,
    capacity: usize,
    /// Next write position (== oldest record once the ring is full).
    head: usize,
    /// Records written over the recorder's lifetime (including
    /// overwritten ones).
    seen: u64,
    /// Lifetime counts per record kind — the TE/GE/RE/SA cross-check.
    counts: [u64; KIND_COUNT],
    /// Last-observed per-site fault counters, so the recorder can turn
    /// the monotone `SearchStats` counters into delta records without
    /// hooks inside the retry loops themselves.
    last_faults: [(u64, u64); 3],
}

impl FlightRecorder {
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            ring: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            seen: 0,
            counts: [0; KIND_COUNT],
            last_faults: [(0, 0); 3],
        }
    }

    #[inline]
    fn push(&mut self, rec: FlightRecord) {
        self.seen += 1;
        self.counts[usize::from(rec.kind.min(KIND_COUNT as u8 - 1))] += 1;
        if self.ring.len() < self.capacity {
            // Warm-up: the only allocations the recorder ever performs
            // happen while filling the pre-reserved ring the first time.
            self.ring.push(rec);
            self.head = self.ring.len() % self.capacity;
        } else {
            self.ring[self.head] = rec;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// Record one search event (called from the [`super::Telemetry`]
    /// emit path with the event's merge-order sequence number).
    pub(crate) fn record(&mut self, seq: u64, ev: &SearchEvent<'_>) {
        let rec = match ev {
            SearchEvent::Meta { .. } => FlightRecord {
                seq,
                kind: KIND_META,
                ..FlightRecord::default()
            },
            SearchEvent::Generate {
                depth,
                fanout,
                incomplete,
            } => FlightRecord {
                seq,
                kind: KIND_GENERATE,
                flag: u8::from(*incomplete),
                depth: *depth as u32,
                a: *fanout as u64,
                ..FlightRecord::default()
            },
            SearchEvent::Fire {
                depth,
                trans,
                fired,
                ..
            } => FlightRecord {
                seq,
                kind: KIND_FIRE,
                flag: u8::from(*fired),
                depth: *depth as u32,
                trans: *trans as u32,
                ..FlightRecord::default()
            },
            SearchEvent::Save {
                depth,
                bytes,
                interned,
                resident,
            } => FlightRecord {
                seq,
                kind: KIND_SAVE,
                flag: u8::from(*interned),
                depth: *depth as u32,
                a: *bytes as u64,
                b: *resident as u64,
                ..FlightRecord::default()
            },
            SearchEvent::Restore { depth } => FlightRecord {
                seq,
                kind: KIND_RESTORE,
                depth: *depth as u32,
                ..FlightRecord::default()
            },
            SearchEvent::Prune { depth, kind } => FlightRecord {
                seq,
                kind: KIND_PRUNE,
                flag: match kind {
                    PruneKind::Hash => 0,
                    PruneKind::Barren => 1,
                },
                depth: *depth as u32,
                ..FlightRecord::default()
            },
            SearchEvent::Park { depth, pg_nodes } => FlightRecord {
                seq,
                kind: KIND_PARK,
                depth: *depth as u32,
                a: *pg_nodes,
                ..FlightRecord::default()
            },
            SearchEvent::Checkpoint { te, .. } => FlightRecord {
                seq,
                kind: KIND_CHECKPOINT,
                a: *te,
                ..FlightRecord::default()
            },
            SearchEvent::Verdict { te, ge, .. } => FlightRecord {
                seq,
                kind: KIND_VERDICT,
                a: *te,
                b: *ge,
                ..FlightRecord::default()
            },
        };
        self.push(rec);
    }

    /// Record a panic-isolated (or other runtime-error) branch abort.
    pub(crate) fn record_error(&mut self, seq: u64, depth: usize, kind_code: u8) {
        self.push(FlightRecord {
            seq,
            kind: KIND_ERROR,
            flag: kind_code,
            depth: depth as u32,
            ..FlightRecord::default()
        });
    }

    /// Fold the monotone fault counters of `stats` into delta records —
    /// one per site whose retries or giveups advanced since the last
    /// call. Called from the per-step tick, so the cost when nothing
    /// changed is six integer compares. Returns how many records were
    /// pushed (the caller advances its sequence counter by this).
    pub(crate) fn note_faults(&mut self, mut seq: u64, stats: &SearchStats) -> u64 {
        let start = seq;
        let sites = [
            (FAULT_SITE_SOURCE, stats.source_retries, stats.source_giveups),
            (FAULT_SITE_SPILL, stats.spill_retries, stats.spill_giveups),
            (
                FAULT_SITE_CHECKPOINT,
                stats.checkpoint_retries,
                stats.checkpoint_giveups,
            ),
        ];
        for (site, retries, giveups) in sites {
            let slot = &mut self.last_faults[usize::from(site) - 1];
            if retries > slot.0 || giveups > slot.1 {
                let rec = FlightRecord {
                    seq,
                    kind: KIND_FAULT,
                    flag: site,
                    a: retries - slot.0,
                    b: giveups - slot.1,
                    ..FlightRecord::default()
                };
                *slot = (retries, giveups);
                self.push(rec);
                seq += 1;
            }
        }
        seq - start
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records written over the recorder's lifetime, including those the
    /// ring has already overwritten.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Lifetime count of one record kind.
    pub fn count(&self, kind: u8) -> u64 {
        self.counts[usize::from(kind.min(KIND_COUNT as u8 - 1))]
    }

    /// Lifetime fire records — equals the final TE of a non-resumed
    /// analysis (a run resumed from an on-disk checkpoint carries TE
    /// from before this process, which the recorder never saw).
    pub fn fires(&self) -> u64 {
        self.count(KIND_FIRE)
    }

    pub fn generates(&self) -> u64 {
        self.count(KIND_GENERATE)
    }

    pub fn restores(&self) -> u64 {
        self.count(KIND_RESTORE)
    }

    pub fn saves(&self) -> u64 {
        self.count(KIND_SAVE)
    }

    /// The per-kind lifetime count table, indexed by record kind.
    pub fn counts(&self) -> &[u64; KIND_COUNT] {
        &self.counts
    }

    /// The retained tail, oldest record first.
    pub fn records(&self) -> Vec<FlightRecord> {
        let mut out = Vec::with_capacity(self.ring.len());
        if self.ring.len() < self.capacity {
            out.extend_from_slice(&self.ring);
        } else {
            out.extend_from_slice(&self.ring[self.head..]);
            out.extend_from_slice(&self.ring[..self.head]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fire(seq: u64, depth: usize) -> SearchEvent<'static> {
        SearchEvent::Fire {
            depth,
            trans: seq as usize,
            name: "t",
            observable: None,
            fired: true,
        }
    }

    #[test]
    fn ring_overwrites_oldest_and_keeps_lifetime_counts() {
        let mut r = FlightRecorder::new(4);
        for i in 0..10 {
            r.record(i, &fire(i, i as usize));
        }
        assert_eq!(r.seen(), 10);
        assert_eq!(r.fires(), 10);
        let recs = r.records();
        assert_eq!(recs.len(), 4);
        assert_eq!(recs[0].seq, 6, "oldest retained record");
        assert_eq!(recs[3].seq, 9, "newest record");
    }

    #[test]
    fn warm_up_fills_in_order_without_wrap() {
        let mut r = FlightRecorder::new(8);
        for i in 0..3 {
            r.record(i, &SearchEvent::Restore { depth: i as usize });
        }
        let recs = r.records();
        assert_eq!(recs.len(), 3);
        assert_eq!((recs[0].seq, recs[2].seq), (0, 2));
        assert_eq!(r.restores(), 3);
    }

    #[test]
    fn fault_deltas_recorded_once_per_advance() {
        let mut r = FlightRecorder::new(8);
        let mut s = SearchStats::default();
        r.note_faults(0, &s);
        assert_eq!(r.count(KIND_FAULT), 0, "no change, no record");
        s.spill_retries = 3;
        r.note_faults(1, &s);
        r.note_faults(2, &s);
        assert_eq!(r.count(KIND_FAULT), 1, "idempotent until counters move");
        let rec = r.records()[0];
        assert_eq!(rec.flag, FAULT_SITE_SPILL);
        assert_eq!(rec.a, 3, "delta, not absolute");
        s.spill_retries = 5;
        s.checkpoint_giveups = 1;
        r.note_faults(3, &s);
        assert_eq!(r.count(KIND_FAULT), 3);
    }

    #[test]
    fn record_round_trips_through_the_codec() {
        let rec = FlightRecord {
            seq: 7,
            kind: KIND_SAVE,
            flag: 1,
            depth: 12,
            trans: 0,
            a: 4096,
            b: 65536,
        };
        let mut w = ByteWriter::new();
        rec.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(FlightRecord::decode(&mut r).unwrap(), rec);
        assert_eq!(r.remaining(), 0);
    }
}
