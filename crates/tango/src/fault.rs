//! Unified chaos-engineering layer: composable fault plans and the
//! shared retry/backoff policy.
//!
//! The engine's promise — a *generated* analyzer delivers the same
//! verdict as the specification semantics — must hold under I/O faults,
//! crashes and resource pressure, not just on clean runs. Before this
//! module the fault tooling was three disconnected injectors, one per
//! subsystem: [`FaultySource`](crate::FaultySource) for trace feeds,
//! [`FaultySpillDir`](crate::spill::FaultySpillDir) for the disk spill
//! tier, and the SIGKILL harness for checkpoints. A [`FaultPlan`]
//! composes all three sites (plus the previously untestable
//! checkpoint-write path) into one seeded, reproducible plan, and a
//! [`RetryPolicy`] replaces the three divergent hand-rolled backoff
//! loops with one implementation: bounded exponential backoff,
//! optional deterministic jitter from [`crate::rng`], deadline-aware
//! sleeps.
//!
//! Everything here is zero-cost when no plan is armed, mirroring the
//! telemetry layer's design: production paths carry an `Option` that
//! stays `None`, and the retry policies compile to the exact schedules
//! the hand-rolled loops used.
//!
//! The invariants the chaos runner (`tests/chaos.rs`) asserts over this
//! module:
//!
//! * no panic ever escapes, whatever the plan;
//! * every failure surfaces as a typed error or a typed
//!   `Inconclusive` reason;
//! * a **lossless** plan (see [`FaultPlan::is_lossless`]) that reaches
//!   a conclusive verdict matches the fault-free run's verdict and
//!   TE/GE/RE/SA counters exactly;
//! * crash + resume re-converges to the reference verdict.

use crate::rng::SplitMix64;
use crate::trace::source::{FaultySource, RecoveryPolicy, TraceSource};
use crate::trace::Trace;
use estelle_frontend::sema::model::AnalyzedModule;
use std::fmt;
use std::time::{Duration, Instant};

pub use crate::search::spill::SpillFaultPlan;
pub use crate::trace::source::SourceFaultPlan;

// ------------------------------------------------------------- errors

/// Typed errors of the chaos layer itself.
#[derive(Debug)]
pub enum FaultError {
    /// A `--fault-plan` specification failed to parse.
    Parse(String),
    /// Draining a fault-injected source exceeded its poll budget — the
    /// plan stalls the feed harder than the budget tolerates.
    SourceStalled { polls: usize },
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::Parse(m) => write!(f, "bad fault plan: {}", m),
            FaultError::SourceStalled { polls } => write!(
                f,
                "fault-injected source still not at eof after {} polls",
                polls
            ),
        }
    }
}

impl std::error::Error for FaultError {}

// ------------------------------------------------------- retry policy

/// The shared retry/backoff policy: how many transient failures to
/// absorb and how long to sleep between attempts.
///
/// One implementation now serves the three formerly hand-rolled loops —
/// checkpoint atomic writes ([`RetryPolicy::checkpoint`]), spill-tier
/// I/O ([`RetryPolicy::spill`]) and idle source polling
/// ([`RetryPolicy::source_poll`], via [`Backoff`]) — each keeping its
/// exact historical schedule. The sleep for (1-based) attempt `k` is
/// `min(base * 2^(k-1), cap)`, optionally stretched by deterministic
/// jitter, and never extends past an armed deadline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt; `0` means fail fast.
    pub max_retries: u32,
    /// Sleep before the first retry.
    pub base: Duration,
    /// Sleep ceiling.
    pub cap: Duration,
    /// When set, sleeps are stretched by up to 25% pseudo-randomly —
    /// deterministic per (seed, attempt), from [`crate::rng`] — so
    /// synchronized retry storms decorrelate reproducibly.
    pub jitter_seed: Option<u64>,
    /// When set, a sleep never extends past this instant and no retry
    /// is attempted after it — a retry loop cannot eat the wall-clock
    /// budget of the search around it.
    pub deadline: Option<Instant>,
}

impl RetryPolicy {
    pub const fn new(max_retries: u32, base: Duration, cap: Duration) -> Self {
        RetryPolicy {
            max_retries,
            base,
            cap,
            jitter_seed: None,
            deadline: None,
        }
    }

    /// The checkpoint atomic-write schedule: 3 retries sleeping
    /// 4/8/16/32 ms (historically `2 << tries` capped at 32).
    pub const fn checkpoint() -> Self {
        RetryPolicy::new(3, Duration::from_millis(4), Duration::from_millis(32))
    }

    /// The spill-tier I/O schedule for a configured retry budget:
    /// 2/4/8/16 ms, capped at 16 (historically `(1 << attempt).min(16)`).
    pub const fn spill(max_retries: u32) -> Self {
        RetryPolicy::new(
            max_retries,
            Duration::from_millis(2),
            Duration::from_millis(16),
        )
    }

    /// The idle-polling schedule of [`crate::FollowFileSource`]: 1 ms
    /// doubling to 100 ms. Unbounded — idle polling never "gives up".
    pub const fn source_poll() -> Self {
        RetryPolicy::new(
            u32::MAX,
            Duration::from_millis(1),
            Duration::from_millis(100),
        )
    }

    /// The MDFS idle-poll schedule: 1 ms doubling to 16 ms, so a busy
    /// feed is picked up within a millisecond while a long-idle monitor
    /// stops burning CPU.
    pub const fn mdfs_poll() -> Self {
        RetryPolicy::new(
            u32::MAX,
            Duration::from_millis(1),
            Duration::from_millis(16),
        )
    }

    pub fn with_jitter(mut self, seed: u64) -> Self {
        self.jitter_seed = Some(seed);
        self
    }

    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// The sleep before (1-based) retry `attempt`, before jitter and
    /// deadline clamping: `min(base * 2^(attempt-1), cap)`.
    pub fn sleep_for(&self, attempt: u32) -> Duration {
        let shift = attempt.saturating_sub(1).min(20);
        self.base
            .checked_mul(1u32 << shift)
            .map_or(self.cap, |d| d.min(self.cap))
    }

    /// [`RetryPolicy::sleep_for`] with jitter applied (when a seed is
    /// armed) and clamped to the remaining deadline budget.
    pub fn delay_for(&self, attempt: u32) -> Duration {
        let mut d = self.sleep_for(attempt);
        if let Some(seed) = self.jitter_seed {
            // Stateless per (seed, attempt) so concurrent sites with the
            // same seed still decorrelate and replays are exact.
            let mut r = SplitMix64::new(
                seed ^ (u64::from(attempt)).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            );
            let stretch = r.gen_index(256) as u32; // 0..256 -> 0..25%
            d += d.mul_f64(f64::from(stretch) / 1024.0);
        }
        if let Some(deadline) = self.deadline {
            d = d.min(deadline.saturating_duration_since(Instant::now()));
        }
        d
    }

    /// True when the deadline (if any) has passed — no further retry
    /// should be attempted.
    pub fn expired(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Run `op` under this policy, sleeping through `sleep` (injected
    /// so tests can observe the schedule). `op` receives the 0-based
    /// attempt index.
    pub fn run_with_sleep<T, E>(
        &self,
        sleep: &mut dyn FnMut(Duration),
        op: &mut dyn FnMut(u32) -> Result<T, E>,
    ) -> RetryOutcome<T, E> {
        let mut attempt = 0u32;
        loop {
            match op(attempt) {
                Ok(v) => {
                    return RetryOutcome {
                        result: Ok(v),
                        retries: attempt,
                    }
                }
                Err(e) => {
                    if attempt >= self.max_retries || self.expired() {
                        return RetryOutcome {
                            result: Err(e),
                            retries: attempt,
                        };
                    }
                    attempt += 1;
                    sleep(self.delay_for(attempt));
                }
            }
        }
    }

    /// [`RetryPolicy::run_with_sleep`] sleeping on the current thread.
    pub fn run<T, E>(&self, op: &mut dyn FnMut(u32) -> Result<T, E>) -> RetryOutcome<T, E> {
        self.run_with_sleep(&mut std::thread::sleep, op)
    }
}

/// What a [`RetryPolicy`] run produced: the final result plus how many
/// retries it cost — the number fed into `fault.<site>.retries`.
#[derive(Debug)]
pub struct RetryOutcome<T, E> {
    pub result: Result<T, E>,
    /// Transient failures absorbed before the final result (0 on a
    /// first-attempt success).
    pub retries: u32,
}

/// Stateful exponential backoff over a [`RetryPolicy`] schedule, for
/// idle-polling sites where "attempts" are spread over time instead of
/// wrapped in one loop ([`crate::FollowFileSource`], the MDFS poll
/// loop).
#[derive(Clone, Copy, Debug)]
pub struct Backoff {
    policy: RetryPolicy,
    attempt: u32,
}

impl Backoff {
    pub fn new(policy: RetryPolicy) -> Self {
        Backoff { policy, attempt: 0 }
    }

    /// The next idle delay: doubles per call from the policy's base up
    /// to its cap.
    pub fn next_delay(&mut self) -> Duration {
        self.attempt = self.attempt.saturating_add(1);
        self.policy.delay_for(self.attempt)
    }

    /// The delay the next [`Backoff::next_delay`] call would return
    /// (pre-jitter) — for tests pinning the schedule.
    pub fn peek(&self) -> Duration {
        self.policy.sleep_for(self.attempt.saturating_add(1))
    }

    /// Data arrived: start over at the base delay.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

// -------------------------------------------- checkpoint write faults

/// Which faults to inject, and how often, on checkpoint atomic writes —
/// the previously real-filesystem-only failure path of autosave.
///
/// Each `*_every` field counts write *attempts* (so retried writes
/// advance the schedule); `0` disables that fault.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CheckpointFaultPlan {
    /// Fail every n-th write attempt with a transient I/O error before
    /// anything touches disk.
    pub io_error_every: u64,
    /// On every n-th write attempt, write only half the bytes to the
    /// temp file, then fail — the torn write of a crashing process.
    /// The destination is never touched, so this also proves the
    /// atomic-rename contract holds under injection.
    pub short_write_every: u64,
    /// After this many write attempts, every further attempt fails
    /// permanently — the disk-full (ENOSPC) model retries cannot save.
    pub disk_full_after: Option<u64>,
}

impl CheckpointFaultPlan {
    pub fn is_armed(&self) -> bool {
        *self != CheckpointFaultPlan::default()
    }
}

/// What a [`CheckpointFaultInjector`] decided for one write attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheckpointWriteFault {
    /// No fault: perform the real write.
    Pass,
    /// Fail with an injected transient I/O error.
    IoError,
    /// Tear the temp file (half the bytes), then fail.
    ShortWrite,
    /// Fail permanently: the device is full.
    DiskFull,
}

/// The armed, stateful form of a [`CheckpointFaultPlan`]: one injector
/// spans a whole run, so the schedule counts attempts across every
/// autosave.
#[derive(Debug)]
pub struct CheckpointFaultInjector {
    plan: CheckpointFaultPlan,
    attempts: u64,
    injected: u64,
}

impl CheckpointFaultInjector {
    pub fn new(plan: CheckpointFaultPlan) -> Self {
        CheckpointFaultInjector {
            plan,
            attempts: 0,
            injected: 0,
        }
    }

    pub fn plan(&self) -> CheckpointFaultPlan {
        self.plan
    }

    /// Faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Decide the fate of the next write attempt. Permanent faults
    /// (disk full) outrank scheduled transient ones.
    pub fn next_fault(&mut self) -> CheckpointWriteFault {
        self.attempts += 1;
        if let Some(after) = self.plan.disk_full_after {
            if self.attempts > after {
                self.injected += 1;
                return CheckpointWriteFault::DiskFull;
            }
        }
        if every_due(self.attempts, self.plan.short_write_every) {
            self.injected += 1;
            return CheckpointWriteFault::ShortWrite;
        }
        if every_due(self.attempts, self.plan.io_error_every) {
            self.injected += 1;
            return CheckpointWriteFault::IoError;
        }
        CheckpointWriteFault::Pass
    }
}

fn every_due(op: u64, every: u64) -> bool {
    every > 0 && op.is_multiple_of(every)
}

// ------------------------------------------------------- unified plan

/// A composable, seeded fault plan arming any combination of the three
/// fault sites in a single run:
///
/// * **source** — the trace feed ([`SourceFaultPlan`] /
///   [`FaultySource`]): corrupt/duplicated/truncated lines, stalls,
///   injected read errors and short reads, recovered per
///   [`RecoveryPolicy`];
/// * **spill** — the disk spill tier ([`SpillFaultPlan`] /
///   [`crate::spill::FaultySpillDir`]): write/read I/O errors, short
///   writes, bit flips, hard disk-full;
/// * **checkpoint** — autosave atomic writes
///   ([`CheckpointFaultPlan`]): I/O errors, torn temp files, ENOSPC.
///
/// A plan is plain data: arming happens where each subsystem is built
/// ([`FaultPlan::build_source`], [`FaultPlan::apply`],
/// [`FaultPlan::checkpoint_injector`]), and every hook is zero-cost
/// when the corresponding site is `None`.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// The seed this plan was composed from ([`FaultPlan::random`]);
    /// `0` for hand-built plans. Recorded so a failing chaos run is
    /// reproducible from its log line alone.
    pub seed: u64,
    pub source: Option<SourceFaultPlan>,
    /// Recovery policy for the fault-injected source (ignored unless
    /// `source` is armed).
    pub source_recovery: RecoveryPolicy,
    pub spill: Option<SpillFaultPlan>,
    pub checkpoint: Option<CheckpointFaultPlan>,
}

impl FaultPlan {
    /// True when at least one fault site is armed.
    pub fn is_armed(&self) -> bool {
        self.source.is_some() || self.spill.is_some() || self.checkpoint.is_some()
    }

    /// True when the plan cannot change *which events the analysis
    /// sees*: every armed fault either retry-recovers losslessly,
    /// degrades to a typed `Inconclusive`, or is warn-and-continue.
    /// Only lossless plans promise verdict + TE/GE/RE/SA equivalence
    /// to the fault-free reference; lossy source faults (corruption,
    /// truncation, duplication, or read faults under
    /// [`RecoveryPolicy::Fail`]) deliver a *different trace*, for which
    /// only the robustness invariants hold.
    pub fn is_lossless(&self) -> bool {
        match &self.source {
            None => true,
            Some(s) => {
                s.corrupt_every == 0
                    && s.duplicate_every == 0
                    && s.truncate_every == 0
                    && (self.source_recovery == RecoveryPolicy::Restart
                        || (s.read_error_every == 0 && s.short_read_every == 0))
            }
        }
    }

    /// Compose a random plan from a seed: 1–3 sites armed, each with
    /// 1–2 fault kinds at moderate frequencies. Deterministic per seed;
    /// every composed plan terminates (no `read_error_every == 1`
    /// livelock under `Restart`, bounded stalls).
    pub fn random(seed: u64) -> FaultPlan {
        let mut r = SplitMix64::new(seed ^ 0xc3a5_c85c_97cb_3127);
        let mut plan = FaultPlan {
            seed,
            ..FaultPlan::default()
        };
        let mask = 1 + r.gen_index(7); // 1..=7: at least one site armed
        if mask & 1 != 0 {
            plan.source_recovery = if r.gen_bool() {
                RecoveryPolicy::Restart
            } else {
                RecoveryPolicy::Fail
            };
            let mut s = SourceFaultPlan::default();
            // 1–2 kinds out of six; frequencies 2..=6 so schedules fire
            // repeatedly on small traces without livelocking.
            for _ in 0..(1 + r.gen_index(2)) {
                let every = 2 + r.gen_index(5);
                match r.gen_index(6) {
                    0 => s.corrupt_every = every,
                    1 => s.duplicate_every = every,
                    2 => s.truncate_every = every,
                    3 => {
                        s.stall_every = every;
                        s.stall_polls = 1 + r.gen_index(3);
                    }
                    4 => s.read_error_every = every,
                    _ => s.short_read_every = every,
                }
            }
            plan.source = Some(s);
        }
        if mask & 2 != 0 {
            let mut s = SpillFaultPlan::default();
            for _ in 0..(1 + r.gen_index(2)) {
                let every = 2 + r.gen_index(5) as u64;
                match r.gen_index(4) {
                    0 => s.write_error_every = every,
                    1 => s.short_write_every = every,
                    2 => s.read_error_every = every,
                    _ => s.flip_bit_every = every,
                }
            }
            plan.spill = Some(s);
        }
        if mask & 4 != 0 {
            let mut c = CheckpointFaultPlan::default();
            match r.gen_index(3) {
                0 => c.io_error_every = 2 + r.gen_index(3) as u64,
                1 => c.short_write_every = 2 + r.gen_index(3) as u64,
                _ => c.disk_full_after = Some(1 + r.gen_index(4) as u64),
            }
            plan.checkpoint = Some(c);
        }
        plan
    }

    /// Parse the `--fault-plan` syntax: comma-separated `key=value`
    /// pairs where keys are `seed` or `site.field`, e.g.
    /// `source.read_error_every=3,source.recovery=restart,spill.flip_bit_every=2,checkpoint.io_error_every=2`.
    /// Naming any `site.*` key arms that site. [`FaultPlan::describe`]
    /// emits exactly this syntax.
    pub fn parse(spec: &str) -> Result<FaultPlan, FaultError> {
        let mut plan = FaultPlan::default();
        for pair in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let Some((key, value)) = pair.split_once('=') else {
                return Err(FaultError::Parse(format!(
                    "`{}` is not a key=value pair",
                    pair
                )));
            };
            let (key, value) = (key.trim(), value.trim());
            let num = |what: &str| {
                value.parse::<u64>().map_err(|_| {
                    FaultError::Parse(format!("{} needs a number, got `{}`", what, value))
                })
            };
            match key {
                "seed" => plan.seed = num(key)?,
                "source.recovery" => {
                    plan.source_recovery = match value.to_ascii_lowercase().as_str() {
                        "restart" => RecoveryPolicy::Restart,
                        "fail" => RecoveryPolicy::Fail,
                        other => {
                            return Err(FaultError::Parse(format!(
                                "source.recovery must be restart|fail, got `{}`",
                                other
                            )))
                        }
                    };
                    plan.source.get_or_insert_with(SourceFaultPlan::default);
                }
                _ if key.starts_with("source.") => {
                    let s = plan.source.get_or_insert_with(SourceFaultPlan::default);
                    let v = num(key)? as usize;
                    match &key["source.".len()..] {
                        "corrupt_every" => s.corrupt_every = v,
                        "duplicate_every" => s.duplicate_every = v,
                        "truncate_every" => s.truncate_every = v,
                        "stall_every" => s.stall_every = v,
                        "stall_polls" => s.stall_polls = v,
                        "read_error_every" => s.read_error_every = v,
                        "short_read_every" => s.short_read_every = v,
                        other => {
                            return Err(FaultError::Parse(format!(
                                "unknown source fault `{}`",
                                other
                            )))
                        }
                    }
                }
                _ if key.starts_with("spill.") => {
                    let s = plan.spill.get_or_insert_with(SpillFaultPlan::default);
                    let v = num(key)?;
                    match &key["spill.".len()..] {
                        "write_error_every" => s.write_error_every = v,
                        "short_write_every" => s.short_write_every = v,
                        "read_error_every" => s.read_error_every = v,
                        "flip_bit_every" => s.flip_bit_every = v,
                        "hard_writes_after" => s.hard_writes_after = Some(v),
                        other => {
                            return Err(FaultError::Parse(format!(
                                "unknown spill fault `{}`",
                                other
                            )))
                        }
                    }
                }
                _ if key.starts_with("checkpoint.") => {
                    let c = plan
                        .checkpoint
                        .get_or_insert_with(CheckpointFaultPlan::default);
                    let v = num(key)?;
                    match &key["checkpoint.".len()..] {
                        "io_error_every" => c.io_error_every = v,
                        "short_write_every" => c.short_write_every = v,
                        "disk_full_after" => c.disk_full_after = Some(v),
                        other => {
                            return Err(FaultError::Parse(format!(
                                "unknown checkpoint fault `{}`",
                                other
                            )))
                        }
                    }
                }
                other => {
                    return Err(FaultError::Parse(format!(
                        "unknown fault site in `{}` (expected seed, source.*, spill.* or checkpoint.*)",
                        other
                    )))
                }
            }
        }
        Ok(plan)
    }

    /// Render the plan in the exact syntax [`FaultPlan::parse`]
    /// accepts, so `chaos:` log lines are replayable verbatim via
    /// `--fault-plan`.
    pub fn describe(&self) -> String {
        let mut parts: Vec<String> = Vec::new();
        if self.seed != 0 {
            parts.push(format!("seed={}", self.seed));
        }
        if let Some(s) = &self.source {
            for (name, v) in [
                ("corrupt_every", s.corrupt_every),
                ("duplicate_every", s.duplicate_every),
                ("truncate_every", s.truncate_every),
                ("stall_every", s.stall_every),
                ("stall_polls", s.stall_polls),
                ("read_error_every", s.read_error_every),
                ("short_read_every", s.short_read_every),
            ] {
                if v > 0 {
                    parts.push(format!("source.{}={}", name, v));
                }
            }
            parts.push(format!(
                "source.recovery={}",
                match self.source_recovery {
                    RecoveryPolicy::Restart => "restart",
                    RecoveryPolicy::Fail => "fail",
                }
            ));
        }
        if let Some(s) = &self.spill {
            for (name, v) in [
                ("write_error_every", s.write_error_every),
                ("short_write_every", s.short_write_every),
                ("read_error_every", s.read_error_every),
                ("flip_bit_every", s.flip_bit_every),
            ] {
                if v > 0 {
                    parts.push(format!("spill.{}={}", name, v));
                }
            }
            if let Some(after) = s.hard_writes_after {
                parts.push(format!("spill.hard_writes_after={}", after));
            }
        }
        if let Some(c) = &self.checkpoint {
            if c.io_error_every > 0 {
                parts.push(format!("checkpoint.io_error_every={}", c.io_error_every));
            }
            if c.short_write_every > 0 {
                parts.push(format!("checkpoint.short_write_every={}", c.short_write_every));
            }
            if let Some(after) = c.disk_full_after {
                parts.push(format!("checkpoint.disk_full_after={}", after));
            }
        }
        if parts.is_empty() {
            "unarmed".to_string()
        } else {
            parts.join(",")
        }
    }

    /// Arm the spill site: install the spill sub-plan into the
    /// analysis options (no-op when the site is not armed).
    pub fn apply(&self, options: &mut crate::options::AnalysisOptions) {
        if self.spill.is_some() {
            options.spill.fault_plan = self.spill;
        }
    }

    /// Arm the source site: a [`FaultySource`] over rendered trace
    /// text, with this plan's recovery policy. `None` when the site is
    /// not armed.
    pub fn build_source(
        &self,
        trace_text: &str,
        module: Option<AnalyzedModule>,
    ) -> Option<FaultySource> {
        self.source.map(|plan| {
            FaultySource::new(trace_text, module, plan).with_recovery(self.source_recovery)
        })
    }

    /// Arm the checkpoint site: the stateful injector autosave threads
    /// through [`crate::Checkpoint::write_to_with`]. `None` when the
    /// site is not armed.
    pub fn checkpoint_injector(&self) -> Option<CheckpointFaultInjector> {
        self.checkpoint.map(CheckpointFaultInjector::new)
    }
}

/// Poll a (typically fault-injected) source until eof, collecting the
/// delivered events into a static trace plus the source's diagnostics.
/// This is how the CLI arms source faults on a static analysis: the
/// whole read path runs through the injector, then the search sees the
/// trace the degraded feed actually delivered. The poll budget bounds
/// stall-heavy plans with a typed error instead of a hang.
pub fn drain_source(
    source: &mut dyn TraceSource,
    max_polls: usize,
) -> Result<(Trace, Vec<String>), FaultError> {
    let mut events = Vec::new();
    for _ in 0..max_polls {
        let p = source.poll();
        events.extend(p.events);
        if p.eof {
            return Ok((Trace::new(events), source.diagnostics()));
        }
    }
    Err(FaultError::SourceStalled { polls: max_polls })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sleep_schedule_matches_the_historical_sites() {
        let cp = RetryPolicy::checkpoint();
        assert_eq!(
            (1..=5).map(|a| cp.sleep_for(a).as_millis()).collect::<Vec<_>>(),
            vec![4, 8, 16, 32, 32],
            "checkpoint kept its 2<<tries schedule"
        );
        let sp = RetryPolicy::spill(3);
        assert_eq!(
            (1..=5).map(|a| sp.sleep_for(a).as_millis()).collect::<Vec<_>>(),
            vec![2, 4, 8, 16, 16],
            "spill kept its (1<<attempt).min(16) schedule"
        );
        let fp = RetryPolicy::source_poll();
        assert_eq!(fp.sleep_for(1).as_millis(), 1);
        assert_eq!(fp.sleep_for(8).as_millis(), 100, "caps at 100ms");
        assert_eq!(fp.sleep_for(10_000).as_millis(), 100, "no overflow at depth");
    }

    #[test]
    fn run_counts_retries_and_bounds_attempts() {
        let policy = RetryPolicy::new(3, Duration::from_millis(1), Duration::from_millis(4));
        let mut slept = Vec::new();
        let mut calls = 0;
        let out = policy.run_with_sleep(&mut |d| slept.push(d), &mut |_| {
            calls += 1;
            if calls < 3 {
                Err("transient")
            } else {
                Ok(calls)
            }
        });
        assert_eq!(out.result, Ok(3));
        assert_eq!(out.retries, 2);
        assert_eq!(slept.len(), 2);

        let mut calls = 0;
        let out: RetryOutcome<(), _> =
            policy.run_with_sleep(&mut |_| {}, &mut |_| {
                calls += 1;
                Err("dead")
            });
        assert_eq!(out.result, Err("dead"));
        assert_eq!(calls, 4, "1 try + 3 retries");
        assert_eq!(out.retries, 3);
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let p = RetryPolicy::new(3, Duration::from_millis(100), Duration::from_millis(100))
            .with_jitter(42);
        let a = p.delay_for(1);
        let b = p.delay_for(1);
        assert_eq!(a, b, "same (seed, attempt) must jitter identically");
        assert!(a >= Duration::from_millis(100));
        assert!(a <= Duration::from_millis(125), "jitter adds at most 25%: {:?}", a);
        let c = RetryPolicy::new(3, Duration::from_millis(100), Duration::from_millis(100))
            .with_jitter(43)
            .delay_for(1);
        assert_ne!(a, c, "different seeds decorrelate");
    }

    #[test]
    fn deadline_stops_retries_and_clamps_sleeps() {
        let p = RetryPolicy::new(100, Duration::from_millis(50), Duration::from_millis(50))
            .with_deadline(Instant::now() + Duration::from_millis(5));
        let mut calls = 0;
        let t0 = Instant::now();
        let out: RetryOutcome<(), _> = p.run(&mut |_| {
            calls += 1;
            Err("down")
        });
        assert!(out.result.is_err());
        assert!(calls < 100, "deadline must cut the retry budget: {}", calls);
        assert!(
            t0.elapsed() < Duration::from_millis(200),
            "sleeps must clamp to the deadline: {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn backoff_doubles_and_resets() {
        let mut b = Backoff::new(RetryPolicy::source_poll());
        assert_eq!(b.peek(), Duration::from_millis(1));
        let seq: Vec<u128> = (0..9).map(|_| b.next_delay().as_millis()).collect();
        assert_eq!(seq, vec![1, 2, 4, 8, 16, 32, 64, 100, 100]);
        b.reset();
        assert_eq!(b.peek(), Duration::from_millis(1));
    }

    #[test]
    fn checkpoint_injector_schedules_and_counts() {
        let mut inj = CheckpointFaultInjector::new(CheckpointFaultPlan {
            io_error_every: 2,
            ..CheckpointFaultPlan::default()
        });
        assert_eq!(inj.next_fault(), CheckpointWriteFault::Pass);
        assert_eq!(inj.next_fault(), CheckpointWriteFault::IoError);
        assert_eq!(inj.next_fault(), CheckpointWriteFault::Pass);
        assert_eq!(inj.next_fault(), CheckpointWriteFault::IoError);
        assert_eq!(inj.injected(), 2);

        let mut inj = CheckpointFaultInjector::new(CheckpointFaultPlan {
            disk_full_after: Some(1),
            short_write_every: 2,
            ..CheckpointFaultPlan::default()
        });
        assert_eq!(inj.next_fault(), CheckpointWriteFault::Pass);
        assert_eq!(
            inj.next_fault(),
            CheckpointWriteFault::DiskFull,
            "permanent faults outrank scheduled ones"
        );
        assert_eq!(inj.next_fault(), CheckpointWriteFault::DiskFull);
    }

    #[test]
    fn random_plans_are_deterministic_armed_and_terminating() {
        for seed in 0..200 {
            let p = FaultPlan::random(seed);
            assert_eq!(p, FaultPlan::random(seed), "seed {} must replay", seed);
            assert!(p.is_armed(), "seed {} must arm at least one site", seed);
            assert_eq!(p.seed, seed);
            if let Some(s) = &p.source {
                assert!(
                    s.read_error_every != 1,
                    "seed {}: read_error_every=1 livelocks under Restart",
                    seed
                );
                assert!(s.stall_polls <= 3, "seed {}: stalls stay bounded", seed);
            }
        }
        assert_ne!(FaultPlan::random(1), FaultPlan::random(2));
    }

    #[test]
    fn parse_describe_round_trips() {
        for seed in 0..50 {
            let p = FaultPlan::random(seed);
            let parsed = FaultPlan::parse(&p.describe())
                .unwrap_or_else(|e| panic!("seed {}: {}", seed, e));
            assert_eq!(parsed, p, "seed {}: describe() must parse back", seed);
        }
    }

    #[test]
    fn parse_rejects_malformed_specs_with_typed_errors() {
        for bad in [
            "nonsense",
            "source.read_error_every",
            "source.unknown_fault=2",
            "spill.write_error_every=banana",
            "orbit.decay_every=3",
            "source.recovery=sideways",
        ] {
            match FaultPlan::parse(bad) {
                Err(FaultError::Parse(_)) => {}
                other => panic!("`{}` must fail to parse, got {:?}", bad, other),
            }
        }
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::default());
    }

    #[test]
    fn lossless_classification() {
        let mut p = FaultPlan {
            source: Some(SourceFaultPlan {
                read_error_every: 3,
                stall_every: 2,
                stall_polls: 1,
                ..SourceFaultPlan::default()
            }),
            source_recovery: RecoveryPolicy::Restart,
            ..FaultPlan::default()
        };
        assert!(p.is_lossless(), "retried read faults deliver the full trace");
        p.source_recovery = RecoveryPolicy::Fail;
        assert!(!p.is_lossless(), "read faults under Fail cut the trace short");
        p.source.as_mut().unwrap().read_error_every = 0;
        p.source.as_mut().unwrap().short_read_every = 0;
        assert!(p.is_lossless(), "stalls alone never change the trace");
        p.source.as_mut().unwrap().corrupt_every = 4;
        assert!(!p.is_lossless(), "corruption always loses events");
        p.source = None;
        p.spill = Some(SpillFaultPlan {
            hard_writes_after: Some(1),
            ..SpillFaultPlan::default()
        });
        p.checkpoint = Some(CheckpointFaultPlan {
            io_error_every: 1,
            ..CheckpointFaultPlan::default()
        });
        assert!(
            p.is_lossless(),
            "spill/checkpoint faults degrade typed or warn-and-continue, never mis-verdict"
        );
    }

    #[test]
    fn drain_source_collects_the_delivered_trace() {
        let plan = FaultPlan {
            source: Some(SourceFaultPlan {
                stall_every: 1,
                stall_polls: 2,
                read_error_every: 3,
                ..SourceFaultPlan::default()
            }),
            source_recovery: RecoveryPolicy::Restart,
            ..FaultPlan::default()
        };
        let mut src = plan
            .build_source("in A.x\nin A.y\nin A.x\neof\n", None)
            .expect("source site armed");
        let (trace, faults) = drain_source(&mut src, 1000).expect("drains");
        assert_eq!(trace.events.len(), 3, "Restart retries deliver every event");
        assert!(
            faults.iter().any(|f| f.contains("injected read error")),
            "{:?}",
            faults
        );

        // A stall-forever plan exhausts the poll budget with a typed error.
        let mut src = FaultySource::new(
            "in A.x\neof\n",
            None,
            SourceFaultPlan {
                stall_every: 1,
                stall_polls: usize::MAX,
                ..SourceFaultPlan::default()
            },
        );
        match drain_source(&mut src, 50) {
            Err(FaultError::SourceStalled { polls: 50 }) => {}
            other => panic!("expected SourceStalled, got {:?}", other.map(|_| ())),
        }
    }
}
