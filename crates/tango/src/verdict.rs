//! Verdicts and analysis reports.

use crate::stats::SearchStats;
use estelle_runtime::RuntimeError;
use std::fmt;

/// How far the best attempt got before the trace stopped being
/// explainable — the diagnostic an interoperability "arbiter" reports for
/// an invalid trace.
#[derive(Clone, Debug)]
pub struct BestEffort {
    /// Number of trace events the best path consumed or verified.
    pub events_explained: usize,
    /// Total events in the trace.
    pub events_total: usize,
    /// The transitions fired along that best path.
    pub path: Vec<String>,
}

impl fmt::Display for BestEffort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "best attempt explained {}/{} events; trace first becomes \
             inexplicable around event {}",
            self.events_explained,
            self.events_total,
            self.events_explained + 1
        )
    }
}

/// The outcome of a trace analysis (§2 and §3.1.2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// A path consuming all inputs and verifying all outputs exists.
    Valid,
    /// The search space is exhausted and no such path exists.
    Invalid,
    /// Dynamic mode: a PGAV-node exists — everything received so far is
    /// explainable, more data may arrive ("the trace is valid so far").
    ValidSoFar,
    /// Dynamic mode: only non-all-verified PG-nodes remain. The paper:
    /// "the trace is likely to be invalid, but still, no conclusive result
    /// can be given".
    LikelyInvalid,
    /// The search hit a resource limit before reaching a conclusion.
    Inconclusive(InconclusiveReason),
}

/// Why a search stopped without a conclusive verdict.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InconclusiveReason {
    TransitionLimit,
    DepthLimit,
    PgNodeLimit,
    /// The wall-clock deadline (`SearchLimits::max_wall_time`) expired.
    TimeLimit,
    /// The snapshot-memory budget (`SearchLimits::max_state_bytes`) was
    /// exceeded.
    MemoryLimit,
    /// The disk spill tier failed unrecoverably (out of space after
    /// retries, or corruption detected on read-back). Details are in
    /// [`AnalysisReport::spill_faults`].
    SpillFailure,
}

impl Verdict {
    pub fn is_valid(&self) -> bool {
        matches!(self, Verdict::Valid)
    }

    pub fn is_conclusive(&self) -> bool {
        matches!(self, Verdict::Valid | Verdict::Invalid)
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Valid => f.write_str("valid"),
            Verdict::Invalid => f.write_str("invalid"),
            Verdict::ValidSoFar => f.write_str("valid so far"),
            Verdict::LikelyInvalid => f.write_str("likely invalid (inconclusive)"),
            Verdict::Inconclusive(r) => write!(f, "inconclusive ({:?})", r),
        }
    }
}

/// Everything a trace-analysis run reports.
#[derive(Clone, Debug)]
pub struct AnalysisReport {
    pub verdict: Verdict,
    pub stats: SearchStats,
    /// For a valid trace: the names of the fired transitions along the
    /// accepting path — the diagnostic an "arbiter" use case wants.
    pub witness: Option<Vec<String>>,
    /// Runtime errors encountered on abandoned branches (specification
    /// bugs on paths the search backed out of).
    pub spec_errors: Vec<RuntimeError>,
    /// When the §2.4.1 initial-state search succeeded from a non-default
    /// state, its name.
    pub initial_state_used: Option<String>,
    /// For invalid traces: the most-explaining path found (static DFS
    /// only), localizing where the trace stops being explainable.
    pub best_effort: Option<BestEffort>,
    /// When a static analysis stopped on a resource limit: the frozen
    /// search state. Feed it to [`crate::TraceAnalyzer::analyze_resume`]
    /// with raised limits to continue exactly where the search stopped
    /// (no work is repeated; counters continue rather than restart).
    pub checkpoint: Option<Box<crate::checkpoint::Checkpoint>>,
    /// Faults the dynamic trace source observed while feeding (parse
    /// errors, file truncation, a dead feeder …). Empty for static runs.
    pub source_faults: Vec<String>,
    /// Faults from the disk spill tier: reopen warnings (torn crash
    /// tails) and, on `Inconclusive(SpillFailure)`, the unrecoverable
    /// error that degraded the run. Empty when spilling is off or clean.
    pub spill_faults: Vec<String>,
    /// Checkpoint autosave failures. Autosave is warn-and-continue — a
    /// failing save must not kill a healthy search — but the failure has
    /// to outlive stderr: a run that dies later would otherwise resume
    /// from an older checkpoint than the operator believes exists.
    pub checkpoint_faults: Vec<String>,
}

impl AnalysisReport {
    pub fn new(verdict: Verdict, stats: SearchStats) -> Self {
        AnalysisReport {
            verdict,
            stats,
            witness: None,
            spec_errors: Vec::new(),
            initial_state_used: None,
            best_effort: None,
            checkpoint: None,
            source_faults: Vec::new(),
            spill_faults: Vec::new(),
            checkpoint_faults: Vec::new(),
        }
    }
}

impl fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "verdict: {}  [{}]", self.verdict, self.stats)?;
        if let Some(s) = &self.initial_state_used {
            write!(f, " (from initial state {})", s)?;
        }
        if let Some(b) = &self.best_effort {
            write!(f, "\n{}", b)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conclusiveness() {
        assert!(Verdict::Valid.is_conclusive());
        assert!(Verdict::Invalid.is_conclusive());
        assert!(!Verdict::ValidSoFar.is_conclusive());
        assert!(!Verdict::LikelyInvalid.is_conclusive());
        assert!(!Verdict::Inconclusive(InconclusiveReason::TransitionLimit).is_conclusive());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Verdict::Valid.to_string(), "valid");
        assert!(Verdict::Inconclusive(InconclusiveReason::DepthLimit)
            .to_string()
            .contains("DepthLimit"));
    }
}
