//! The analyzer's machine environment: trace cursors + order checking.
//!
//! [`TraceEnv`] feeds the machine inputs from the trace and verifies the
//! machine's outputs against it. All of §2.4's relative-order options are
//! enforced here, reduced to integer comparisons on global trace positions:
//!
//! * within one (IP, direction) stream: always in trace order (FIFO
//!   cursors);
//! * *inputs w.r.t. outputs*: the input being consumed must precede the
//!   next unverified output at the same IP;
//! * *outputs w.r.t. inputs*: the output being verified must precede the
//!   next unconsumed input at the same IP;
//! * *IP order, inputs*: the input being consumed must be the globally
//!   earliest unconsumed input;
//! * *IP order, outputs*: verified outputs must form a prefix of the
//!   global output order — checked at end-of-fire so that multiple outputs
//!   emitted by a single transition block to *different* IPs may appear
//!   permuted in the trace, the special case §2.4.2 calls out.

use crate::options::{AnalysisOptions, OrderOptions};
use crate::trace::{Dir, ResolvedTrace};
use estelle_frontend::sema::model::AnalyzedModule;
use estelle_runtime::{InputSource, OutputSink, QueueHead, Value};

/// Cursor state: the part of the environment saved and restored together
/// with the machine state during backtracking (§2.3 "queue states").
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Cursors {
    pub input: Vec<usize>,
    pub output: Vec<usize>,
}

impl Cursors {
    fn new(ip_count: usize) -> Self {
        Cursors {
            input: vec![0; ip_count],
            output: vec![0; ip_count],
        }
    }

    /// True when every observed stream is fully consumed/verified.
    fn done(&self, trace: &ResolvedTrace, disabled: &[bool], unobserved: &[bool]) -> bool {
        for ip in 0..self.input.len() {
            if unobserved[ip] {
                // §5.2: an undefined queue is assumed empty.
                continue;
            }
            if self.input[ip] != trace.inputs[ip].len() {
                return false;
            }
            if !disabled[ip] && self.output[ip] != trace.outputs[ip].len() {
                return false;
            }
        }
        true
    }
}

/// Why the last `emit` rejected an output.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// The output stream at that IP is exhausted, but the trace is dynamic
    /// and may still grow: the branch should be retried when data arrives
    /// rather than recorded as failed.
    MayGrow,
    /// Plain mismatch: wrong interaction, wrong parameters, exhausted
    /// static stream, or an order violation.
    Mismatch,
}

/// The trace-backed environment driving one search.
pub struct TraceEnv {
    pub trace: ResolvedTrace,
    pub cursors: Cursors,
    order: OrderOptions,
    disabled: Vec<bool>,
    unobserved: Vec<bool>,
    /// Dynamic mode: streams that run out may still grow until `eof`.
    pub dynamic: bool,
    pub eof: bool,
    /// Global indices of outputs verified during the current fire.
    fire_outputs: Vec<usize>,
    /// Set when the last rejection was [`RejectReason::MayGrow`].
    pub last_reject: Option<RejectReason>,
}

/// Setup failures (bad option/trace combinations).
#[derive(Debug, Clone)]
pub struct EnvError(pub String);

impl std::fmt::Display for EnvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for EnvError {}

impl TraceEnv {
    /// Build an environment for `trace` under `options`, resolving the
    /// option IP names against the module.
    pub fn new(
        module: &AnalyzedModule,
        trace: ResolvedTrace,
        options: &AnalysisOptions,
        dynamic: bool,
    ) -> Result<Self, EnvError> {
        let n = module.ips.len();
        let mut disabled = vec![false; n];
        let mut unobserved = vec![false; n];
        for name in &options.disabled_ips {
            let id = module
                .lookup_ip(name)
                .ok_or_else(|| EnvError(format!("disable_ip: unknown IP `{}`", name)))?;
            disabled[id.0 as usize] = true;
        }
        for name in &options.unobserved_ips {
            let id = module
                .lookup_ip(name)
                .ok_or_else(|| EnvError(format!("unobserved_ip: unknown IP `{}`", name)))?;
            unobserved[id.0 as usize] = true;
        }
        for e in &trace.events {
            if unobserved[e.ip] {
                return Err(EnvError(format!(
                    "trace contains an event at `{}`, which is declared unobserved",
                    module.ips[e.ip].name
                )));
            }
        }
        Ok(TraceEnv {
            cursors: Cursors::new(n),
            trace,
            order: options.order,
            disabled,
            unobserved,
            dynamic,
            eof: !dynamic,
            fire_outputs: Vec::new(),
            last_reject: None,
        })
    }

    /// Save the cursor state (paired with a machine-state save).
    pub fn save(&self) -> Cursors {
        self.cursors.clone()
    }

    /// Restore a previously saved cursor state.
    pub fn restore(&mut self, saved: &Cursors) {
        self.cursors = saved.clone();
    }

    /// All inputs consumed and all checked outputs verified?
    pub fn all_done(&self) -> bool {
        self.cursors
            .done(&self.trace, &self.disabled, &self.unobserved)
    }

    /// Begin a transition fire: clears the per-fire output record.
    pub fn begin_fire(&mut self) {
        self.fire_outputs.clear();
        self.last_reject = None;
    }

    /// Finish a transition fire; under IP-order checking, verify that the
    /// outputs verified so far still form a prefix of the global output
    /// order (allowing within-fire permutation across IPs).
    pub fn end_fire(&mut self) -> bool {
        if !self.order.ip_order || self.fire_outputs.is_empty() {
            return true;
        }
        let min_unverified = (0..self.cursors.output.len())
            .filter(|&ip| !self.disabled[ip] && !self.unobserved[ip])
            .filter_map(|ip| self.trace.outputs[ip].get(self.cursors.output[ip]).copied())
            .min();
        match min_unverified {
            None => true,
            Some(m) => {
                let ok = self.fire_outputs.iter().all(|&g| g < m);
                if !ok {
                    self.last_reject = Some(RejectReason::Mismatch);
                }
                ok
            }
        }
    }

    /// Whether an IP's inputs are unobserved (§5.2).
    pub fn is_unobserved(&self, ip: usize) -> bool {
        self.unobserved[ip]
    }

    /// Count of events not yet consumed/verified (diagnostics).
    pub fn outstanding(&self) -> usize {
        let mut n = 0;
        for ip in 0..self.cursors.input.len() {
            n += self.trace.inputs[ip].len() - self.cursors.input[ip];
            if !self.disabled[ip] {
                n += self.trace.outputs[ip].len() - self.cursors.output[ip];
            }
        }
        n
    }
}

impl InputSource for TraceEnv {
    fn head(&self, ip: usize) -> QueueHead {
        if self.unobserved[ip] {
            return QueueHead::Unobserved;
        }
        let stream = &self.trace.inputs[ip];
        let cur = self.cursors.input[ip];
        let Some(&gidx) = stream.get(cur) else {
            return if self.dynamic && !self.eof && !self.disabled[ip] {
                QueueHead::EmptyMayGrow
            } else {
                QueueHead::Empty
            };
        };
        // Inputs w.r.t. outputs: an unverified earlier output at the same
        // IP must be produced before this input may be consumed.
        if self.order.input_wrt_output {
            if let Some(&o) = self.trace.outputs[ip].get(self.cursors.output[ip]) {
                if o < gidx {
                    return QueueHead::Empty;
                }
            }
        }
        // IP order: this must be the globally earliest unconsumed input.
        if self.order.ip_order {
            for other in 0..self.cursors.input.len() {
                if other == ip || self.unobserved[other] {
                    continue;
                }
                if let Some(&g2) =
                    self.trace.inputs[other].get(self.cursors.input[other])
                {
                    if g2 < gidx {
                        return QueueHead::Empty;
                    }
                }
            }
        }
        let ev = &self.trace.events[gidx];
        debug_assert_eq!(ev.dir, Dir::In);
        QueueHead::Message {
            interaction: ev.interaction,
            params: ev.params.clone(),
        }
    }

    fn consume(&mut self, ip: usize) {
        self.cursors.input[ip] += 1;
        debug_assert!(self.cursors.input[ip] <= self.trace.inputs[ip].len());
    }
}

impl OutputSink for TraceEnv {
    fn emit(&mut self, ip: usize, interaction: usize, params: Vec<Value>) -> bool {
        // §2.4.3 / §5.2: outputs at disabled or unobserved IPs are always
        // considered valid.
        if self.disabled[ip] || self.unobserved[ip] {
            return true;
        }
        let cur = self.cursors.output[ip];
        let Some(&gidx) = self.trace.outputs[ip].get(cur) else {
            self.last_reject = Some(if self.dynamic && !self.eof {
                RejectReason::MayGrow
            } else {
                RejectReason::Mismatch
            });
            return false;
        };
        let ev = &self.trace.events[gidx];
        if ev.interaction != interaction
            || ev.params.len() != params.len()
            || !ev.params.iter().zip(&params).all(|(a, b)| a.matches(b))
        {
            self.last_reject = Some(RejectReason::Mismatch);
            return false;
        }
        // Outputs w.r.t. inputs: this output must precede the next
        // unconsumed input at the same IP.
        if self.order.output_wrt_input {
            if let Some(&i) = self.trace.inputs[ip].get(self.cursors.input[ip]) {
                if i < gidx {
                    self.last_reject = Some(RejectReason::Mismatch);
                    return false;
                }
            }
        }
        self.cursors.output[ip] += 1;
        self.fire_outputs.push(gidx);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{Event, Trace};
    use estelle_frontend::analyze;

    fn module() -> AnalyzedModule {
        analyze(
            r#"
            specification s;
            channel CU(user, m); by user: req(n : integer); by m: conf(n : integer); end;
            channel CL(net, m); by net: pkt; by m: snd; end;
            module M process;
                ip U : CU(m);
                ip L : CL(m);
            end;
            body MB for M;
                state S;
                initialize to S begin end;
            end;
            end.
            "#,
        )
        .unwrap()
    }

    fn env_for(events: Vec<Event>, order: OrderOptions) -> TraceEnv {
        let m = module();
        let t = ResolvedTrace::resolve(&Trace::new(events), &m).unwrap();
        TraceEnv::new(&m, t, &AnalysisOptions::with_order(order), false).unwrap()
    }

    #[test]
    fn fifo_heads_per_ip() {
        let env = env_for(
            vec![
                Event::input("U", "req", vec![Value::Int(1)]),
                Event::input("L", "pkt", vec![]),
                Event::input("U", "req", vec![Value::Int(2)]),
            ],
            OrderOptions::none(),
        );
        // Without IP ordering both heads are visible.
        assert!(matches!(env.head(0), QueueHead::Message { .. }));
        assert!(matches!(env.head(1), QueueHead::Message { .. }));
    }

    #[test]
    fn ip_order_serializes_inputs() {
        let mut env = env_for(
            vec![
                Event::input("U", "req", vec![Value::Int(1)]),
                Event::input("L", "pkt", vec![]),
            ],
            OrderOptions::ip(),
        );
        // L's input is second globally: blocked until U's is consumed.
        assert!(matches!(env.head(0), QueueHead::Message { .. }));
        assert_eq!(env.head(1), QueueHead::Empty);
        env.consume(0);
        assert!(matches!(env.head(1), QueueHead::Message { .. }));
    }

    #[test]
    fn input_wrt_output_blocks_input_after_pending_output() {
        let mut env = env_for(
            vec![
                Event::output("U", "conf", vec![Value::Int(0)]),
                Event::input("U", "req", vec![Value::Int(1)]),
            ],
            OrderOptions::io(),
        );
        // The traced output precedes the input at U: the input cannot be
        // consumed until the output has been produced.
        assert_eq!(env.head(0), QueueHead::Empty);
        env.begin_fire();
        assert!(env.emit(0, 0, vec![Value::Int(0)]));
        assert!(env.end_fire());
        assert!(matches!(env.head(0), QueueHead::Message { .. }));
    }

    #[test]
    fn output_matching_checks_interaction_and_params() {
        let mut env = env_for(
            vec![Event::output("U", "conf", vec![Value::Int(7)])],
            OrderOptions::none(),
        );
        env.begin_fire();
        // Wrong parameter.
        assert!(!env.emit(0, 0, vec![Value::Int(8)]));
        assert_eq!(env.last_reject, Some(RejectReason::Mismatch));
        // Right parameter.
        assert!(env.emit(0, 0, vec![Value::Int(7)]));
        assert_eq!(env.cursors.output[0], 1);
        // No inputs in the trace, and the only output is now verified.
        assert!(env.all_done());
    }

    #[test]
    fn undefined_params_match_anything() {
        let mut env = env_for(
            vec![Event::output("U", "conf", vec![Value::Undefined])],
            OrderOptions::none(),
        );
        env.begin_fire();
        assert!(env.emit(0, 0, vec![Value::Int(42)]));
    }

    #[test]
    fn exhausted_static_output_stream_is_mismatch() {
        let mut env = env_for(vec![], OrderOptions::none());
        env.begin_fire();
        assert!(!env.emit(0, 0, vec![Value::Int(1)]));
        assert_eq!(env.last_reject, Some(RejectReason::Mismatch));
    }

    #[test]
    fn exhausted_dynamic_output_stream_may_grow() {
        let m = module();
        let t = ResolvedTrace::resolve(&Trace::new(vec![]), &m).unwrap();
        let mut env = TraceEnv::new(
            &m,
            t,
            &AnalysisOptions::with_order(OrderOptions::none()),
            true,
        )
        .unwrap();
        env.begin_fire();
        assert!(!env.emit(0, 0, vec![Value::Int(1)]));
        assert_eq!(env.last_reject, Some(RejectReason::MayGrow));
    }

    #[test]
    fn same_fire_permutation_across_ips_allowed() {
        // Trace records U.conf before L.snd, machine emits L.snd first —
        // fine within a single fire under IP ordering.
        let mut env = env_for(
            vec![
                Event::output("U", "conf", vec![Value::Int(1)]),
                Event::output("L", "snd", vec![]),
            ],
            OrderOptions::full(),
        );
        env.begin_fire();
        assert!(env.emit(1, 0, vec![]));
        assert!(env.emit(0, 0, vec![Value::Int(1)]));
        assert!(env.end_fire());
        assert!(env.all_done());
    }

    #[test]
    fn cross_fire_permutation_rejected_under_ip_order() {
        let mut env = env_for(
            vec![
                Event::output("U", "conf", vec![Value::Int(1)]),
                Event::output("L", "snd", vec![]),
            ],
            OrderOptions::full(),
        );
        // First fire produces only the *second* traced output.
        env.begin_fire();
        assert!(env.emit(1, 0, vec![]));
        assert!(!env.end_fire());
    }

    #[test]
    fn cross_fire_order_ignored_without_ip_order() {
        let mut env = env_for(
            vec![
                Event::output("U", "conf", vec![Value::Int(1)]),
                Event::output("L", "snd", vec![]),
            ],
            OrderOptions::none(),
        );
        env.begin_fire();
        assert!(env.emit(1, 0, vec![]));
        assert!(env.end_fire());
        env.begin_fire();
        assert!(env.emit(0, 0, vec![Value::Int(1)]));
        assert!(env.end_fire());
        assert!(env.all_done());
    }

    #[test]
    fn save_restore_round_trips() {
        let mut env = env_for(
            vec![
                Event::input("U", "req", vec![Value::Int(1)]),
                Event::output("U", "conf", vec![Value::Int(1)]),
            ],
            OrderOptions::none(),
        );
        let saved = env.save();
        env.consume(0);
        env.begin_fire();
        assert!(env.emit(0, 0, vec![Value::Int(1)]));
        assert!(env.all_done());
        env.restore(&saved);
        assert!(!env.all_done());
        assert_eq!(env.outstanding(), 2);
    }

    #[test]
    fn disabled_ip_outputs_always_valid() {
        let m = module();
        let t = ResolvedTrace::resolve(&Trace::new(vec![]), &m).unwrap();
        let opts = AnalysisOptions::with_order(OrderOptions::full()).disable_ip("L");
        let mut env = TraceEnv::new(&m, t, &opts, false).unwrap();
        env.begin_fire();
        assert!(env.emit(1, 0, vec![]));
        assert!(env.end_fire());
        assert!(env.all_done());
    }

    #[test]
    fn unobserved_ip_fabricates_inputs() {
        let m = module();
        let t = ResolvedTrace::resolve(&Trace::new(vec![]), &m).unwrap();
        let opts = AnalysisOptions::default().unobserved_ip("L");
        let env = TraceEnv::new(&m, t, &opts, false).unwrap();
        assert_eq!(env.head(1), QueueHead::Unobserved);
        assert!(env.all_done());
    }

    #[test]
    fn trace_event_at_unobserved_ip_rejected_at_setup() {
        let m = module();
        let t = ResolvedTrace::resolve(
            &Trace::new(vec![Event::input("L", "pkt", vec![])]),
            &m,
        )
        .unwrap();
        let opts = AnalysisOptions::default().unobserved_ip("L");
        assert!(TraceEnv::new(&m, t, &opts, false).is_err());
    }
}
