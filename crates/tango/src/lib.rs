//! Tango — an automatic trace-analysis tool generator for Estelle
//! specifications.
//!
//! A from-scratch Rust reproduction of the system in Ezust & Bochmann,
//! *"An Automatic Trace Analysis Tool Generator for Estelle
//! Specifications"* (SIGCOMM '95). [`Tango::generate`] turns a
//! single-module Estelle specification into a [`TraceAnalyzer`] that
//! checks execution traces by backtracking state-space search, with the
//! paper's full set of runtime options:
//!
//! * relative-order checking presets NR / IO / IP / FULL (§2.4.2);
//! * IP disabling (§2.4.3) and the initial-state search (§2.4.1);
//! * static-mode DFS and on-line multi-threaded DFS with PG-nodes and
//!   dynamic node reordering (§3);
//! * partial-trace analysis with undefined values and unobserved IPs (§5);
//! * implementation-generation mode to produce valid traces from the
//!   specification itself (§4.1's methodology).
//!
//! ```
//! use tango::{Tango, AnalysisOptions};
//!
//! let analyzer = Tango::generate(r#"
//!     specification echo;
//!     channel C(env, m);
//!         by env: req(n : integer);
//!         by m: rsp(n : integer);
//!     end;
//!     module M process; ip P : C(m); end;
//!     body MB for M;
//!         state S;
//!         initialize to S begin end;
//!         trans
//!         from S to S when P.req begin output P.rsp(n + 1) end;
//!     end;
//!     end.
//! "#).expect("valid specification");
//!
//! let report = analyzer
//!     .analyze_text("in P.req(1)\nout P.rsp(2)\n", &AnalysisOptions::default())
//!     .expect("trace analyzable");
//! assert!(report.verdict.is_valid());
//!
//! let bad = analyzer
//!     .analyze_text("in P.req(1)\nout P.rsp(3)\n", &AnalysisOptions::default())
//!     .expect("trace analyzable");
//! assert!(!bad.verdict.is_valid());
//! ```

pub mod analyzer;
pub mod checkpoint;
pub mod env;
pub mod error;
pub mod fault;
pub mod genimpl;
pub mod options;
pub mod rng;
pub mod search;
pub mod stats;
pub mod telemetry;
pub mod trace;
pub mod verdict;

pub use analyzer::{Tango, TraceAnalyzer};
/// The disk spill tier behind `--spill` (segment files, fault injection,
/// the strict segment verifier) — re-exported at the crate root for
/// integration tests and tooling.
pub use search::spill;
pub use checkpoint::{Checkpoint, CheckpointError, CheckpointInfo};
pub use error::TangoError;
/// The unified chaos layer: the composable [`FaultPlan`] (arming source,
/// spill and checkpoint fault sites in one run), the shared
/// [`RetryPolicy`]/[`Backoff`] every retry loop runs on, and the
/// checkpoint-write injector.
pub use fault::{
    Backoff, CheckpointFaultInjector, CheckpointFaultPlan, CheckpointWriteFault, FaultError,
    FaultPlan, RetryOutcome, RetryPolicy,
};
pub use genimpl::{ChoicePolicy, ScriptedInput};
pub use options::{AnalysisOptions, OrderOptions, SearchLimits};
pub use search::spill::{SpillError, SpillFaultPlan, SpillMode, SpillOptions};
pub use stats::SearchStats;
pub use telemetry::{
    should_dump, DumpError, EventSink, FlightRecorder, IntrospectHandle, IntrospectionServer,
    JsonlSink, MetricsRegistry, PgoError, PgoProfile, PostMortemDump, ProgressMode,
    ProgressReporter, RingBufferSink, SearchEvent, Telemetry, TransitionProfile,
    DEFAULT_RING_CAPACITY,
};
pub use trace::format::{parse_trace, render_trace};
pub use trace::source::{
    ChannelSource, FaultySource, Feed, FollowFileSource, RecoveryPolicy, SourceFaultPlan,
    StaticSource, TraceSource,
};
pub use trace::{Dir, Event, Trace};
pub use verdict::{AnalysisReport, InconclusiveReason, Verdict};
