//! A small, dependency-free, reproducible pseudo-random generator.
//!
//! The workspace is built offline, so the `rand` crate is not available;
//! everything that needs seeded randomness (the implementation-generation
//! mode's [`crate::ChoicePolicy::Random`], workload samplers, and the
//! deterministic property-test sweeps) uses this SplitMix64 generator
//! instead. SplitMix64 passes BigCrush, is trivially seedable from a
//! `u64`, and — unlike `StdRng` — its streams are stable across toolchain
//! upgrades, which keeps recorded traces and test expectations
//! reproducible forever.

/// SplitMix64 (Steele, Lea & Flood, "Fast splittable pseudorandom number
/// generators", OOPSLA 2014).
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`. `n` must be non-zero.
    ///
    /// Uses Lemire's multiply-shift reduction with a rejection loop, so
    /// the distribution is exactly uniform (no modulo bias).
    pub fn gen_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "gen_index(0)");
        let n = n as u64;
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(n as u128);
            let lo = m as u64;
            if lo >= lo.wrapping_sub(n) % n {
                return (m >> 64) as usize;
            }
        }
    }

    /// Uniform in `[lo, hi]` (inclusive) for signed ranges.
    pub fn gen_range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi);
        let span = (hi - lo) as u64 + 1;
        lo + (self.next_u64() % span) as i64
    }

    /// A fair coin.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_reproducible() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_index_in_bounds() {
        let mut r = SplitMix64::new(7);
        for n in 1..40usize {
            for _ in 0..50 {
                assert!(r.gen_index(n) < n);
            }
        }
    }

    #[test]
    fn gen_index_hits_every_bucket() {
        let mut r = SplitMix64::new(9);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[r.gen_index(5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_range_inclusive_bounds() {
        let mut r = SplitMix64::new(3);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..2000 {
            let v = r.gen_range_i64(-2, 2);
            assert!((-2..=2).contains(&v));
            lo_seen |= v == -2;
            hi_seen |= v == 2;
        }
        assert!(lo_seen && hi_seen);
    }
}
