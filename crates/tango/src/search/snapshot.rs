//! Saved-state snapshot pool: copy-on-write *Save*/*Restore* with a
//! visited-state interning cache, deduplicated byte accounting, and an
//! optional disk spill tier for bounded-memory searches.
//!
//! The paper's §3.2 names Save/Restore as the dominant trace-analysis
//! cost. Two layers attack it:
//!
//! 1. **Copy-on-write snapshots** — [`MachineState::snapshot`] shares heap
//!    chunks with the live state, so *Save* costs O(globals + chunk
//!    table) and the deep copy happens lazily, only for chunks the search
//!    actually touches before backtracking.
//! 2. **Snapshot interning** — backtracking searches repeatedly save
//!    *identical* machine states under different trace cursors (e.g. the
//!    same buffer contents reached along permuted event orders). The
//!    store keys every save by a fast content hash of (control state,
//!    globals, heap); a hit returns a handle onto the already-resident
//!    snapshot and charges **zero** additional bytes — shared bytes are
//!    charged once, so [`crate::SearchStats::snapshot_bytes`] reports true
//!    deduplicated residency.
//!
//! A third layer turns the `max_state_bytes` budget from a kill switch
//! into a **tiering policy**: with a [`SpillTier`] attached, crossing the
//! budget evicts the least-recently-touched snapshots to CRC-checksummed
//! segment files instead of stopping the search. Every handle points at
//! a shared [`Slot`] whose state is either resident (`Rc<MachineState>`)
//! or spilled (a [`SpillTicket`] claim check); a *Restore* of a spilled
//! slot faults the snapshot back in — verifying its checksum — before
//! use. Spilling changes **where bytes live, never what the search
//! decides**: intern lookups only match resident entries (a spilled miss
//! re-saves, perturbing only dedup accounting, not TE/GE/RE/SA), and
//! eviction order is driven by the budget alone.
//!
//! The store also hosts the `--cow=off` A/B baseline: with COW disabled
//! every save eagerly deep-copies (no interning, no sharing) and every
//! restore deep-copies again — the exact pre-COW cost model — so the
//! benchmark record (`BENCH_snapshots.json`) compares like with like.
//!
//! Accounting assumes stack (LIFO) release order, which the DFS
//! guarantees: a deduplicated save always pops before the save that first
//! charged the bytes, so subtracting each handle's charge on release is
//! exact. Subtraction still saturates (with a debug assertion) so a
//! counter rebuilt by checkpoint/resume can never wrap.

use crate::search::spill::{SpillCounters, SpillError, SpillTicket, SpillTier};
use estelle_runtime::MachineState;
use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::rc::{Rc, Weak};

// The interning key and the DFS visited-set fingerprint both use the
// runtime's fast content hasher; the heap side feeds it from cached
// per-chunk digests, so hashing a state on *Save* is O(chunks), not
// O(cells).
pub(crate) use estelle_runtime::FxHasher;

/// Hasher for the intern map and the visited set. Their keys are already
/// well-mixed 64-bit content hashes; re-hashing them with SipHash would
/// cost more than the map operation itself at millions of saves/second.
pub(crate) type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Content hash of a machine state (control + globals + heap) — the
/// interning key. Trace cursors are deliberately excluded: two search
/// nodes at different trace positions can still share one state snapshot.
pub(crate) fn state_key(state: &MachineState) -> u64 {
    let mut h = FxHasher::default();
    state.control.hash(&mut h);
    state.globals.hash(&mut h);
    state.heap.hash(&mut h);
    h.finish()
}

/// One saved snapshot's residency cell, shared by every handle onto it.
/// `state` is `Some` while the snapshot is in RAM and `None` while it
/// lives only on disk; `ticket` caches the segment record once written
/// (snapshot content is immutable, so re-evicting a slot whose bytes are
/// already on disk is write-free).
#[derive(Debug)]
pub(crate) struct Slot {
    key: u64,
    /// Bytes of the snapshot itself (excluding per-handle metadata) —
    /// the amount that moves between the RAM and disk gauges.
    state_bytes: usize,
    state: RefCell<Option<Rc<MachineState>>>,
    ticket: Cell<Option<SpillTicket>>,
    /// Generation stamp of this slot's newest LRU queue entry; older
    /// queue entries for the slot are stale and skipped lazily.
    touched: Cell<u64>,
}

impl Slot {
    fn resident(&self) -> Option<Rc<MachineState>> {
        self.state.borrow().clone()
    }

    fn is_resident(&self) -> bool {
        self.state.borrow().is_some()
    }

    fn ticket(&self) -> SpillTicket {
        self.ticket
            .get()
            .expect("a non-resident slot always holds a spill ticket")
    }
}

/// A handle onto one saved snapshot. Clone-cheap (`Rc`); carries the
/// bytes this particular save charged so release can return them.
#[derive(Clone, Debug)]
pub(crate) struct SavedState {
    slot: Rc<Slot>,
    bytes: usize,
    /// Whether this handle's charge includes the snapshot itself (the
    /// first save of a state) or only per-save cursor metadata (a dedup
    /// hit). Release uncharges the snapshot from whichever tier it is
    /// resident in when the last charging handle goes.
    charges_state: bool,
}

impl SavedState {
    /// The intern key of the underlying snapshot.
    pub(crate) fn key(&self) -> u64 {
        self.slot.key
    }

    /// The bytes this handle charged at save time.
    pub(crate) fn bytes(&self) -> usize {
        self.bytes
    }

    /// Whether this handle's charge includes the snapshot itself (see
    /// the field doc). Persisted per frame by the checkpoint codec.
    pub(crate) fn charges_state(&self) -> bool {
        self.charges_state
    }

    /// Identity of the underlying slot — handles sharing a snapshot
    /// share the slot. Used by the checkpoint codec to build its
    /// unique-state table.
    pub(crate) fn slot_id(&self) -> usize {
        Rc::as_ptr(&self.slot) as usize
    }

    /// The resident snapshot, if it is in RAM right now. The checkpoint
    /// codec encodes from here after the search made everything
    /// resident; `None` means a spill read-back failed.
    pub(crate) fn resident_state(&self) -> Option<Rc<MachineState>> {
        self.slot.resident()
    }

    /// Rebuild the slot for a state decoded from a checkpoint file.
    /// Handles sharing a snapshot must be built from the same slot so
    /// [`SnapshotStore::rebuild`] re-derives the same deduplicated byte
    /// accounting the saving search had.
    pub(crate) fn decoded_slot(key: u64, state: Rc<MachineState>) -> Rc<Slot> {
        Rc::new(Slot {
            key,
            state_bytes: state.approx_bytes(),
            state: RefCell::new(Some(state)),
            ticket: Cell::new(None),
            touched: Cell::new(0),
        })
    }

    /// Rebuild a handle decoded from a checkpoint file.
    pub(crate) fn from_decoded(slot: Rc<Slot>, bytes: usize, charges_state: bool) -> Self {
        SavedState {
            slot,
            bytes,
            charges_state,
        }
    }
}

/// One interned snapshot: the shared slot plus how many live
/// [`SavedState`] handles refer to it.
struct Interned {
    slot: Rc<Slot>,
    refs: usize,
}

/// Collision chain for one content-hash key. The first entry is inline:
/// true hash collisions are rare, so the common chain of length one costs
/// no extra allocation per save (at millions of saves per run the chain
/// `Vec` would otherwise dominate the save path).
struct Chain {
    first: Interned,
    rest: Vec<Interned>,
}

impl Chain {
    /// Find the entry holding a snapshot identical to `state`. Spilled
    /// entries never match: comparing would mean a disk read on the hot
    /// save path, and a miss merely re-saves the state (dedup accounting
    /// drifts, search decisions do not).
    fn find_resident_mut(&mut self, state: &MachineState) -> Option<&mut Interned> {
        std::iter::once(&mut self.first)
            .chain(self.rest.iter_mut())
            .find(|e| match &*e.slot.state.borrow() {
                Some(resident) => **resident == *state,
                None => false,
            })
    }
}

/// The search's pool of saved snapshots and the single source of truth
/// for [`crate::SearchStats::snapshot_bytes`] (RAM residency) and
/// [`crate::SearchStats::spilled_bytes`] (disk residency).
pub(crate) struct SnapshotStore {
    cow: bool,
    /// key → collision chain of distinct held states with that key.
    interned: HashMap<u64, Chain, FxBuildHasher>,
    ram_bytes: usize,
    spilled_bytes: usize,
    /// RAM budget the spill tier enforces (the `--max-mem` value).
    budget: Option<usize>,
    spill: Option<SpillTier>,
    /// LRU queue of (slot, generation) touches, oldest first. Entries
    /// whose generation no longer matches the slot's `touched` stamp are
    /// stale and skipped; the queue is compacted amortizedly.
    lru: VecDeque<(Weak<Slot>, u64)>,
    lru_gen: u64,
    lru_live_hint: usize,
    /// First unrecoverable spill error: the store is poisoned, eviction
    /// stops, and the search degrades at its next governance check.
    fault: Option<SpillError>,
}

impl SnapshotStore {
    pub fn new(cow: bool) -> Self {
        SnapshotStore {
            cow,
            interned: HashMap::default(),
            ram_bytes: 0,
            spilled_bytes: 0,
            budget: None,
            spill: None,
            lru: VecDeque::new(),
            lru_gen: 0,
            lru_live_hint: 0,
            fault: None,
        }
    }

    /// Attach a spill tier: RAM residency above `budget` bytes is evicted
    /// to `tier`. Without this call the store is the pure in-RAM pool.
    pub fn with_spill(mut self, budget: usize, tier: SpillTier) -> Self {
        self.budget = Some(budget);
        self.spill = Some(tier);
        self
    }

    /// Whether a spill tier is attached (memory pressure degrades to
    /// disk instead of stopping the search).
    pub fn spill_enabled(&self) -> bool {
        self.spill.is_some()
    }

    /// True deduplicated bytes of all RAM-resident snapshots (plus
    /// per-save cursor metadata). Without a spill tier this is what the
    /// `max_state_bytes` budget governs; with one, it is held at the
    /// budget by eviction.
    pub fn resident_bytes(&self) -> usize {
        self.ram_bytes
    }

    /// Bytes of snapshots currently living only in spill segments.
    pub fn spilled_bytes(&self) -> usize {
        self.spilled_bytes
    }

    /// Spill activity counters (zero when no tier is attached).
    pub fn spill_counters(&self) -> SpillCounters {
        self.spill
            .as_ref()
            .map(SpillTier::counters)
            .unwrap_or_default()
    }

    /// Reopen warnings from the spill tier (torn crash tails etc.).
    pub fn take_spill_warnings(&mut self) -> Vec<String> {
        self.spill
            .as_mut()
            .map(SpillTier::take_warnings)
            .unwrap_or_default()
    }

    /// Take the poisoning spill fault, if one occurred. The search polls
    /// this at its governance check and degrades to
    /// `Inconclusive(SpillFailure)`.
    pub fn take_spill_fault(&mut self) -> Option<SpillError> {
        self.fault.take()
    }

    /// *Save* the given state, charging `extra_bytes` of per-save
    /// metadata (cursors). Returns the handle and whether the save was
    /// deduplicated against an already-resident identical snapshot.
    pub fn save(&mut self, state: &MachineState, extra_bytes: usize) -> (SavedState, bool) {
        if !self.cow {
            // Pre-COW baseline: eager deep copy, no interning. The key
            // is only needed for spill adoption, so hashing is skipped
            // entirely in pure-RAM deep mode.
            let state_bytes = state.approx_bytes();
            let bytes = state_bytes + extra_bytes;
            let key = if self.spill.is_some() {
                state_key(state)
            } else {
                0
            };
            let slot = Rc::new(Slot {
                key,
                state_bytes,
                state: RefCell::new(Some(Rc::new(state.deep_snapshot()))),
                ticket: Cell::new(None),
                touched: Cell::new(0),
            });
            self.ram_bytes += bytes;
            self.lru_touch(&slot);
            self.maybe_evict();
            return (
                SavedState {
                    slot,
                    bytes,
                    charges_state: true,
                },
                false,
            );
        }

        let key = state_key(state);
        let hit = self
            .interned
            .get_mut(&key)
            .and_then(|chain| chain.find_resident_mut(state))
            .map(|hit| {
                hit.refs += 1;
                Rc::clone(&hit.slot)
            });
        if let Some(slot) = hit {
            self.ram_bytes += extra_bytes;
            self.lru_touch(&slot);
            self.maybe_evict();
            return (
                SavedState {
                    slot,
                    bytes: extra_bytes,
                    charges_state: false,
                },
                true,
            );
        }
        let state_bytes = state.approx_bytes();
        let bytes = state_bytes + extra_bytes;
        let slot = Rc::new(Slot {
            key,
            state_bytes,
            state: RefCell::new(Some(Rc::new(state.snapshot()))),
            ticket: Cell::new(None),
            touched: Cell::new(0),
        });
        let entry = Interned {
            slot: Rc::clone(&slot),
            refs: 1,
        };
        match self.interned.entry(key) {
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(Chain {
                    first: entry,
                    rest: Vec::new(),
                });
            }
            std::collections::hash_map::Entry::Occupied(o) => o.into_mut().rest.push(entry),
        }
        self.ram_bytes += bytes;
        self.lru_touch(&slot);
        self.maybe_evict();
        (
            SavedState {
                slot,
                bytes,
                charges_state: true,
            },
            false,
        )
    }

    /// Release one handle, returning its charged bytes to the budget and
    /// dropping the interning entry with the last reference. A snapshot
    /// whose last charging handle goes is uncharged from whichever tier
    /// (RAM or disk) it is resident in.
    pub fn release(&mut self, saved: &SavedState) {
        let extra = if saved.charges_state {
            saved.bytes.saturating_sub(saved.slot.state_bytes)
        } else {
            saved.bytes
        };
        debug_assert!(
            self.ram_bytes >= extra,
            "snapshot byte accounting must never wrap (resident {} < released metadata {})",
            self.ram_bytes,
            extra
        );
        self.ram_bytes = self.ram_bytes.saturating_sub(extra);
        let uncharge_state = if self.cow {
            self.chain_release(saved)
        } else {
            saved.charges_state
        };
        if uncharge_state {
            if saved.slot.is_resident() {
                debug_assert!(
                    self.ram_bytes >= saved.slot.state_bytes,
                    "resident snapshot release must not wrap"
                );
                self.ram_bytes = self.ram_bytes.saturating_sub(saved.slot.state_bytes);
            } else {
                self.spilled_bytes = self.spilled_bytes.saturating_sub(saved.slot.state_bytes);
            }
        }
    }

    /// Decrement the interning reference for `saved`'s slot; true when
    /// the last reference went and the snapshot's bytes must be
    /// uncharged. In COW mode only charging handles own the final
    /// reference (LIFO release pops dedup hits first).
    fn chain_release(&mut self, saved: &SavedState) -> bool {
        let Some(chain) = self.interned.get_mut(&saved.slot.key) else {
            return false;
        };
        if Rc::ptr_eq(&chain.first.slot, &saved.slot) {
            chain.first.refs -= 1;
            if chain.first.refs == 0 {
                match chain.rest.pop() {
                    Some(promoted) => chain.first = promoted,
                    None => {
                        self.interned.remove(&saved.slot.key);
                    }
                }
                return true;
            }
        } else if let Some(pos) = chain
            .rest
            .iter()
            .position(|e| Rc::ptr_eq(&e.slot, &saved.slot))
        {
            chain.rest[pos].refs -= 1;
            if chain.rest[pos].refs == 0 {
                chain.rest.swap_remove(pos);
                return true;
            }
        }
        false
    }

    /// *Restore* into a working state without consuming the handle (the
    /// frame may have more children). Faults a spilled snapshot back in
    /// first; the clone is COW (O(chunk table)) or a deep copy per the
    /// store's baseline mode. Eviction runs after the clone, so the
    /// faulted-in slot may immediately spill back out under a tight
    /// budget — correct, if slow, which is the tier's contract.
    pub fn materialize(&mut self, saved: &SavedState) -> Result<MachineState, SpillError> {
        self.fault_in(&saved.slot)?;
        let resident = saved.slot.resident().expect("just faulted in");
        let out = if self.cow {
            resident.snapshot()
        } else {
            resident.deep_snapshot()
        };
        drop(resident);
        self.maybe_evict();
        Ok(out)
    }

    /// *Restore* consuming the handle (last child of a frame): moves the
    /// state out without any copy when this was the only reference.
    /// Call [`SnapshotStore::release`] first so the store's interning
    /// reference is already dropped. A spilled snapshot is read straight
    /// from its segment (release already settled the accounting).
    pub fn take(&mut self, saved: SavedState) -> Result<MachineState, SpillError> {
        let cow = self.cow;
        let SavedState { slot, .. } = saved;
        match Rc::try_unwrap(slot) {
            Ok(slot) => match slot.state.into_inner() {
                Some(resident) => Ok(match Rc::try_unwrap(resident) {
                    Ok(state) => state,
                    Err(shared) => {
                        if cow {
                            shared.snapshot()
                        } else {
                            shared.deep_snapshot()
                        }
                    }
                }),
                None => self.read_ticket(&slot.ticket.get().expect("spilled slot has a ticket")),
            },
            Err(slot) => {
                let resident = slot.resident();
                match resident {
                    Some(shared) => Ok(if cow {
                        shared.snapshot()
                    } else {
                        shared.deep_snapshot()
                    }),
                    None => self.read_ticket(&slot.ticket()),
                }
            }
        }
    }

    /// Make every handle's snapshot resident — the checkpoint path.
    /// Transiently overshooting the RAM budget here is fine: the store
    /// is about to be torn down or rebuilt.
    pub fn ensure_resident_all<'a>(
        &mut self,
        saved: impl Iterator<Item = &'a SavedState>,
    ) -> Result<(), SpillError> {
        for s in saved {
            self.fault_in(&s.slot)?;
        }
        Ok(())
    }

    fn fault_in(&mut self, slot: &Rc<Slot>) -> Result<(), SpillError> {
        if slot.is_resident() {
            self.lru_touch(slot);
            return Ok(());
        }
        let ticket = slot.ticket();
        let tier = self
            .spill
            .as_mut()
            .expect("spilled slots only exist with a spill tier");
        let state = tier.read_state(&ticket)?;
        *slot.state.borrow_mut() = Some(Rc::new(state));
        self.spilled_bytes = self.spilled_bytes.saturating_sub(slot.state_bytes);
        self.ram_bytes += slot.state_bytes;
        self.lru_touch(slot);
        Ok(())
    }

    fn read_ticket(&mut self, ticket: &SpillTicket) -> Result<MachineState, SpillError> {
        self.spill
            .as_mut()
            .expect("spill tickets only exist with a spill tier")
            .read_state(ticket)
    }

    /// Evict least-recently-touched snapshots until RAM residency is
    /// back under budget. A write failure (retries exhausted) poisons
    /// the store: the state stays resident, eviction stops, and the
    /// search degrades at its next governance check.
    fn maybe_evict(&mut self) {
        if self.fault.is_some() || self.spill.is_none() {
            return;
        }
        let Some(budget) = self.budget else { return };
        while self.ram_bytes > budget {
            let Some((weak, generation)) = self.lru.pop_front() else {
                break;
            };
            let Some(slot) = weak.upgrade() else { continue };
            if slot.touched.get() != generation {
                continue;
            }
            if !self.evict_slot(&slot) && self.fault.is_some() {
                break;
            }
        }
    }

    fn evict_slot(&mut self, slot: &Rc<Slot>) -> bool {
        let Some(resident) = slot.state.borrow_mut().take() else {
            return false;
        };
        if slot.ticket.get().is_none() {
            let tier = self.spill.as_mut().expect("eviction requires a tier");
            match tier.write_state(slot.key, &resident) {
                Ok(ticket) => slot.ticket.set(Some(ticket)),
                Err(e) => {
                    *slot.state.borrow_mut() = Some(resident);
                    self.fault = Some(e);
                    return false;
                }
            }
        }
        drop(resident);
        self.ram_bytes = self.ram_bytes.saturating_sub(slot.state_bytes);
        self.spilled_bytes += slot.state_bytes;
        if let Some(tier) = self.spill.as_mut() {
            tier.counters_mut().evictions += 1;
        }
        true
    }

    fn lru_touch(&mut self, slot: &Rc<Slot>) {
        if self.spill.is_none() {
            return;
        }
        self.lru_gen += 1;
        slot.touched.set(self.lru_gen);
        self.lru.push_back((Rc::downgrade(slot), self.lru_gen));
        // Amortized compaction: stale entries (superseded touches, dead
        // slots) are dropped when they dominate the queue.
        if self.lru.len() > 1024 && self.lru.len() > 4 * self.lru_live_hint.max(256) {
            self.lru
                .retain(|(w, generation)| match w.upgrade() {
                    Some(s) => s.touched.get() == *generation,
                    None => false,
                });
            self.lru_live_hint = self.lru.len();
        }
    }

    /// Rebuild a store from the frames of a resumed checkpoint: re-interns
    /// every still-held snapshot and re-derives the resident byte total
    /// (shared bytes still charged once — each handle remembers exactly
    /// what its save charged). Decoded frames are all resident; any stale
    /// spill tickets from the checkpointing run are dropped, because
    /// `tier` (if any) is a fresh reopen whose adoption index makes
    /// re-eviction of unchanged states write-free.
    pub fn rebuild<'a>(
        cow: bool,
        saved: impl Iterator<Item = &'a SavedState>,
        budget: Option<usize>,
        tier: Option<SpillTier>,
    ) -> Self {
        let mut store = SnapshotStore::new(cow);
        store.budget = budget;
        store.spill = tier;
        for s in saved {
            s.slot.ticket.set(None);
            store.ram_bytes += s.bytes;
            store.lru_touch(&s.slot);
            if !cow {
                continue;
            }
            let entry = Interned {
                slot: Rc::clone(&s.slot),
                refs: 1,
            };
            match store.interned.entry(s.slot.key) {
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(Chain {
                        first: entry,
                        rest: Vec::new(),
                    });
                }
                std::collections::hash_map::Entry::Occupied(o) => {
                    let chain = o.into_mut();
                    if let Some(hit) = std::iter::once(&mut chain.first)
                        .chain(chain.rest.iter_mut())
                        .find(|e| Rc::ptr_eq(&e.slot, &s.slot))
                    {
                        hit.refs += 1;
                    } else {
                        chain.rest.push(entry);
                    }
                }
            }
        }
        store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::spill::FsSpillDir;
    use estelle_runtime::{Machine, Value};
    use std::path::PathBuf;

    const SPEC: &str = r#"
        specification s;
        module M process; end;
        body MB for M;
            var n : integer;
            state S;
            initialize to S begin n := 0 end;
        end;
        end.
    "#;

    fn some_state() -> MachineState {
        let m = Machine::from_source(SPEC).unwrap();
        let mut st = m.initial_state().unwrap();
        st.heap.alloc(Value::Int(7));
        st
    }

    fn spill_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "tango-snapshot-spill-{}-{}",
            tag,
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tier(dir: &PathBuf) -> SpillTier {
        SpillTier::open(Box::new(FsSpillDir::new(dir)), 64 << 20, 3).unwrap()
    }

    #[test]
    fn identical_saves_intern_and_charge_once() {
        let st = some_state();
        let mut store = SnapshotStore::new(true);
        let (a, hit_a) = store.save(&st, 16);
        assert!(!hit_a);
        let after_first = store.resident_bytes();
        assert!(after_first >= st.approx_bytes() + 16);

        let (b, hit_b) = store.save(&st, 16);
        assert!(hit_b, "identical state must dedup");
        assert_eq!(
            store.resident_bytes(),
            after_first + 16,
            "a dedup hit charges only its cursor metadata"
        );
        assert_eq!(a.slot_id(), b.slot_id());

        // LIFO release: the duplicate first, then the original.
        store.release(&b);
        assert_eq!(store.resident_bytes(), after_first);
        store.release(&a);
        assert_eq!(store.resident_bytes(), 0);
    }

    #[test]
    fn distinct_states_do_not_intern() {
        let st = some_state();
        let mut other = st.clone();
        other.globals[0] = Value::Int(99);
        let mut store = SnapshotStore::new(true);
        let (_, h1) = store.save(&st, 0);
        let (_, h2) = store.save(&other, 0);
        assert!(!h1);
        assert!(!h2);
    }

    #[test]
    fn deep_mode_never_interns_or_shares() {
        let st = some_state();
        let mut store = SnapshotStore::new(false);
        let (a, hit1) = store.save(&st, 0);
        let (b, hit2) = store.save(&st, 0);
        assert!(!hit1 && !hit2);
        assert_ne!(a.slot_id(), b.slot_id());
        assert_eq!(store.resident_bytes(), a.bytes() + b.bytes());
        assert_eq!(store.materialize(&a).unwrap().heap.shared_chunks(), 0);
    }

    #[test]
    fn take_moves_out_without_copy_after_release() {
        let st = some_state();
        let mut store = SnapshotStore::new(true);
        let (a, _) = store.save(&st, 0);
        store.release(&a);
        let restored = store.take(a).unwrap();
        assert_eq!(restored, st);
    }

    #[test]
    fn release_saturates_instead_of_wrapping() {
        let st = some_state();
        let mut fresh = SnapshotStore::new(true);
        let (handle, _) = {
            let mut other = SnapshotStore::new(true);
            other.save(&st, 8)
        };
        // Releasing into a store that never charged must not wrap; the
        // debug assertion flags it in debug builds, release saturates.
        if !cfg!(debug_assertions) {
            fresh.release(&handle);
            assert_eq!(fresh.resident_bytes(), 0);
        }
    }

    #[test]
    fn rebuild_restores_dedup_accounting() {
        let st = some_state();
        let mut store = SnapshotStore::new(true);
        let (a, _) = store.save(&st, 4);
        let (b, _) = store.save(&st, 4);
        let total = store.resident_bytes();

        let rebuilt = SnapshotStore::rebuild(true, [a.clone(), b.clone()].iter(), None, None);
        assert_eq!(rebuilt.resident_bytes(), total);

        // And the rebuilt store still dedups against the adopted entries.
        let mut rebuilt = rebuilt;
        let (_, hit) = rebuilt.save(&st, 0);
        assert!(hit);
    }

    #[test]
    fn fx_hasher_separates_streams() {
        let st = some_state();
        let mut other = st.clone();
        other.globals[0] = Value::Int(1);
        assert_ne!(state_key(&st), state_key(&other));
        assert_eq!(state_key(&st), state_key(&st.snapshot()));
        assert_eq!(state_key(&st), state_key(&st.deep_snapshot()));
    }

    #[test]
    fn budget_pressure_evicts_to_disk_and_faults_back_in() {
        let dir = spill_dir("evict");
        let st = some_state();
        let mut variants = Vec::new();
        for n in 0..8 {
            let mut v = st.clone();
            v.globals[0] = Value::Int(n);
            variants.push(v);
        }
        // Budget below two snapshots: saving eight forces eviction.
        let budget = st.approx_bytes() * 2;
        let mut store = SnapshotStore::new(true).with_spill(budget, tier(&dir));
        let handles: Vec<_> = variants.iter().map(|v| store.save(v, 0).0).collect();
        assert!(
            store.resident_bytes() <= budget,
            "eviction must hold RAM at the budget ({} > {})",
            store.resident_bytes(),
            budget
        );
        assert!(store.spilled_bytes() > 0);
        assert!(store.spill_counters().evictions > 0);
        // Every snapshot — resident or spilled — restores bit-identically.
        for (h, v) in handles.iter().zip(&variants) {
            assert_eq!(&store.materialize(h).unwrap(), v);
        }
        assert!(store.spill_counters().reads > 0);
        // Releasing everything returns both gauges to zero.
        for h in handles.iter().rev() {
            store.release(h);
        }
        assert_eq!(store.resident_bytes(), 0);
        assert_eq!(store.spilled_bytes(), 0);
        assert!(store.take_spill_fault().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn take_of_a_spilled_snapshot_reads_from_disk() {
        let dir = spill_dir("take");
        let st = some_state();
        let mut other = st.clone();
        other.globals[0] = Value::Int(5);
        let mut store = SnapshotStore::new(true).with_spill(1, tier(&dir));
        let (a, _) = store.save(&st, 0);
        let (_b, _) = store.save(&other, 0);
        // Budget 1: everything spills.
        assert_eq!(store.resident_bytes(), 0);
        store.release(&a);
        assert_eq!(store.take(a).unwrap(), st);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_failure_poisons_the_store_and_keeps_the_state() {
        use crate::search::spill::{FaultySpillDir, SpillFaultPlan, SpillDir};
        let dir = spill_dir("poison");
        let plan = SpillFaultPlan {
            hard_writes_after: Some(0),
            ..SpillFaultPlan::default()
        };
        let inner: Box<dyn SpillDir> = Box::new(FsSpillDir::new(&dir));
        let faulty = FaultySpillDir::new(inner, plan);
        let tier = SpillTier::open(Box::new(faulty), 64 << 20, 1).unwrap();
        let st = some_state();
        let mut store = SnapshotStore::new(true).with_spill(1, tier);
        let (a, _) = store.save(&st, 0);
        let fault = store.take_spill_fault().expect("dead disk must poison");
        assert!(fault.to_string().contains("disk full"), "{}", fault);
        // The snapshot never left RAM, so the search can still checkpoint.
        assert_eq!(store.materialize(&a).unwrap(), st);
        assert!(store.resident_bytes() > 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
