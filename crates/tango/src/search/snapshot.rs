//! Saved-state snapshot pool: copy-on-write *Save*/*Restore* with a
//! visited-state interning cache and deduplicated byte accounting.
//!
//! The paper's §3.2 names Save/Restore as the dominant trace-analysis
//! cost. Two layers attack it:
//!
//! 1. **Copy-on-write snapshots** — [`MachineState::snapshot`] shares heap
//!    chunks with the live state, so *Save* costs O(globals + chunk
//!    table) and the deep copy happens lazily, only for chunks the search
//!    actually touches before backtracking.
//! 2. **Snapshot interning** — backtracking searches repeatedly save
//!    *identical* machine states under different trace cursors (e.g. the
//!    same buffer contents reached along permuted event orders). The
//!    store keys every save by a fast content hash of (control state,
//!    globals, heap); a hit returns a handle onto the already-resident
//!    snapshot and charges **zero** additional bytes — shared bytes are
//!    charged once, so [`crate::SearchStats::snapshot_bytes`] reports true
//!    deduplicated residency.
//!
//! The store also hosts the `--cow=off` A/B baseline: with COW disabled
//! every save eagerly deep-copies (no interning, no sharing) and every
//! restore deep-copies again — the exact pre-COW cost model — so the
//! benchmark record (`BENCH_snapshots.json`) compares like with like.
//!
//! Accounting assumes stack (LIFO) release order, which the DFS
//! guarantees: a deduplicated save always pops before the save that first
//! charged the bytes, so subtracting each handle's charge on release is
//! exact. Subtraction still saturates (with a debug assertion) so a
//! counter rebuilt by checkpoint/resume can never wrap.

use estelle_runtime::MachineState;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::rc::Rc;

// The interning key and the DFS visited-set fingerprint both use the
// runtime's fast content hasher; the heap side feeds it from cached
// per-chunk digests, so hashing a state on *Save* is O(chunks), not
// O(cells).
pub(crate) use estelle_runtime::FxHasher;

/// Hasher for the intern map and the visited set. Their keys are already
/// well-mixed 64-bit content hashes; re-hashing them with SipHash would
/// cost more than the map operation itself at millions of saves/second.
pub(crate) type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Content hash of a machine state (control + globals + heap) — the
/// interning key. Trace cursors are deliberately excluded: two search
/// nodes at different trace positions can still share one state snapshot.
pub(crate) fn state_key(state: &MachineState) -> u64 {
    let mut h = FxHasher::default();
    state.control.hash(&mut h);
    state.globals.hash(&mut h);
    state.heap.hash(&mut h);
    h.finish()
}

/// A handle onto one saved snapshot. Clone-cheap (`Rc`); carries the
/// bytes this particular save charged so release can return them.
#[derive(Clone, Debug)]
pub(crate) struct SavedState {
    state: Rc<MachineState>,
    key: u64,
    bytes: usize,
}

impl SavedState {
    /// The handle's raw (snapshot, intern key, charged bytes) triple, for
    /// the durable-checkpoint codec.
    pub(crate) fn raw_parts(&self) -> (&Rc<MachineState>, u64, usize) {
        (&self.state, self.key, self.bytes)
    }

    /// Rebuild a handle decoded from a checkpoint file. Handles sharing a
    /// snapshot must share `state`'s `Rc` so [`SnapshotStore::rebuild`]
    /// re-derives the same deduplicated byte accounting the saving search
    /// had.
    pub(crate) fn from_raw_parts(state: Rc<MachineState>, key: u64, bytes: usize) -> Self {
        SavedState { state, key, bytes }
    }

    /// *Restore* into a working state without consuming the handle (the
    /// frame may have more children). COW: O(chunk table). Deep baseline:
    /// a full copy, as the pre-COW search paid on every backtrack.
    pub fn materialize(&self, cow: bool) -> MachineState {
        if cow {
            self.state.snapshot()
        } else {
            self.state.deep_snapshot()
        }
    }

    /// *Restore* consuming the handle (last child of a frame): moves the
    /// state out without any copy when this was the only reference.
    /// Call [`SnapshotStore::release`] first so the store's interning
    /// reference is already dropped.
    pub fn take(self, cow: bool) -> MachineState {
        match Rc::try_unwrap(self.state) {
            Ok(state) => state,
            Err(shared) => {
                if cow {
                    shared.snapshot()
                } else {
                    shared.deep_snapshot()
                }
            }
        }
    }
}

/// One interned snapshot: the resident copy plus how many live
/// [`SavedState`] handles refer to it.
struct Interned {
    state: Rc<MachineState>,
    refs: usize,
}

/// Collision chain for one content-hash key. The first entry is inline:
/// true hash collisions are rare, so the common chain of length one costs
/// no extra allocation per save (at millions of saves per run the chain
/// `Vec` would otherwise dominate the save path).
struct Chain {
    first: Interned,
    rest: Vec<Interned>,
}

impl Chain {
    fn find_mut(&mut self, state: &MachineState) -> Option<&mut Interned> {
        std::iter::once(&mut self.first)
            .chain(self.rest.iter_mut())
            .find(|e| *e.state == *state)
    }
}

/// The search's pool of saved snapshots and the single source of truth
/// for [`crate::SearchStats::snapshot_bytes`].
pub(crate) struct SnapshotStore {
    cow: bool,
    /// key → collision chain of distinct resident states with that key.
    interned: HashMap<u64, Chain, FxBuildHasher>,
    resident_bytes: usize,
}

impl SnapshotStore {
    pub fn new(cow: bool) -> Self {
        SnapshotStore {
            cow,
            interned: HashMap::default(),
            resident_bytes: 0,
        }
    }

    /// Whether saves share structure copy-on-write (`--cow=on`).
    pub fn cow(&self) -> bool {
        self.cow
    }

    /// True deduplicated bytes of all resident snapshots (plus per-save
    /// cursor metadata). This is what the `max_state_bytes` budget governs.
    pub fn resident_bytes(&self) -> usize {
        self.resident_bytes
    }

    /// *Save* the given state, charging `extra_bytes` of per-save
    /// metadata (cursors). Returns the handle and whether the save was
    /// deduplicated against an already-resident identical snapshot.
    pub fn save(&mut self, state: &MachineState, extra_bytes: usize) -> (SavedState, bool) {
        if !self.cow {
            // Pre-COW baseline: eager deep copy, no interning.
            let bytes = state.approx_bytes() + extra_bytes;
            self.resident_bytes += bytes;
            return (
                SavedState {
                    state: Rc::new(state.deep_snapshot()),
                    key: 0,
                    bytes,
                },
                false,
            );
        }

        let key = state_key(state);
        if let Some(hit) = self
            .interned
            .get_mut(&key)
            .and_then(|chain| chain.find_mut(state))
        {
            hit.refs += 1;
            self.resident_bytes += extra_bytes;
            return (
                SavedState {
                    state: Rc::clone(&hit.state),
                    key,
                    bytes: extra_bytes,
                },
                true,
            );
        }
        let bytes = state.approx_bytes() + extra_bytes;
        let snap = Rc::new(state.snapshot());
        let entry = Interned {
            state: Rc::clone(&snap),
            refs: 1,
        };
        match self.interned.entry(key) {
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(Chain {
                    first: entry,
                    rest: Vec::new(),
                });
            }
            std::collections::hash_map::Entry::Occupied(o) => o.into_mut().rest.push(entry),
        }
        self.resident_bytes += bytes;
        (
            SavedState {
                state: snap,
                key,
                bytes,
            },
            false,
        )
    }

    /// Release one handle, returning its charged bytes to the budget and
    /// dropping the interning entry with the last reference.
    pub fn release(&mut self, saved: &SavedState) {
        debug_assert!(
            self.resident_bytes >= saved.bytes,
            "snapshot byte accounting must never wrap (resident {} < released {})",
            self.resident_bytes,
            saved.bytes
        );
        self.resident_bytes = self.resident_bytes.saturating_sub(saved.bytes);
        if !self.cow {
            return;
        }
        if let Some(chain) = self.interned.get_mut(&saved.key) {
            if Rc::ptr_eq(&chain.first.state, &saved.state) {
                chain.first.refs -= 1;
                if chain.first.refs == 0 {
                    match chain.rest.pop() {
                        Some(promoted) => chain.first = promoted,
                        None => {
                            self.interned.remove(&saved.key);
                        }
                    }
                }
            } else if let Some(pos) = chain
                .rest
                .iter()
                .position(|e| Rc::ptr_eq(&e.state, &saved.state))
            {
                chain.rest[pos].refs -= 1;
                if chain.rest[pos].refs == 0 {
                    chain.rest.swap_remove(pos);
                }
            }
        }
    }

    /// Rebuild a store from the frames of a resumed checkpoint: re-interns
    /// every still-held snapshot and re-derives the resident byte total
    /// (shared bytes still charged once — each handle remembers exactly
    /// what its save charged).
    pub fn rebuild<'a>(cow: bool, saved: impl Iterator<Item = &'a SavedState>) -> Self {
        let mut store = SnapshotStore::new(cow);
        for s in saved {
            store.resident_bytes += s.bytes;
            if !cow {
                continue;
            }
            let entry = Interned {
                state: Rc::clone(&s.state),
                refs: 1,
            };
            match store.interned.entry(s.key) {
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(Chain {
                        first: entry,
                        rest: Vec::new(),
                    });
                }
                std::collections::hash_map::Entry::Occupied(o) => {
                    let chain = o.into_mut();
                    if let Some(hit) = std::iter::once(&mut chain.first)
                        .chain(chain.rest.iter_mut())
                        .find(|e| Rc::ptr_eq(&e.state, &s.state))
                    {
                        hit.refs += 1;
                    } else {
                        chain.rest.push(entry);
                    }
                }
            }
        }
        store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use estelle_runtime::{Machine, Value};

    const SPEC: &str = r#"
        specification s;
        module M process; end;
        body MB for M;
            var n : integer;
            state S;
            initialize to S begin n := 0 end;
        end;
        end.
    "#;

    fn some_state() -> MachineState {
        let m = Machine::from_source(SPEC).unwrap();
        let mut st = m.initial_state().unwrap();
        st.heap.alloc(Value::Int(7));
        st
    }

    #[test]
    fn identical_saves_intern_and_charge_once() {
        let st = some_state();
        let mut store = SnapshotStore::new(true);
        let (a, hit_a) = store.save(&st, 16);
        assert!(!hit_a);
        let after_first = store.resident_bytes();
        assert!(after_first >= st.approx_bytes() + 16);

        let (b, hit_b) = store.save(&st, 16);
        assert!(hit_b, "identical state must dedup");
        assert_eq!(
            store.resident_bytes(),
            after_first + 16,
            "a dedup hit charges only its cursor metadata"
        );
        assert!(Rc::ptr_eq(&a.state, &b.state));

        // LIFO release: the duplicate first, then the original.
        store.release(&b);
        assert_eq!(store.resident_bytes(), after_first);
        store.release(&a);
        assert_eq!(store.resident_bytes(), 0);
    }

    #[test]
    fn distinct_states_do_not_intern() {
        let st = some_state();
        let mut other = st.clone();
        other.globals[0] = Value::Int(99);
        let mut store = SnapshotStore::new(true);
        let (_, h1) = store.save(&st, 0);
        let (_, h2) = store.save(&other, 0);
        assert!(!h1);
        assert!(!h2);
    }

    #[test]
    fn deep_mode_never_interns_or_shares() {
        let st = some_state();
        let mut store = SnapshotStore::new(false);
        let (a, hit1) = store.save(&st, 0);
        let (b, hit2) = store.save(&st, 0);
        assert!(!hit1 && !hit2);
        assert!(!Rc::ptr_eq(&a.state, &b.state));
        assert_eq!(store.resident_bytes(), a.bytes + b.bytes);
        assert_eq!(a.materialize(false).heap.shared_chunks(), 0);
    }

    #[test]
    fn take_moves_out_without_copy_after_release() {
        let st = some_state();
        let mut store = SnapshotStore::new(true);
        let (a, _) = store.save(&st, 0);
        store.release(&a);
        let restored = a.take(true);
        assert_eq!(restored, st);
    }

    #[test]
    fn release_saturates_instead_of_wrapping() {
        let st = some_state();
        let mut fresh = SnapshotStore::new(true);
        let (handle, _) = {
            let mut other = SnapshotStore::new(true);
            other.save(&st, 8)
        };
        // Releasing into a store that never charged must not wrap; the
        // debug assertion flags it in debug builds, release saturates.
        if !cfg!(debug_assertions) {
            fresh.release(&handle);
            assert_eq!(fresh.resident_bytes(), 0);
        }
    }

    #[test]
    fn rebuild_restores_dedup_accounting() {
        let st = some_state();
        let mut store = SnapshotStore::new(true);
        let (a, _) = store.save(&st, 4);
        let (b, _) = store.save(&st, 4);
        let total = store.resident_bytes();

        let rebuilt = SnapshotStore::rebuild(true, [a.clone(), b.clone()].iter());
        assert_eq!(rebuilt.resident_bytes(), total);

        // And the rebuilt store still dedups against the adopted entries.
        let mut rebuilt = rebuilt;
        let (_, hit) = rebuilt.save(&st, 0);
        assert!(hit);
    }

    #[test]
    fn fx_hasher_separates_streams() {
        let st = some_state();
        let mut other = st.clone();
        other.globals[0] = Value::Int(1);
        assert_ne!(state_key(&st), state_key(&other));
        assert_eq!(state_key(&st), state_key(&st.snapshot()));
        assert_eq!(state_key(&st), state_key(&st.deep_snapshot()));
    }
}
