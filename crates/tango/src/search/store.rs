//! Sharded, thread-safe snapshot store for the multi-worker MDFS.
//!
//! The single-threaded searches intern snapshots through
//! [`super::snapshot::SnapshotStore`], whose one intern map and one LRU
//! are owned by the search loop. N true workers saving and restoring
//! concurrently would funnel every operation through one lock, so this
//! store shards by the **high bits of the pre-mixed FxHasher content
//! key**: 16 shards, each its own mutex guarding its own slot slab,
//! intern chains, LRU clock queue and spill tier (rooted at
//! `shard{i:02}/` under the spill directory). Two workers touching
//! states that hash to different shards never contend.
//!
//! Residency accounting is atomic and global: the `resident`/`spilled`
//! byte gauges and their high-water marks are plain atomics updated
//! under the owning shard's lock, readable lock-free from any worker
//! (the memory-budget check) and from the coordinator (heartbeats).
//!
//! Eviction under a budget stays **globally coldest-first**: every
//! resident slot carries a stamp from one shared logical clock; the
//! evictor peeks each shard's LRU front and evicts the minimum stamp,
//! so the per-shard split does not change *what* gets evicted, only
//! which lock the eviction takes. Re-evicting a slot whose snapshot is
//! already on disk is write-free (the segment record is immutable) —
//! the same contract the PR 6 tier gives the single-threaded stores —
//! and a write failure poisons the store instead of returning an error
//! mid-save: the snapshot stays resident, eviction stops, and the
//! search degrades to `Inconclusive(SpillFailure)` at its next
//! governance check, exactly like the single-threaded store.

use super::snapshot::{state_key, FxBuildHasher};
use super::spill::{SpillCounters, SpillError, SpillTicket, SpillTier};
use crate::options::AnalysisOptions;
use estelle_runtime::MachineState;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Shard count. A power of two so the shard index is a shift of the
/// pre-mixed key's top bits; 16 is comfortably above any worker count
/// the search spawns while keeping the fixed footprint trivial.
pub(crate) const SHARD_COUNT: usize = 16;

const SHARD_SHIFT: u32 = 64 - 4; // log2(SHARD_COUNT) top bits

/// Reference to one stored snapshot. Plain `Send + Sync` data — nodes
/// carry handles across worker threads; the states themselves stay in
/// the store.
#[derive(Clone, Copy, Debug)]
pub(crate) struct StoreHandle {
    shard: u8,
    slot: u32,
    /// Size of the referenced snapshot. Every handle to a shared slot
    /// reports the full size (the slot is charged once; `save` returns
    /// whether this handle was a dedup hit).
    pub(crate) state_bytes: usize,
}

struct SlotEntry {
    /// FxHasher content key (also the spill record key).
    key: u64,
    /// Resident snapshot; `None` while evicted to the shard's tier.
    state: Option<MachineState>,
    /// Claim check once the snapshot has ever been written to disk.
    ticket: Option<SpillTicket>,
    /// Bytes of the snapshot itself — what moves between gauges.
    bytes: usize,
    /// Handles outstanding; the slot is freed when this reaches 0.
    refs: u32,
    /// Last-touch stamp from the store's shared logical clock; older
    /// LRU queue entries for the slot are stale and skipped.
    stamp: u64,
}

struct Shard {
    slots: Vec<Option<SlotEntry>>,
    free: Vec<u32>,
    /// Content-key intern chains (COW dedup): key → slot indices.
    interned: HashMap<u64, Vec<u32>, FxBuildHasher>,
    /// Cold-first eviction queue of `(slot, stamp)`.
    lru: VecDeque<(u32, u64)>,
    tier: Option<SpillTier>,
}

impl Shard {
    fn new(tier: Option<SpillTier>) -> Self {
        Shard {
            slots: Vec::new(),
            free: Vec::new(),
            interned: HashMap::default(),
            lru: VecDeque::new(),
            tier,
        }
    }

    fn slot(&self, idx: u32) -> &SlotEntry {
        self.slots[idx as usize]
            .as_ref()
            .expect("live handle references a live slot")
    }

    fn slot_mut(&mut self, idx: u32) -> &mut SlotEntry {
        self.slots[idx as usize]
            .as_mut()
            .expect("live handle references a live slot")
    }

    /// Front-of-LRU stamp after discarding stale entries, i.e. the
    /// coldness of this shard's coldest *resident* slot.
    fn coldest(&mut self) -> Option<u64> {
        while let Some(&(idx, stamp)) = self.lru.front() {
            let live = self.slots[idx as usize]
                .as_ref()
                .is_some_and(|s| s.stamp == stamp && s.state.is_some());
            if live {
                return Some(stamp);
            }
            self.lru.pop_front();
        }
        None
    }
}

/// The sharded snapshot store. All methods take `&self`; internal
/// per-shard mutexes plus atomics make it `Sync`.
pub(crate) struct ShardedStore {
    shards: Vec<Mutex<Shard>>,
    cow: bool,
    budget: Option<usize>,
    spill_enabled: bool,
    /// No budget and no tier ⇒ memory pressure is impossible: slots can
    /// never be evicted, so the content hash, the intern chains and the
    /// LRU queue buy nothing. This flag selects a plain slot-slab path
    /// that skips all three — the same per-save cost profile as the
    /// sequential engine, which holds states in its nodes uninterned.
    fast: bool,
    resident: AtomicUsize,
    spilled: AtomicUsize,
    peak_resident: AtomicUsize,
    peak_spilled: AtomicUsize,
    intern_hits: AtomicU64,
    clock: AtomicU64,
    /// Set on the first unrecoverable spill write fault; checked
    /// lock-free by workers at their governance point.
    poisoned: AtomicBool,
    fault: Mutex<Option<SpillError>>,
}

impl ShardedStore {
    /// Build the store from the run's options. An unusable spill
    /// directory is reported as the earliest degradation point, exactly
    /// like [`super::spill::SpillOptions::build_tier`].
    pub(crate) fn build(
        options: &AnalysisOptions,
        deadline: Option<Instant>,
    ) -> Result<Self, SpillError> {
        let mut shards = Vec::with_capacity(SHARD_COUNT);
        let mut spill_enabled = false;
        for i in 0..SHARD_COUNT {
            let tier = options
                .spill
                .build_tier_at(options.limits.max_state_bytes, &format!("shard{:02}", i))?
                .map(|mut t| {
                    if let Some(d) = deadline {
                        t.set_deadline(d);
                    }
                    spill_enabled = true;
                    t
                });
            shards.push(Mutex::new(Shard::new(tier)));
        }
        Ok(ShardedStore {
            shards,
            cow: options.cow_snapshots,
            budget: options.limits.max_state_bytes,
            spill_enabled,
            fast: options.limits.max_state_bytes.is_none() && !spill_enabled,
            resident: AtomicUsize::new(0),
            spilled: AtomicUsize::new(0),
            peak_resident: AtomicUsize::new(0),
            peak_spilled: AtomicUsize::new(0),
            intern_hits: AtomicU64::new(0),
            clock: AtomicU64::new(0),
            poisoned: AtomicBool::new(false),
            fault: Mutex::new(None),
        })
    }

    /// Whether memory pressure degrades to disk (any shard tier built).
    pub(crate) fn spill_enabled(&self) -> bool {
        self.spill_enabled
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    fn charge_resident(&self, bytes: usize) {
        let now = self.resident.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak_resident.fetch_max(now, Ordering::Relaxed);
    }

    /// Save a snapshot; returns its handle and whether it was interned
    /// into an already-resident identical slot (COW mode only — deep
    /// mode never dedups, matching the single-threaded stores; spilled
    /// candidates never match, so a dedup check costs no disk read).
    pub(crate) fn save(&self, state: MachineState) -> (StoreHandle, bool) {
        if self.fast {
            return self.save_fast(state);
        }
        let key = state_key(&state);
        let shard_idx = (key >> SHARD_SHIFT) as usize & (SHARD_COUNT - 1);
        let stamp = self.tick();
        let mut shard = self.shards[shard_idx].lock().expect("store shard lock");
        if self.cow {
            let hit = shard.interned.get(&key).and_then(|chain| {
                chain.iter().copied().find(|&idx| {
                    shard.slots[idx as usize]
                        .as_ref()
                        .and_then(|s| s.state.as_ref())
                        .is_some_and(|st| *st == state)
                })
            });
            if let Some(idx) = hit {
                let entry = shard.slot_mut(idx);
                entry.refs += 1;
                entry.stamp = stamp;
                let bytes = entry.bytes;
                shard.lru.push_back((idx, stamp));
                self.intern_hits.fetch_add(1, Ordering::Relaxed);
                return (
                    StoreHandle {
                        shard: shard_idx as u8,
                        slot: idx,
                        state_bytes: bytes,
                    },
                    true,
                );
            }
        }
        let bytes = state.approx_bytes();
        let entry = SlotEntry {
            key,
            state: Some(state),
            ticket: None,
            bytes,
            refs: 1,
            stamp,
        };
        let idx = match shard.free.pop() {
            Some(i) => {
                shard.slots[i as usize] = Some(entry);
                i
            }
            None => {
                shard.slots.push(Some(entry));
                (shard.slots.len() - 1) as u32
            }
        };
        if self.cow {
            shard.interned.entry(key).or_default().push(idx);
        }
        shard.lru.push_back((idx, stamp));
        // Settle the gauge before releasing the shard lock: the evictor
        // can see this slot the moment the lock drops, and its uncharge
        // must never land before our charge (the gauges are unsigned).
        self.charge_resident(bytes);
        drop(shard);
        (
            StoreHandle {
                shard: shard_idx as u8,
                slot: idx,
                state_bytes: bytes,
            },
            false,
        )
    }

    /// Pressure-free save: no content hash, no intern chain, no LRU
    /// entry. Shards are picked round-robin off the logical clock so
    /// concurrent workers still spread across locks.
    fn save_fast(&self, state: MachineState) -> (StoreHandle, bool) {
        let stamp = self.tick();
        let shard_idx = stamp as usize & (SHARD_COUNT - 1);
        let bytes = state.approx_bytes();
        let entry = SlotEntry {
            key: stamp,
            state: Some(state),
            ticket: None,
            bytes,
            refs: 1,
            stamp,
        };
        let mut shard = self.shards[shard_idx].lock().expect("store shard lock");
        let idx = match shard.free.pop() {
            Some(i) => {
                shard.slots[i as usize] = Some(entry);
                i
            }
            None => {
                shard.slots.push(Some(entry));
                (shard.slots.len() - 1) as u32
            }
        };
        self.charge_resident(bytes);
        drop(shard);
        (
            StoreHandle {
                shard: shard_idx as u8,
                slot: idx,
                state_bytes: bytes,
            },
            false,
        )
    }

    /// Fault the slot's snapshot back in from its shard tier if it is
    /// currently evicted. Call with the shard lock held; returns
    /// whether a fault-in happened (the caller settles the gauges
    /// before dropping the lock).
    fn fault_in(shard: &mut Shard, slot: u32) -> Result<bool, SpillError> {
        if shard.slot(slot).state.is_some() {
            return Ok(false);
        }
        let ticket = shard
            .slot(slot)
            .ticket
            .expect("an evicted slot always holds a spill ticket");
        let tier = shard
            .tier
            .as_mut()
            .expect("evicted slots only exist with a spill tier");
        let state = tier.read_state(&ticket)?;
        shard.slot_mut(slot).state = Some(state);
        Ok(true)
    }

    fn settle_fault_in(&self, bytes: usize) {
        self.charge_resident(bytes);
        self.spilled.fetch_sub(bytes, Ordering::Relaxed);
    }

    /// A copy of the stored snapshot for expansion, faulting it back in
    /// from the shard's spill tier first when evicted. COW mode copies
    /// O(chunk table); deep mode reproduces the eager-clone cost.
    pub(crate) fn materialize(&self, h: StoreHandle) -> Result<MachineState, SpillError> {
        if self.fast {
            let shard = self.shards[h.shard as usize].lock().expect("store shard lock");
            let st = shard
                .slot(h.slot)
                .state
                .as_ref()
                .expect("fast-path slots are always resident");
            return Ok(if self.cow { st.snapshot() } else { st.deep_snapshot() });
        }
        let stamp = self.tick();
        let mut shard = self.shards[h.shard as usize].lock().expect("store shard lock");
        let faulted = Self::fault_in(&mut shard, h.slot)?;
        let entry = shard.slot_mut(h.slot);
        entry.stamp = stamp;
        let bytes = entry.bytes;
        let copy = {
            let st = entry.state.as_ref().expect("faulted in above");
            if self.cow {
                st.snapshot()
            } else {
                st.deep_snapshot()
            }
        };
        shard.lru.push_back((h.slot, stamp));
        if faulted {
            self.settle_fault_in(bytes);
        }
        drop(shard);
        Ok(copy)
    }

    /// Drop one reference; the slot (and its bytes, wherever they
    /// live) is freed with the last reference.
    pub(crate) fn release(&self, h: StoreHandle) {
        let mut shard = self.shards[h.shard as usize].lock().expect("store shard lock");
        let entry = shard.slot_mut(h.slot);
        entry.refs -= 1;
        if entry.refs > 0 {
            return;
        }
        let was_resident = entry.state.is_some();
        let key = entry.key;
        let bytes = entry.bytes;
        shard.slots[h.slot as usize] = None;
        shard.free.push(h.slot);
        if self.cow && !self.fast {
            if let Some(chain) = shard.interned.get_mut(&key) {
                chain.retain(|&i| i != h.slot);
                if chain.is_empty() {
                    shard.interned.remove(&key);
                }
            }
        }
        if was_resident {
            self.resident.fetch_sub(bytes, Ordering::Relaxed);
        } else {
            self.spilled.fetch_sub(bytes, Ordering::Relaxed);
        }
        drop(shard);
    }

    /// Evict globally coldest slots until `resident + need` fits the
    /// budget. No-op without a budget or tiers; running out of
    /// evictable slots degrades gracefully (the search continues over
    /// budget — the tier's contract is degradation, never a stop). A
    /// write failure poisons the store: the snapshot stays resident and
    /// workers observe [`ShardedStore::is_poisoned`] at their next
    /// governance check.
    pub(crate) fn evict_to_budget(&self, need: usize) {
        let Some(budget) = self.budget else { return };
        self.evict_until(budget.saturating_sub(need));
    }

    fn evict_until(&self, target: usize) {
        if !self.spill_enabled || self.poisoned.load(Ordering::Relaxed) {
            return;
        }
        while self.resident.load(Ordering::Relaxed) > target {
            // Globally coldest-first: min front stamp across shards.
            let mut coldest: Option<(usize, u64)> = None;
            for (i, m) in self.shards.iter().enumerate() {
                let mut shard = m.lock().expect("store shard lock");
                if let Some(stamp) = shard.coldest() {
                    if coldest.is_none_or(|(_, best)| stamp < best) {
                        coldest = Some((i, stamp));
                    }
                }
            }
            let Some((shard_idx, stamp)) = coldest else {
                return; // nothing evictable left; degrade gracefully
            };
            let mut shard = self.shards[shard_idx].lock().expect("store shard lock");
            // Re-validate under one continuous lock; the slot may have
            // been touched or freed since the peek.
            let Some(&(slot_idx, front_stamp)) = shard.lru.front() else {
                continue;
            };
            if front_stamp != stamp {
                continue;
            }
            shard.lru.pop_front();
            let live = shard.slots[slot_idx as usize]
                .as_ref()
                .is_some_and(|s| s.stamp == front_stamp && s.state.is_some());
            if !live {
                continue;
            }
            let (key, state) = {
                let entry = shard.slot_mut(slot_idx);
                (entry.key, entry.state.take().expect("checked resident"))
            };
            let bytes = shard.slot(slot_idx).bytes;
            if shard.slot(slot_idx).ticket.is_none() {
                let tier = shard.tier.as_mut().expect("spill_enabled checked");
                match tier.write_state(key, &state) {
                    Ok(t) => shard.slot_mut(slot_idx).ticket = Some(t),
                    Err(e) => {
                        // Keep the snapshot resident; poison the store.
                        shard.slot_mut(slot_idx).state = Some(state);
                        drop(shard);
                        let mut fault = self.fault.lock().expect("store fault lock");
                        if fault.is_none() {
                            *fault = Some(e);
                        }
                        self.poisoned.store(true, Ordering::Release);
                        return;
                    }
                }
            }
            if let Some(t) = shard.tier.as_mut() {
                t.counters_mut().evictions += 1;
            }
            self.resident.fetch_sub(bytes, Ordering::Relaxed);
            let now = self.spilled.fetch_add(bytes, Ordering::Relaxed) + bytes;
            self.peak_spilled.fetch_max(now, Ordering::Relaxed);
            drop(shard);
        }
    }

    /// Whether an unrecoverable spill fault has occurred (lock-free).
    pub(crate) fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }

    /// The poisoning spill fault, if one occurred.
    pub(crate) fn take_fault(&self) -> Option<SpillError> {
        self.fault.lock().expect("store fault lock").take()
    }

    /// Point-in-time RAM gauge (lock-free).
    pub(crate) fn resident_bytes(&self) -> usize {
        self.resident.load(Ordering::Relaxed)
    }

    /// Point-in-time disk gauge (lock-free).
    pub(crate) fn spilled_bytes(&self) -> usize {
        self.spilled.load(Ordering::Relaxed)
    }

    pub(crate) fn peak_resident_bytes(&self) -> usize {
        self.peak_resident.load(Ordering::Relaxed)
    }

    pub(crate) fn peak_spilled_bytes(&self) -> usize {
        self.peak_spilled.load(Ordering::Relaxed)
    }

    pub(crate) fn intern_hits(&self) -> u64 {
        self.intern_hits.load(Ordering::Relaxed)
    }

    /// Spill counters summed across every shard tier.
    pub(crate) fn spill_counters(&self) -> SpillCounters {
        let mut total = SpillCounters::default();
        for m in &self.shards {
            let shard = m.lock().expect("store shard lock");
            if let Some(t) = shard.tier.as_ref() {
                let c = t.counters();
                total.writes += c.writes;
                total.reads += c.reads;
                total.retries += c.retries;
                total.evictions += c.evictions;
                total.giveups += c.giveups;
            }
        }
        total
    }

    /// Degradation warnings accumulated by the shard tiers.
    pub(crate) fn take_warnings(&self) -> Vec<String> {
        let mut out = Vec::new();
        for m in &self.shards {
            let mut shard = m.lock().expect("store shard lock");
            if let Some(t) = shard.tier.as_mut() {
                out.extend(t.take_warnings());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::spill::SpillMode;
    use estelle_runtime::{Machine, Value};

    const SPEC: &str = r#"
        specification s;
        module M process; end;
        body MB for M;
            var n : integer;
            state S;
            initialize to S begin n := 0 end;
        end;
        end.
    "#;

    fn state_with(n: i64) -> MachineState {
        let m = Machine::from_source(SPEC).unwrap();
        let mut st = m.initial_state().unwrap();
        st.globals[0] = Value::Int(n);
        st
    }

    fn store(cow: bool, budget: Option<usize>, dir: Option<std::path::PathBuf>) -> ShardedStore {
        let mut o = AnalysisOptions {
            cow_snapshots: cow,
            ..Default::default()
        };
        o.limits.max_state_bytes = budget;
        if let Some(d) = dir {
            o.spill.mode = SpillMode::On;
            o.spill.dir = Some(d);
        }
        ShardedStore::build(&o, None).expect("store builds")
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!(
            "tango-sharded-store-{}-{}",
            tag,
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn identical_states_intern_in_cow_mode_only() {
        // A budget engages the pressure path; without one the store
        // skips interning entirely (see `pressure_free_store_never_interns`).
        let cow = store(true, Some(usize::MAX), None);
        let (a, hit_a) = cow.save(state_with(7));
        let after_first = cow.resident_bytes();
        let (b, hit_b) = cow.save(state_with(7));
        assert!(!hit_a);
        assert!(hit_b, "identical content must share a slot under COW");
        assert_eq!(cow.intern_hits(), 1);
        assert_eq!(b.state_bytes, a.state_bytes);
        let before = cow.resident_bytes();
        assert_eq!(before, after_first, "a dedup hit charges nothing");
        cow.release(b);
        assert_eq!(
            cow.resident_bytes(),
            before,
            "shared slot stays charged while a reference remains"
        );
        cow.release(a);
        assert_eq!(cow.resident_bytes(), 0);

        let deep = store(false, Some(usize::MAX), None);
        let (_, h1) = deep.save(state_with(7));
        let (_, h2) = deep.save(state_with(7));
        assert!(!h1 && !h2, "deep mode never interns");
        assert_eq!(deep.intern_hits(), 0);
    }

    #[test]
    fn pressure_free_store_never_interns_but_keeps_the_gauges() {
        // No budget, no tier: the fast slab path. Identical states get
        // distinct slots (like the sequential engine's uninterned
        // nodes), round-trip intact, and accounting still balances.
        let st = store(true, None, None);
        let (a, hit_a) = st.save(state_with(7));
        let (b, hit_b) = st.save(state_with(7));
        assert!(!hit_a && !hit_b, "pressure-free saves never dedup");
        assert_eq!(st.intern_hits(), 0);
        let both = a.state_bytes + b.state_bytes;
        assert_eq!(st.resident_bytes(), both);
        assert_eq!(st.materialize(a).unwrap().globals[0], Value::Int(7));
        assert_eq!(st.materialize(b).unwrap().globals[0], Value::Int(7));
        st.release(a);
        assert_eq!(st.resident_bytes(), b.state_bytes);
        st.release(b);
        assert_eq!(st.resident_bytes(), 0);
        assert_eq!(st.peak_resident_bytes(), both);
    }

    #[test]
    fn materialize_roundtrips_through_the_spill_tier() {
        let dir = tmpdir("roundtrip");
        let st = store(true, Some(1), Some(dir.clone()));
        let (h, _) = st.save(state_with(42));
        assert!(st.spill_enabled());
        assert!(st.resident_bytes() > 0);
        st.evict_to_budget(0);
        assert_eq!(st.resident_bytes(), 0, "the budget forces the slot out");
        assert!(st.spilled_bytes() > 0);
        assert!(st.spill_counters().evictions >= 1);
        let back = st.materialize(h).expect("faults back in");
        assert_eq!(back.globals[0], Value::Int(42));
        assert!(st.resident_bytes() > 0, "fault-in moves bytes back to RAM");
        assert_eq!(st.spilled_bytes(), 0);
        assert!(st.spill_counters().reads >= 1);
        assert!(!st.is_poisoned());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn eviction_is_globally_coldest_first_across_shards() {
        let dir = tmpdir("coldest");
        let st = store(false, Some(usize::MAX), Some(dir.clone()));
        // Distinct states land in different shards (very likely); the
        // least recently touched must go first regardless of shard.
        let handles: Vec<_> = (0..8).map(|i| st.save(state_with(i)).0).collect();
        // Touch everything but the first, making handle 0 the global LRU.
        for &h in &handles[1..] {
            let _ = st.materialize(h).unwrap();
        }
        let one = handles[0].state_bytes;
        st.evict_until(st.resident_bytes() - one);
        // The coldest handle is the evicted one: materializing it
        // registers a spill read.
        let reads_before = st.spill_counters().reads;
        let _ = st.materialize(handles[0]).unwrap();
        assert_eq!(st.spill_counters().reads, reads_before + 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn release_of_spilled_slot_clears_the_disk_gauge() {
        let dir = tmpdir("release-spilled");
        let st = store(true, Some(1), Some(dir.clone()));
        let (h, _) = st.save(state_with(9));
        st.evict_to_budget(0);
        assert!(st.spilled_bytes() > 0);
        st.release(h);
        assert_eq!(st.spilled_bytes(), 0);
        assert_eq!(st.resident_bytes(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn peaks_track_high_water_marks() {
        let st = store(false, None, None);
        let (a, _) = st.save(state_with(1));
        let (b, _) = st.save(state_with(2));
        let peak = st.peak_resident_bytes();
        assert_eq!(peak, st.resident_bytes());
        st.release(a);
        st.release(b);
        assert_eq!(st.resident_bytes(), 0);
        assert_eq!(st.peak_resident_bytes(), peak, "peak survives releases");
    }

    #[test]
    fn write_failure_poisons_the_store_and_keeps_the_state() {
        use crate::search::spill::SpillFaultPlan;
        let dir = tmpdir("poison");
        let mut o = AnalysisOptions::default();
        o.limits.max_state_bytes = Some(1);
        o.spill.mode = SpillMode::On;
        o.spill.dir = Some(dir.clone());
        o.spill.fault_plan = Some(SpillFaultPlan {
            hard_writes_after: Some(0),
            ..SpillFaultPlan::default()
        });
        let st = ShardedStore::build(&o, None).expect("store builds");
        let (h, _) = st.save(state_with(3));
        st.evict_to_budget(0);
        assert!(st.is_poisoned(), "dead disk must poison");
        let fault = st.take_fault().expect("fault recorded");
        assert!(fault.to_string().contains("disk full"), "{}", fault);
        // The snapshot never left RAM; the search can still checkpoint.
        assert_eq!(st.materialize(h).unwrap().globals[0], Value::Int(3));
        assert!(st.resident_bytes() > 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
