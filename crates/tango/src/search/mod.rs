//! Search strategies.
//!
//! * [`dfs`] — the static-mode depth-first search of §2.2, extended with
//!   cooperative resource governance (wall-clock deadline, snapshot-memory
//!   budget) and stop/resume checkpointing;
//! * [`mdfs`] — the multi-threaded depth-first search of §3.1 for
//!   on-line (dynamic) trace analysis, with PG-nodes, PGAV detection and
//!   dynamic node reordering, under the same governance.
//!
//! Both searches execute untrusted compiled specifications, so every
//! interpreter step runs inside [`guard`]: a panic that unwinds out of
//! `generate` or `fire` is converted into a structured per-branch
//! [`RuntimeError`] instead of tearing down the whole analysis.

pub mod dfs;
pub mod mdfs;
pub(crate) mod snapshot;
pub mod spill;
pub(crate) mod store;

use crate::stats::SearchStats;
use estelle_runtime::{RuntimeError, RuntimeErrorKind};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Cap on recorded per-branch specification errors.
pub(crate) const MAX_RECORDED_ERRORS: usize = 16;

/// Run one interpreter step, converting an unwinding panic into a
/// [`RuntimeErrorKind::Panic`] error. The machine state the closure was
/// mutating is treated as poisoned by the caller: the branch is abandoned
/// and the search backtracks to a saved snapshot, so the half-updated
/// state is never fired from again. (The process-global panic hook still
/// prints the panic message; only the unwinding is contained.)
pub(crate) fn guard<T>(
    what: &str,
    f: impl FnOnce() -> Result<T, RuntimeError>,
) -> Result<T, RuntimeError> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(r) => r,
        Err(payload) => {
            let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_string()
            };
            Err(RuntimeError::panic(format!(
                "panic during {}: {}",
                what, msg
            )))
        }
    }
}

/// Record a non-fatal branch error, bounded by [`MAX_RECORDED_ERRORS`].
pub(crate) fn record_error(
    spec_errors: &mut Vec<RuntimeError>,
    stats: &mut SearchStats,
    e: RuntimeError,
) {
    stats.error_branches += 1;
    if spec_errors.len() < MAX_RECORDED_ERRORS {
        spec_errors.push(e);
    }
}

/// Errors that abort the whole analysis rather than one branch. A guarded
/// panic is deliberately *not* fatal: the broken branch is abandoned and
/// the rest of the search space still gets explored.
pub(crate) fn is_fatal(e: &RuntimeError) -> bool {
    matches!(
        e.kind,
        RuntimeErrorKind::Internal
            | RuntimeErrorKind::CallDepthExceeded
            | RuntimeErrorKind::LoopLimitExceeded
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_passes_results_through() {
        assert_eq!(guard("step", || Ok::<_, RuntimeError>(7)).unwrap(), 7);
        let e = guard("step", || Err::<(), _>(RuntimeError::undefined("x"))).unwrap_err();
        assert_eq!(e.kind, RuntimeErrorKind::UndefinedValue);
    }

    #[test]
    fn guard_converts_panics_into_branch_errors() {
        let e = guard("generate", || -> Result<(), RuntimeError> {
            panic!("boom {}", 42)
        })
        .unwrap_err();
        assert_eq!(e.kind, RuntimeErrorKind::Panic);
        assert!(e.message.contains("generate"));
        assert!(e.message.contains("boom 42"));
        // A guarded panic abandons one branch, never the whole analysis.
        assert!(!is_fatal(&e));
    }

    #[test]
    fn guard_handles_str_payloads() {
        let e = guard("fire", || -> Result<(), RuntimeError> {
            std::panic::panic_any("static str")
        })
        .unwrap_err();
        assert!(e.message.contains("static str"));
    }

    #[test]
    fn error_recording_is_bounded() {
        let mut errors = Vec::new();
        let mut stats = SearchStats::default();
        for _ in 0..(MAX_RECORDED_ERRORS + 10) {
            record_error(&mut errors, &mut stats, RuntimeError::undefined("e"));
        }
        assert_eq!(errors.len(), MAX_RECORDED_ERRORS);
        assert_eq!(stats.error_branches, (MAX_RECORDED_ERRORS + 10) as u64);
    }
}
