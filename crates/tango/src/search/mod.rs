//! Search strategies.
//!
//! * [`dfs`] — the static-mode depth-first search of §2.2;
//! * [`mdfs`] — the multi-threaded depth-first search of §3.1 for
//!   on-line (dynamic) trace analysis, with PG-nodes, PGAV detection and
//!   dynamic node reordering.

pub mod dfs;
pub mod mdfs;
