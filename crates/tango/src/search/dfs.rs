//! Depth-first search trace analysis (static mode, §2.2).
//!
//! The classic backtracking loop over the machine's four operations:
//! generate, update, save, restore. Counter semantics follow the paper's
//! tables: one *generate* (GE) per node expansion, one *transition
//! executed* (TE) per fire attempt, a *save* (SA) only when a node has
//! more than one fireable transition (nothing to come back for otherwise),
//! and a *restore* (RE) per actual backtrack.
//!
//! Extensions beyond the paper:
//!
//! * a visited-state hash table (flagged off by default) pruning
//!   re-exploration of identical (machine state, cursor) pairs — the
//!   approach §4.2 suggests as future work for taming the exponential
//!   analysis of invalid TP0 traces;
//! * copy-on-write *Save*/*Restore* through the [`super::snapshot`]
//!   store: saved states share heap chunks with the live state and
//!   identical snapshots are interned (resident and charged once), so a
//!   save costs O(touched chunks) instead of O(state) — §3.2's dominant
//!   cost. `AnalysisOptions::cow_snapshots = false` forces the old eager
//!   deep-clone path for A/B measurement (`BENCH_snapshots.json`);
//! * resource governance: a wall-clock deadline and a snapshot-memory
//!   budget, checked cooperatively *before* each step mutates anything, so
//!   that stopping on any limit freezes an exactly resumable
//!   [`DfsCheckpoint`]. Resuming with raised limits continues the search
//!   where it stopped: no work is repeated and the TE/GE/RE/SA totals come
//!   out identical to an uninterrupted run.

use crate::env::TraceEnv;
use crate::error::TangoError;
use crate::options::AnalysisOptions;
use crate::stats::SearchStats;
use crate::telemetry::{PruneKind, Telemetry};
use crate::verdict::{InconclusiveReason, Verdict};
use estelle_runtime::{FireOutcome, Fireable, Machine, MachineState, RuntimeError};
use std::collections::HashSet;
use std::hash::{Hash, Hasher};
use std::time::Instant;

use super::snapshot::{FxBuildHasher, FxHasher, SavedState, SnapshotStore};
use super::{guard, is_fatal, record_error};

/// Result of the raw search (before initial-state-search wrapping).
#[derive(Debug)]
pub struct DfsOutcome {
    pub verdict: Verdict,
    pub witness: Option<Vec<String>>,
    pub spec_errors: Vec<RuntimeError>,
    /// The most-explaining attempt: (events consumed+verified, its path).
    pub best: (usize, Vec<String>),
    /// Checkable events in the trace (outstanding at search start).
    pub total_events: usize,
    /// Present when the verdict is `Inconclusive`: the frozen search,
    /// resumable via [`resume_dfs`].
    pub checkpoint: Option<DfsCheckpoint>,
    /// Spill-tier faults: reopen warnings (torn crash tails) and, on
    /// `Inconclusive(SpillFailure)`, the unrecoverable error.
    pub spill_faults: Vec<String>,
}

#[derive(Clone, Debug)]
pub(crate) struct Frame {
    /// The saved state, held through the interning snapshot store: an
    /// identical state saved twice is resident (and charged) once.
    pub(crate) state: SavedState,
    pub(crate) cursors: crate::env::Cursors,
    pub(crate) fireable: Vec<Fireable>,
    pub(crate) next: usize,
    pub(crate) path_len: usize,
    /// Consecutive barren steps on the path up to this node.
    pub(crate) barren: usize,
}

/// The complete mutable state of a stopped [`search`], captured before
/// the step that would have exceeded a limit. Opaque outside the crate;
/// carried by [`crate::checkpoint::Checkpoint`].
#[derive(Clone, Debug)]
pub struct DfsCheckpoint {
    pub(crate) state: MachineState,
    pub(crate) cursors: crate::env::Cursors,
    pub(crate) path: Vec<String>,
    pub(crate) stack: Vec<Frame>,
    pub(crate) visited: HashSet<u64, FxBuildHasher>,
    pub(crate) spec_errors: Vec<RuntimeError>,
    pub(crate) best: (usize, Vec<String>),
    pub(crate) best_pending_len: Option<usize>,
    pub(crate) total_events: usize,
    pub(crate) barren: usize,
    pub(crate) at_node: bool,
}

impl DfsCheckpoint {
    /// Depth of the search path at the stop point.
    pub fn depth(&self) -> usize {
        self.path.len()
    }

    /// Saved backtracking frames awaiting exploration.
    pub fn pending_frames(&self) -> usize {
        self.stack.len()
    }

    /// Checkable events in the trace under analysis.
    pub fn events_total(&self) -> usize {
        self.total_events
    }
}

enum Init {
    Fresh(MachineState),
    Resume(Box<DfsCheckpoint>),
}

/// Run a depth-first search from `start` against the trace in `env`.
pub fn run_dfs(
    machine: &Machine,
    env: &mut TraceEnv,
    start: MachineState,
    options: &AnalysisOptions,
    stats: &mut SearchStats,
    tel: &mut Telemetry,
) -> Result<DfsOutcome, TangoError> {
    let t0 = Instant::now();
    let result = search(machine, env, Init::Fresh(start), options, stats, tel);
    stats.wall_time += t0.elapsed();
    if let Ok(o) = &result {
        tel.on_verdict(&o.verdict, stats, options.limits.max_transitions);
    }
    result
}

/// Continue a search stopped on a resource limit. `stats` must be the
/// counters accumulated up to the stop (they continue, not restart), and
/// `env` a fresh environment over the same trace — the checkpoint
/// repositions its cursors. `options` should differ from the original run
/// only in its limits; changing checking options mid-search would make the
/// combined verdict meaningless.
pub fn resume_dfs(
    machine: &Machine,
    env: &mut TraceEnv,
    checkpoint: DfsCheckpoint,
    options: &AnalysisOptions,
    stats: &mut SearchStats,
    tel: &mut Telemetry,
) -> Result<DfsOutcome, TangoError> {
    let t0 = Instant::now();
    let result = search(
        machine,
        env,
        Init::Resume(Box::new(checkpoint)),
        options,
        stats,
        tel,
    );
    stats.wall_time += t0.elapsed();
    if let Ok(o) = &result {
        tel.on_verdict(&o.verdict, stats, options.limits.max_transitions);
    }
    result
}

fn search(
    machine: &Machine,
    env: &mut TraceEnv,
    init: Init,
    options: &AnalysisOptions,
    stats: &mut SearchStats,
    tel: &mut Telemetry,
) -> Result<DfsOutcome, TangoError> {
    let mut state;
    let mut path: Vec<String>;
    let mut stack: Vec<Frame>;
    let mut visited: HashSet<u64, FxBuildHasher>;
    let mut spec_errors: Vec<RuntimeError>;
    let total_events;
    // Failure localization: the attempt that explained the most events.
    let mut best: (usize, Vec<String>);
    // `Some(len)`: `best` was recorded on the first, never-backtracked
    // attempt without cloning the path (the common valid-trace case stays
    // O(n)); the first `len` path entries are materialized into `best.1`
    // lazily, at the first backtrack or at an `Invalid` return — whichever
    // comes first, while the virgin path is still intact.
    let mut best_pending_len: Option<usize>;
    // Consecutive steps without observable progress on the current path.
    let mut barren: usize;
    // `true`: we just arrived at a (possibly new) node and must expand it;
    // `false`: the last expansion failed and we must backtrack.
    let mut at_node: bool;

    // The snapshot pool: owns every saved state on the stack and the
    // deduplicated byte accounting the memory budget governs.
    let mut store: SnapshotStore;
    // Spill-tier faults accumulated over the run (reopen warnings, and
    // the terminal error when the run degrades to `SpillFailure`).
    let mut spill_faults: Vec<String> = Vec::new();
    // Set when the search broke mid-step on a spill read failure: the
    // loop variables are no longer a coherent stop point, so no
    // checkpoint is offered.
    let mut spill_broke_midstep = false;

    let budget = options.limits.max_state_bytes;
    // A resumed search gets a fresh wall-clock allowance. Computed before
    // the tier opens so spill retry sleeps are clamped to the same
    // deadline the search loop enforces.
    let deadline = options.limits.max_wall_time.map(|d| Instant::now() + d);
    let tier = match options.spill.build_tier(budget) {
        Ok(t) => t.map(|mut t| {
            if let Some(d) = deadline {
                t.set_deadline(d);
            }
            t
        }),
        Err(e) => {
            // The spill directory itself is unusable. Degrade before
            // touching anything; a resume keeps its checkpoint.
            let (total_events, checkpoint) = match init {
                Init::Fresh(_) => (env.outstanding(), None),
                Init::Resume(cp) => (cp.total_events, Some(*cp)),
            };
            return Ok(DfsOutcome {
                verdict: Verdict::Inconclusive(InconclusiveReason::SpillFailure),
                witness: None,
                spec_errors: Vec::new(),
                best: (0, Vec::new()),
                total_events,
                checkpoint,
                spill_faults: vec![e.to_string()],
            });
        }
    };

    match init {
        Init::Fresh(s) => {
            state = s;
            path = Vec::new();
            stack = Vec::new();
            visited = HashSet::default();
            spec_errors = Vec::new();
            total_events = env.outstanding();
            best = (0, Vec::new());
            best_pending_len = None;
            barren = 0;
            at_node = true;
            store = match tier {
                Some(t) => SnapshotStore::new(options.cow_snapshots)
                    .with_spill(budget.unwrap_or(usize::MAX), t),
                None => SnapshotStore::new(options.cow_snapshots),
            };
            stats.snapshot_bytes = 0;
        }
        Init::Resume(cp) => {
            let cp = *cp;
            env.restore(&cp.cursors);
            state = cp.state;
            path = cp.path;
            stack = cp.stack;
            visited = cp.visited;
            spec_errors = cp.spec_errors;
            total_events = cp.total_events;
            best = cp.best;
            best_pending_len = cp.best_pending_len;
            barren = cp.barren;
            at_node = cp.at_node;
            // Rebuild the pool (and the byte counter) from the surviving
            // frames; charges are re-derived, never blindly subtracted, so
            // the counter cannot wrap across stop/resume rounds.
            store = SnapshotStore::rebuild(
                options.cow_snapshots,
                stack.iter().map(|f| &f.state),
                budget,
                tier,
            );
            stats.snapshot_bytes = store.resident_bytes();
        }
    }
    spill_faults.extend(store.take_spill_warnings());
    stats.peak_snapshot_bytes = stats.peak_snapshot_bytes.max(stats.snapshot_bytes);
    // Spill counters continue across stop/resume rounds: the tier counts
    // from zero each open, so the stats add onto what the round inherited.
    let spill_base = (
        stats.spill_writes,
        stats.spill_reads,
        stats.spill_retries,
        stats.spill_evictions,
        stats.spill_giveups,
    );

    // Per-search *Generate* scratch, refilled in place by `generate_into`:
    // single-child expansions (the overwhelmingly common case on valid
    // traces) reuse the same fireable buffer instead of allocating a fresh
    // `Generated` per node; only multi-child nodes move the buffer into
    // their backtracking frame.
    let mut gen = estelle_runtime::Generated::default();

    let reason = loop {
        sync_spill_stats(stats, &store, spill_base);
        tel.tick(stats, options.limits.max_transitions);
        // Governance, checked before the next step mutates anything: a
        // `break` here freezes the loop variables into an exactly
        // resumable checkpoint.
        if let Some(e) = store.take_spill_fault() {
            spill_faults.push(e.to_string());
            break InconclusiveReason::SpillFailure;
        }
        if stats.transitions_executed > options.limits.max_transitions {
            break InconclusiveReason::TransitionLimit;
        }
        if deadline.is_some_and(|d| Instant::now() >= d) {
            break InconclusiveReason::TimeLimit;
        }
        // With a spill tier attached the budget is a tiering policy, not
        // a stop condition: eviction holds residency at the budget.
        if !store.spill_enabled()
            && options
                .limits
                .max_state_bytes
                .is_some_and(|cap| stats.snapshot_bytes > cap)
        {
            break InconclusiveReason::MemoryLimit;
        }

        if at_node {
            let explained = total_events - env.outstanding();
            if explained > best.0 {
                best.0 = explained;
                if stats.restores > 0 {
                    best.1 = path.clone();
                    best_pending_len = None;
                } else {
                    best_pending_len = Some(path.len());
                }
            }
            if env.all_done() {
                sync_spill_stats(stats, &store, spill_base);
                return Ok(DfsOutcome {
                    verdict: Verdict::Valid,
                    witness: Some(path),
                    spec_errors,
                    best,
                    total_events,
                    checkpoint: None,
                    spill_faults,
                });
            }
            if path.len() >= options.limits.max_depth {
                break InconclusiveReason::DepthLimit;
            }
            if options.state_hashing {
                let key = fingerprint(&state, &env.cursors);
                if !visited.insert(key) {
                    stats.hash_prunes += 1;
                    tel.on_prune(path.len(), PruneKind::Hash);
                    at_node = false;
                    continue;
                }
            }
            stats.max_depth = stats.max_depth.max(path.len());

            stats.generates += 1;
            let gen_t0 = tel.timer();
            match guard("generate", || {
                machine.generate_into(&mut state, env, &mut gen)
            }) {
                Ok(()) => {}
                Err(e) if is_fatal(&e) => return Err(TangoError::Runtime(e)),
                Err(e) => {
                    tel.on_error_branch(path.len(), e.kind);
                    record_error(&mut spec_errors, stats, e);
                    // Keep the GE == generate-events invariant: the failed
                    // expansion is an event with zero fanout.
                    tel.on_generate(path.len(), 0, false, gen_t0);
                    at_node = false;
                    continue;
                }
            };
            tel.on_generate(path.len(), gen.fireable.len(), gen.incomplete, gen_t0);
            if gen.fireable.is_empty() {
                at_node = false;
                continue;
            }
            stats.fanout_sum += gen.fireable.len() as u64;
            stats.fanout_samples += 1;

            let first = gen.fireable[0].clone();
            if gen.fireable.len() > 1 {
                stats.saves += 1;
                let cursors = env.save();
                let meta_bytes = (cursors.input.len() + cursors.output.len())
                    * std::mem::size_of::<usize>();
                let resident_before = stats.snapshot_bytes;
                let (snapshot, interned) = store.save(&state, meta_bytes);
                if interned {
                    stats.intern_hits += 1;
                }
                stats.snapshot_bytes = store.resident_bytes();
                stats.peak_snapshot_bytes =
                    stats.peak_snapshot_bytes.max(stats.snapshot_bytes);
                if tel.hot() {
                    tel.on_save(
                        path.len(),
                        stats.snapshot_bytes.saturating_sub(resident_before),
                        interned,
                        stats.snapshot_bytes,
                    );
                }
                stack.push(Frame {
                    state: snapshot,
                    cursors,
                    fireable: std::mem::take(&mut gen.fireable),
                    next: 1,
                    path_len: path.len(),
                    barren,
                });
            }
            let before = env.outstanding();
            match try_fire(machine, &mut state, &first, env, stats, &mut spec_errors, tel, path.len())? {
                true => {
                    if env.outstanding() < before {
                        barren = 0;
                    } else {
                        barren += 1;
                    }
                    if barren > options.limits.max_barren_steps {
                        stats.barren_prunes += 1;
                        tel.on_prune(path.len(), PruneKind::Barren);
                        at_node = false;
                    } else {
                        path.push(machine.transition_name(first.trans).to_string());
                    }
                }
                false => at_node = false,
            }
        } else {
            // About to abandon the current attempt: if the best attempt so
            // far is the still-intact virgin path, materialize it now.
            if let Some(len) = best_pending_len.take() {
                best.1 = path[..len].to_vec();
            }
            // Backtrack to the nearest frame with untried children.
            let Some(top) = stack.last_mut() else {
                sync_spill_stats(stats, &store, spill_base);
                return Ok(DfsOutcome {
                    verdict: Verdict::Invalid,
                    witness: None,
                    spec_errors,
                    best,
                    total_events,
                    checkpoint: None,
                    spill_faults,
                });
            };
            if top.next >= top.fireable.len() {
                let frame = stack.pop().expect("stack non-empty");
                store.release(&frame.state);
                stats.snapshot_bytes = store.resident_bytes();
                continue;
            }
            stats.restores += 1;
            tel.on_restore(path.len());
            let last_child = top.next == top.fireable.len() - 1;
            let f;
            if last_child {
                let frame = stack.pop().expect("stack non-empty");
                store.release(&frame.state);
                stats.snapshot_bytes = store.resident_bytes();
                f = frame.fireable[frame.next].clone();
                state = match store.take(frame.state) {
                    Ok(s) => s,
                    Err(e) => {
                        // The snapshot's disk copy is unreadable and its
                        // RAM copy is gone: the loop variables are no
                        // longer a coherent stop point.
                        spill_faults.push(e.to_string());
                        spill_broke_midstep = true;
                        break InconclusiveReason::SpillFailure;
                    }
                };
                env.restore(&frame.cursors);
                path.truncate(frame.path_len);
                barren = frame.barren;
            } else {
                f = top.fireable[top.next].clone();
                top.next += 1;
                state = match store.materialize(&top.state) {
                    Ok(s) => s,
                    Err(e) => {
                        spill_faults.push(e.to_string());
                        spill_broke_midstep = true;
                        break InconclusiveReason::SpillFailure;
                    }
                };
                env.restore(&top.cursors);
                path.truncate(top.path_len);
                barren = top.barren;
            }
            let before = env.outstanding();
            match try_fire(machine, &mut state, &f, env, stats, &mut spec_errors, tel, path.len())? {
                true => {
                    if env.outstanding() < before {
                        barren = 0;
                    } else {
                        barren += 1;
                    }
                    if barren > options.limits.max_barren_steps {
                        stats.barren_prunes += 1;
                        tel.on_prune(path.len(), PruneKind::Barren);
                        // stay backtracking
                    } else {
                        path.push(machine.transition_name(f.trans).to_string());
                        at_node = true;
                    }
                }
                false => { /* stay backtracking */ }
            }
        }
    };

    sync_spill_stats(stats, &store, spill_base);
    // A checkpoint carries every frame's snapshot bytes inline, so
    // spilled frames are faulted back in first. A read failure here
    // costs the checkpoint (reported as a fault), never a panic.
    let checkpoint = if spill_broke_midstep {
        None
    } else if let Err(e) = store.ensure_resident_all(stack.iter().map(|fr| &fr.state)) {
        spill_faults.push(format!("checkpoint dropped: {}", e));
        None
    } else {
        Some(DfsCheckpoint {
            cursors: env.save(),
            state,
            path,
            stack,
            visited,
            spec_errors: spec_errors.clone(),
            best: best.clone(),
            best_pending_len,
            total_events,
            barren,
            at_node,
        })
    };
    Ok(DfsOutcome {
        verdict: Verdict::Inconclusive(reason),
        witness: None,
        spec_errors,
        best,
        total_events,
        checkpoint,
        spill_faults,
    })
}

/// Mirror the spill tier's counters and gauges into the run's stats.
/// `base` holds the totals inherited from earlier stop/resume rounds —
/// the tier itself counts from zero each open. No-op without a tier, so
/// spill-off runs keep their exact pre-spill accounting.
fn sync_spill_stats(
    stats: &mut SearchStats,
    store: &SnapshotStore,
    base: (u64, u64, u64, u64, u64),
) {
    if !store.spill_enabled() {
        return;
    }
    let c = store.spill_counters();
    stats.spill_writes = base.0 + c.writes;
    stats.spill_reads = base.1 + c.reads;
    stats.spill_retries = base.2 + c.retries;
    stats.spill_evictions = base.3 + c.evictions;
    stats.spill_giveups = base.4 + c.giveups;
    stats.snapshot_bytes = store.resident_bytes();
    stats.peak_snapshot_bytes = stats.peak_snapshot_bytes.max(stats.snapshot_bytes);
    stats.spilled_bytes = store.spilled_bytes();
    stats.peak_spilled_bytes = stats.peak_spilled_bytes.max(stats.spilled_bytes);
}

/// Fire one candidate; `Ok(true)` when the transition completed and all of
/// its outputs were matched.
#[allow(clippy::too_many_arguments)]
fn try_fire(
    machine: &Machine,
    state: &mut MachineState,
    f: &Fireable,
    env: &mut TraceEnv,
    stats: &mut SearchStats,
    spec_errors: &mut Vec<RuntimeError>,
    tel: &mut Telemetry,
    depth: usize,
) -> Result<bool, TangoError> {
    stats.transitions_executed += 1;
    let t0 = tel.timer();
    env.begin_fire();
    let result = match guard("fire", || machine.fire(state, f, env)) {
        Ok(FireOutcome::Completed) => Ok(env.end_fire()),
        Ok(FireOutcome::OutputRejected) => Ok(false),
        Err(e) if is_fatal(&e) => Err(TangoError::Runtime(e)),
        Err(e) => {
            tel.on_error_branch(depth, e.kind);
            record_error(spec_errors, stats, e);
            Ok(false)
        }
    };
    if tel.hot() {
        let fired = matches!(result, Ok(true));
        let observable = if tel.events_on() {
            machine.transition_observable(f.trans)
        } else {
            None
        };
        tel.on_fire(
            depth,
            f.trans,
            machine.transition_name(f.trans),
            observable,
            fired,
            t0,
        );
    }
    result
}

/// Hash of (machine state, trace cursors) for the visited-set extension.
/// Uses the same fast content hasher as the snapshot-interning cache.
pub fn fingerprint(state: &MachineState, cursors: &crate::env::Cursors) -> u64 {
    let mut h = FxHasher::default();
    state.control.hash(&mut h);
    state.globals.hash(&mut h);
    state.heap.hash(&mut h);
    cursors.hash(&mut h);
    h.finish()
}
