//! Depth-first search trace analysis (static mode, §2.2).
//!
//! The classic backtracking loop over the machine's four operations:
//! generate, update, save, restore. Counter semantics follow the paper's
//! tables: one *generate* (GE) per node expansion, one *transition
//! executed* (TE) per fire attempt, a *save* (SA) only when a node has
//! more than one fireable transition (nothing to come back for otherwise),
//! and a *restore* (RE) per actual backtrack.
//!
//! Extension beyond the paper (flagged off by default): a visited-state
//! hash table pruning re-exploration of identical (machine state, cursor)
//! pairs — the approach §4.2 suggests as future work for taming the
//! exponential analysis of invalid TP0 traces.

use crate::env::TraceEnv;
use crate::error::TangoError;
use crate::options::AnalysisOptions;
use crate::stats::SearchStats;
use crate::verdict::{InconclusiveReason, Verdict};
use estelle_runtime::{
    FireOutcome, Fireable, Machine, MachineState, RuntimeError, RuntimeErrorKind,
};
use std::collections::HashSet;
use std::hash::{Hash, Hasher};
use std::time::Instant;

/// Result of the raw search (before initial-state-search wrapping).
#[derive(Debug)]
pub struct DfsOutcome {
    pub verdict: Verdict,
    pub witness: Option<Vec<String>>,
    pub spec_errors: Vec<RuntimeError>,
    /// The most-explaining attempt: (events consumed+verified, its path).
    pub best: (usize, Vec<String>),
    /// Checkable events in the trace (outstanding at search start).
    pub total_events: usize,
}

/// Cap on recorded per-branch specification errors.
const MAX_RECORDED_ERRORS: usize = 16;

struct Frame {
    state: MachineState,
    cursors: crate::env::Cursors,
    fireable: Vec<Fireable>,
    next: usize,
    path_len: usize,
    /// Consecutive barren steps on the path up to this node.
    barren: usize,
}

/// Run a depth-first search from `start` against the trace in `env`.
pub fn run_dfs(
    machine: &Machine,
    env: &mut TraceEnv,
    start: MachineState,
    options: &AnalysisOptions,
    stats: &mut SearchStats,
) -> Result<DfsOutcome, TangoError> {
    let t0 = Instant::now();
    let result = search(machine, env, start, options, stats);
    stats.cpu_time += t0.elapsed();
    result
}

fn search(
    machine: &Machine,
    env: &mut TraceEnv,
    start: MachineState,
    options: &AnalysisOptions,
    stats: &mut SearchStats,
) -> Result<DfsOutcome, TangoError> {
    let mut state = start;
    let mut path: Vec<String> = Vec::new();
    let mut stack: Vec<Frame> = Vec::new();
    let mut visited: HashSet<u64> = HashSet::new();
    let mut spec_errors: Vec<RuntimeError> = Vec::new();

    // Failure localization: the attempt that explained the most events.
    let total_events = env.outstanding();
    let mut best: (usize, Vec<String>) = (0, Vec::new());

    // Consecutive steps without observable progress on the current path.
    let mut barren: usize = 0;

    // `true`: we just arrived at a (possibly new) node and must expand it;
    // `false`: the last expansion failed and we must backtrack.
    let mut at_node = true;

    loop {
        if at_node {
            let explained = total_events - env.outstanding();
            if explained > best.0 {
                best.0 = explained;
                // The path snapshot is diagnostic material for *invalid*
                // traces; skip the clone while the search is still on its
                // first, never-backtracked attempt so that the common
                // valid-trace case stays O(n).
                if stats.restores > 0 {
                    best.1 = path.clone();
                }
            }
            if env.all_done() {
                return Ok(DfsOutcome {
                    verdict: Verdict::Valid,
                    witness: Some(path),
                    spec_errors,
                    best,
                    total_events,
                });
            }
            if path.len() >= options.limits.max_depth {
                return Ok(DfsOutcome {
                    verdict: Verdict::Inconclusive(InconclusiveReason::DepthLimit),
                    witness: None,
                    spec_errors,
                    best,
                    total_events,
                });
            }
            if options.state_hashing {
                let key = fingerprint(&state, &env.cursors);
                if !visited.insert(key) {
                    stats.hash_prunes += 1;
                    at_node = false;
                    continue;
                }
            }
            stats.max_depth = stats.max_depth.max(path.len());

            stats.generates += 1;
            let gen = match machine.generate(&mut state, env) {
                Ok(g) => g,
                Err(e) if is_fatal(&e) => return Err(TangoError::Runtime(e)),
                Err(e) => {
                    record_error(&mut spec_errors, stats, e);
                    at_node = false;
                    continue;
                }
            };
            if gen.fireable.is_empty() {
                at_node = false;
                continue;
            }
            stats.fanout_sum += gen.fireable.len() as u64;
            stats.fanout_samples += 1;

            let first = gen.fireable[0].clone();
            if gen.fireable.len() > 1 {
                stats.saves += 1;
                stack.push(Frame {
                    state: state.clone(),
                    cursors: env.save(),
                    fireable: gen.fireable,
                    next: 1,
                    path_len: path.len(),
                    barren,
                });
            }
            let before = env.outstanding();
            match try_fire(machine, &mut state, &first, env, stats, &mut spec_errors)? {
                true => {
                    if env.outstanding() < before {
                        barren = 0;
                    } else {
                        barren += 1;
                    }
                    if barren > options.limits.max_barren_steps {
                        stats.barren_prunes += 1;
                        at_node = false;
                    } else {
                        path.push(machine.transition_name(first.trans).to_string());
                    }
                }
                false => at_node = false,
            }
            if stats.transitions_executed > options.limits.max_transitions {
                return Ok(DfsOutcome {
                    verdict: Verdict::Inconclusive(InconclusiveReason::TransitionLimit),
                    witness: None,
                    spec_errors,
                    best,
                    total_events,
                });
            }
        } else {
            // Backtrack to the nearest frame with untried children.
            let Some(top) = stack.last_mut() else {
                return Ok(DfsOutcome {
                    verdict: Verdict::Invalid,
                    witness: None,
                    spec_errors,
                    best,
                    total_events,
                });
            };
            if top.next >= top.fireable.len() {
                stack.pop();
                continue;
            }
            stats.restores += 1;
            let last_child = top.next == top.fireable.len() - 1;
            let f;
            if last_child {
                let frame = stack.pop().expect("stack non-empty");
                f = frame.fireable[frame.next].clone();
                state = frame.state;
                env.restore(&frame.cursors);
                path.truncate(frame.path_len);
                barren = frame.barren;
            } else {
                f = top.fireable[top.next].clone();
                top.next += 1;
                state = top.state.clone();
                env.restore(&top.cursors);
                path.truncate(top.path_len);
                barren = top.barren;
            }
            let before = env.outstanding();
            match try_fire(machine, &mut state, &f, env, stats, &mut spec_errors)? {
                true => {
                    if env.outstanding() < before {
                        barren = 0;
                    } else {
                        barren += 1;
                    }
                    if barren > options.limits.max_barren_steps {
                        stats.barren_prunes += 1;
                        // stay backtracking
                    } else {
                        path.push(machine.transition_name(f.trans).to_string());
                        at_node = true;
                    }
                }
                false => { /* stay backtracking */ }
            }
            if stats.transitions_executed > options.limits.max_transitions {
                return Ok(DfsOutcome {
                    verdict: Verdict::Inconclusive(InconclusiveReason::TransitionLimit),
                    witness: None,
                    spec_errors,
                    best,
                    total_events,
                });
            }
        }
    }
}

/// Fire one candidate; `Ok(true)` when the transition completed and all of
/// its outputs were matched.
fn try_fire(
    machine: &Machine,
    state: &mut MachineState,
    f: &Fireable,
    env: &mut TraceEnv,
    stats: &mut SearchStats,
    spec_errors: &mut Vec<RuntimeError>,
) -> Result<bool, TangoError> {
    stats.transitions_executed += 1;
    env.begin_fire();
    match machine.fire(state, f, env) {
        Ok(FireOutcome::Completed) => Ok(env.end_fire()),
        Ok(FireOutcome::OutputRejected) => Ok(false),
        Err(e) if is_fatal(&e) => Err(TangoError::Runtime(e)),
        Err(e) => {
            record_error(spec_errors, stats, e);
            Ok(false)
        }
    }
}

fn record_error(spec_errors: &mut Vec<RuntimeError>, stats: &mut SearchStats, e: RuntimeError) {
    stats.error_branches += 1;
    if spec_errors.len() < MAX_RECORDED_ERRORS {
        spec_errors.push(e);
    }
}

/// Errors that abort the whole analysis rather than one branch.
fn is_fatal(e: &RuntimeError) -> bool {
    matches!(
        e.kind,
        RuntimeErrorKind::Internal
            | RuntimeErrorKind::CallDepthExceeded
            | RuntimeErrorKind::LoopLimitExceeded
    )
}

/// Hash of (machine state, trace cursors) for the visited-set extension.
pub fn fingerprint(state: &MachineState, cursors: &crate::env::Cursors) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    state.control.hash(&mut h);
    state.globals.hash(&mut h);
    state.heap.hash(&mut h);
    cursors.hash(&mut h);
    h.finish()
}
