//! Disk spill tier for the snapshot store: degrade to disk bandwidth
//! under memory pressure instead of dying `Inconclusive(MemoryLimit)`.
//!
//! With a `--max-mem` budget and a spill directory, cold snapshots are
//! encoded with the stable [`estelle_runtime::codec`] into append-only
//! segment files and evicted from RAM; a later *Restore* faults the
//! snapshot back in, verifying its CRC32 before the search trusts it.
//! The tier changes **where bytes live, never what the search decides**:
//! verdicts and the paper's TE/GE/RE/SA counters are bit-identical to an
//! all-in-RAM run.
//!
//! Segment file layout (`spill-NNNNNNNN.seg`):
//!
//! ```text
//! +----------------+---------+
//! | magic (8B)     | version |   header (12 bytes)
//! | b"TANGOSPL"    |  u32 LE |
//! +----------------+---------+
//! | key u64 | len u32 | crc u32 | payload[len] |   one per record
//! +--------------------------------------------+
//! | ...                                        |
//! +--------------------------------------------+
//! ```
//!
//! The payload is one [`encode_state`] snapshot; `crc` is the CRC32 of
//! the payload alone, so a record is verifiable in isolation. There is
//! no trailer: a crash mid-append leaves a torn tail that the reopen
//! scan detects (record header or payload extending past end-of-file)
//! and steps over — every record before the tear is still readable.
//!
//! Fault tolerance, in order of escalation:
//!
//! * **transient I/O errors** (a failed append or read) retry with
//!   bounded exponential backoff; a failed append first truncates the
//!   segment back to its last committed length so no torn record is
//!   left behind, and rotates to a fresh segment if even the truncate
//!   fails;
//! * **unrecoverable failures** (retries exhausted — the ENOSPC case —
//!   or a checksum mismatch on read-back) surface as a typed
//!   [`SpillError`]; the search degrades to
//!   `Inconclusive(SpillFailure)` with a partial report instead of
//!   panicking;
//! * **reopen** (checkpoint resume, or a crashed process restarting)
//!   re-scans every segment, CRC-verifying each record into an
//!   in-memory content-key index; re-evicting a state whose identical
//!   bytes already sit in a segment is then write-free (*adoption*).
//!
//! Writes are deliberately **not** fsynced per record: the spill tier is
//! a cache of resident state, not the durability story — that is the
//! checkpoint's job. A lost spill segment costs re-derivable work only.
//!
//! [`FaultySpillDir`] wraps any [`SpillDir`] with a deterministic
//! [`SpillFaultPlan`] (error-on-Nth-write/read, short writes, bit
//! flips, hard disk-full) so every degradation path above is testable.

use estelle_runtime::codec::{decode_state, encode_state};
use estelle_runtime::{ByteReader, ByteWriter, MachineState};
use std::collections::HashMap;
use std::fmt;
use std::fs::{self, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::checkpoint::codec::crc32;
use crate::fault::RetryPolicy;

/// First 8 bytes of every spill segment file.
pub const SPILL_MAGIC: [u8; 8] = *b"TANGOSPL";

/// Current segment format version. Bump on any layout change; readers
/// refuse newer files with [`SpillError::UnsupportedVersion`].
pub const SPILL_VERSION: u32 = 1;

/// Segment header length: magic + version.
const HEADER_LEN: u64 = 12;

/// Per-record header length: key + payload length + payload CRC32.
const RECORD_HEADER_LEN: u64 = 16;

// ------------------------------------------------------------ errors

/// Why a spill-tier operation failed. Every way a segment can be wrong
/// maps to a typed variant — never a panic.
#[derive(Debug)]
pub enum SpillError {
    /// The underlying I/O operation failed after exhausting retries.
    Io {
        context: String,
        error: io::Error,
    },
    /// A segment file does not start with the spill magic.
    BadMagic { segment: u32 },
    /// A segment was written by a newer format than this build reads.
    UnsupportedVersion {
        segment: u32,
        found: u32,
        supported: u32,
    },
    /// A segment ends before its structure is complete.
    Truncated {
        segment: u32,
        context: &'static str,
    },
    /// A record fails its checksum or decodes to garbage.
    Corrupt {
        segment: u32,
        offset: u64,
        context: String,
    },
}

impl fmt::Display for SpillError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpillError::Io { context, error } => {
                write!(f, "spill I/O error while {}: {}", context, error)
            }
            SpillError::BadMagic { segment } => {
                write!(f, "spill segment {} is not a spill file (bad magic)", segment)
            }
            SpillError::UnsupportedVersion {
                segment,
                found,
                supported,
            } => write!(
                f,
                "spill segment {} has format version {} (this build reads up to {})",
                segment, found, supported
            ),
            SpillError::Truncated { segment, context } => {
                write!(f, "spill segment {} truncated while reading {}", segment, context)
            }
            SpillError::Corrupt {
                segment,
                offset,
                context,
            } => write!(
                f,
                "spill segment {} corrupt at byte {}: {}",
                segment, offset, context
            ),
        }
    }
}

impl std::error::Error for SpillError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SpillError::Io { error, .. } => Some(error),
            _ => None,
        }
    }
}

// ----------------------------------------------------------- tickets

/// Claim check for one spilled snapshot: enough to read the record back
/// and verify it without trusting anything on disk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpillTicket {
    /// Segment the record lives in.
    pub segment: u32,
    /// Byte offset of the record's *payload* within the segment.
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u32,
    /// Expected CRC32 of the payload.
    pub crc: u32,
    /// Content key of the snapshot (the snapshot-store intern key).
    pub key: u64,
}

/// One CRC-verified record found by a segment scan.
#[derive(Clone, Copy, Debug)]
struct SegmentRecord {
    segment: u32,
    offset: u64,
    len: u32,
    crc: u32,
}

// ------------------------------------------------------ storage traits

/// One append-only segment: the minimal surface the tier needs, kept as
/// a trait so fault injection can sit between the tier and the
/// filesystem.
#[allow(clippy::len_without_is_empty)]
pub trait SpillMedium: Send {
    /// Append `data` at end-of-file.
    fn append(&mut self, data: &[u8]) -> io::Result<()>;
    /// Read exactly `buf.len()` bytes starting at `offset`.
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<()>;
    /// Current length in bytes.
    fn len(&mut self) -> io::Result<u64>;
    /// Cut the file back to `len` bytes (torn-tail repair).
    fn truncate(&mut self, len: u64) -> io::Result<()>;
}

/// A directory of numbered segments.
pub trait SpillDir: Send {
    /// Open segment `id` for appending, creating it if absent.
    fn create_segment(&mut self, id: u32) -> io::Result<Box<dyn SpillMedium>>;
    /// Open an existing segment `id` for reading.
    fn open_segment(&mut self, id: u32) -> io::Result<Box<dyn SpillMedium>>;
    /// All existing segment ids, ascending.
    fn list_segments(&mut self) -> io::Result<Vec<u32>>;
}

// ------------------------------------------------- filesystem backend

/// The real filesystem backend: `spill-NNNNNNNN.seg` files in one
/// directory (created on first use).
pub struct FsSpillDir {
    root: PathBuf,
}

impl FsSpillDir {
    pub fn new(root: impl Into<PathBuf>) -> Self {
        FsSpillDir { root: root.into() }
    }

    fn segment_path(&self, id: u32) -> PathBuf {
        self.root.join(format!("spill-{:08}.seg", id))
    }
}

impl SpillDir for FsSpillDir {
    fn create_segment(&mut self, id: u32) -> io::Result<Box<dyn SpillMedium>> {
        fs::create_dir_all(&self.root)?;
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(self.segment_path(id))?;
        Ok(Box::new(FsSegment { file }))
    }

    fn open_segment(&mut self, id: u32) -> io::Result<Box<dyn SpillMedium>> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(self.segment_path(id))?;
        Ok(Box::new(FsSegment { file }))
    }

    fn list_segments(&mut self) -> io::Result<Vec<u32>> {
        fs::create_dir_all(&self.root)?;
        let mut ids = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(id) = name
                .strip_prefix("spill-")
                .and_then(|rest| rest.strip_suffix(".seg"))
                .and_then(|digits| digits.parse::<u32>().ok())
            {
                ids.push(id);
            }
        }
        ids.sort_unstable();
        Ok(ids)
    }
}

struct FsSegment {
    file: fs::File,
}

impl SpillMedium for FsSegment {
    fn append(&mut self, data: &[u8]) -> io::Result<()> {
        self.file.seek(SeekFrom::End(0))?;
        self.file.write_all(data)
    }

    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        self.file.seek(SeekFrom::Start(offset))?;
        self.file.read_exact(buf)
    }

    fn len(&mut self) -> io::Result<u64> {
        Ok(self.file.metadata()?.len())
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        self.file.set_len(len)
    }
}

// ------------------------------------------------------ fault injection

/// Which disk faults to inject, and how often, in a [`FaultySpillDir`].
///
/// Each `*_every` field counts in operations of that kind across all
/// segments of the directory; `0` disables that fault. The schedule is
/// deterministic, so spill fault-injection tests are exactly
/// reproducible.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpillFaultPlan {
    /// Fail every n-th append with a transient I/O error.
    pub write_error_every: u64,
    /// On every n-th append, write only half the data, then fail — the
    /// torn write of a crashing or out-of-space filesystem.
    pub short_write_every: u64,
    /// Fail every n-th read with a transient I/O error.
    pub read_error_every: u64,
    /// Flip one bit in the buffer of every n-th read — silent media
    /// corruption the CRC must catch.
    pub flip_bit_every: u64,
    /// After this many appends have been attempted, every further
    /// append fails permanently — the disk-full (ENOSPC) model that
    /// retries cannot save.
    pub hard_writes_after: Option<u64>,
}

#[derive(Default)]
struct FaultCounters {
    appends: u64,
    reads: u64,
}

fn injected(what: &str) -> io::Error {
    io::Error::other(format!("{} (injected)", what))
}

fn due(op: u64, every: u64) -> bool {
    every > 0 && op.is_multiple_of(every)
}

/// A fault-injecting [`SpillDir`] wrapper for robustness testing. The
/// operation counters are shared across every segment the directory
/// hands out, so a plan describes the whole device, not one file.
pub struct FaultySpillDir {
    inner: Box<dyn SpillDir>,
    plan: SpillFaultPlan,
    counters: Arc<Mutex<FaultCounters>>,
}

impl FaultySpillDir {
    pub fn new(inner: Box<dyn SpillDir>, plan: SpillFaultPlan) -> Self {
        FaultySpillDir {
            inner,
            plan,
            counters: Arc::new(Mutex::new(FaultCounters::default())),
        }
    }

    fn wrap(&self, medium: Box<dyn SpillMedium>) -> Box<dyn SpillMedium> {
        Box::new(FaultyMedium {
            inner: medium,
            plan: self.plan,
            counters: Arc::clone(&self.counters),
        })
    }
}

impl SpillDir for FaultySpillDir {
    fn create_segment(&mut self, id: u32) -> io::Result<Box<dyn SpillMedium>> {
        self.inner.create_segment(id).map(|m| self.wrap(m))
    }

    fn open_segment(&mut self, id: u32) -> io::Result<Box<dyn SpillMedium>> {
        self.inner.open_segment(id).map(|m| self.wrap(m))
    }

    fn list_segments(&mut self) -> io::Result<Vec<u32>> {
        self.inner.list_segments()
    }
}

struct FaultyMedium {
    inner: Box<dyn SpillMedium>,
    plan: SpillFaultPlan,
    counters: Arc<Mutex<FaultCounters>>,
}

impl SpillMedium for FaultyMedium {
    fn append(&mut self, data: &[u8]) -> io::Result<()> {
        let op = {
            let mut c = self.counters.lock().expect("fault counter lock");
            c.appends += 1;
            c.appends
        };
        if let Some(after) = self.plan.hard_writes_after {
            if op > after {
                return Err(injected("disk full"));
            }
        }
        if due(op, self.plan.short_write_every) {
            self.inner.append(&data[..data.len() / 2])?;
            return Err(injected("short write"));
        }
        if due(op, self.plan.write_error_every) {
            return Err(injected("write I/O error"));
        }
        self.inner.append(data)
    }

    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        let op = {
            let mut c = self.counters.lock().expect("fault counter lock");
            c.reads += 1;
            c.reads
        };
        if due(op, self.plan.read_error_every) {
            return Err(injected("read I/O error"));
        }
        self.inner.read_at(offset, buf)?;
        if due(op, self.plan.flip_bit_every) && !buf.is_empty() {
            let mid = buf.len() / 2;
            buf[mid] ^= 0x01;
        }
        Ok(())
    }

    fn len(&mut self) -> io::Result<u64> {
        self.inner.len()
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        self.inner.truncate(len)
    }
}

// ---------------------------------------------------------- the tier

/// Spill activity counters, folded into
/// [`crate::SearchStats`] (`spill_*`) at telemetry sync points.
#[derive(Clone, Copy, Debug, Default)]
pub struct SpillCounters {
    /// Snapshot records written to segments.
    pub writes: u64,
    /// Snapshot records read (and CRC-verified) back.
    pub reads: u64,
    /// Transient I/O errors absorbed by retry + backoff.
    pub retries: u64,
    /// Operations abandoned after exhausting the retry budget — the
    /// error then surfaces as a typed [`SpillError`] and the search
    /// degrades to `Inconclusive(SpillFailure)`.
    pub giveups: u64,
    /// Snapshots evicted from RAM (writes + write-free adoptions).
    pub evictions: u64,
    /// Evictions satisfied by an identical record already on disk.
    pub adopted: u64,
}

/// The disk tier itself: an append-only segment writer, a read-back
/// cache of open segments, and the adoption index rebuilt from segment
/// scans on reopen.
pub struct SpillTier {
    dir: Box<dyn SpillDir>,
    active_id: u32,
    active: Option<Box<dyn SpillMedium>>,
    /// Committed length of the active segment: bytes of fully appended
    /// records (and header). A failed append truncates back to this.
    active_len: u64,
    readers: HashMap<u32, Box<dyn SpillMedium>>,
    /// content key → CRC-verified records already on disk, for
    /// write-free re-eviction after a reopen.
    adopt: HashMap<u64, Vec<SegmentRecord>>,
    max_segment_bytes: u64,
    /// Transient-error retry schedule ([`RetryPolicy::spill`]: 2ms
    /// doubling to 16ms), deadline-armed when the search has a
    /// wall-clock budget.
    policy: RetryPolicy,
    counters: SpillCounters,
    warnings: Vec<String>,
}

impl SpillTier {
    /// Open (or reopen) a spill directory. Every existing segment is
    /// scanned and CRC-verified into the adoption index; per-segment
    /// damage (torn tails from a crash, corrupt records) degrades to a
    /// warning — those records are simply not adopted — while an
    /// unusable directory is a hard error.
    pub fn open(
        dir: Box<dyn SpillDir>,
        max_segment_bytes: usize,
        retries: u32,
    ) -> Result<SpillTier, SpillError> {
        let mut tier = SpillTier {
            dir,
            active_id: 0,
            active: None,
            active_len: 0,
            readers: HashMap::new(),
            adopt: HashMap::new(),
            max_segment_bytes: max_segment_bytes as u64,
            policy: RetryPolicy::spill(retries),
            counters: SpillCounters::default(),
            warnings: Vec::new(),
        };
        let ids = tier.dir.list_segments().map_err(|error| SpillError::Io {
            context: "listing spill segments".to_string(),
            error,
        })?;
        for id in ids {
            tier.active_id = tier.active_id.max(id + 1);
            match tier.dir.open_segment(id) {
                Ok(mut medium) => match scan_medium(medium.as_mut(), id, false) {
                    Ok((records, note)) => {
                        for (key, rec) in records {
                            tier.adopt.entry(key).or_default().push(rec);
                        }
                        if let Some(note) = note {
                            tier.warnings.push(format!("spill segment {}: {}", id, note));
                        }
                        tier.readers.insert(id, medium);
                    }
                    Err(e) => tier.warnings.push(format!("spill segment {} unusable: {}", id, e)),
                },
                Err(e) => tier
                    .warnings
                    .push(format!("spill segment {} unreadable: {}", id, e)),
            }
        }
        Ok(tier)
    }

    /// Records adopted from previous runs, by count (index size).
    pub fn adoptable_records(&self) -> usize {
        self.adopt.values().map(Vec::len).sum()
    }

    /// Problems found while reopening (torn tails, unreadable
    /// segments). Informational: the affected records are not adopted.
    pub fn take_warnings(&mut self) -> Vec<String> {
        std::mem::take(&mut self.warnings)
    }

    pub fn counters(&self) -> SpillCounters {
        self.counters
    }

    /// Bound retry sleeps by the search's wall-clock deadline: a dying
    /// disk must not eat the time budget in backoff sleeps.
    pub fn set_deadline(&mut self, deadline: Instant) {
        self.policy = self.policy.with_deadline(deadline);
    }

    pub(crate) fn counters_mut(&mut self) -> &mut SpillCounters {
        &mut self.counters
    }

    /// Write one snapshot to the active segment (or adopt an identical
    /// record already on disk). Transient append failures retry with
    /// exponential backoff after truncating away the torn tail; the
    /// returned error means retries were exhausted.
    pub fn write_state(
        &mut self,
        key: u64,
        state: &MachineState,
    ) -> Result<SpillTicket, SpillError> {
        let mut w = ByteWriter::new();
        encode_state(&mut w, state);
        let payload = w.into_bytes();
        let len = payload.len() as u32;
        let crc = crc32(&payload);

        if let Some(records) = self.adopt.get(&key) {
            if let Some(r) = records.iter().find(|r| r.len == len && r.crc == crc) {
                self.counters.adopted += 1;
                return Ok(SpillTicket {
                    segment: r.segment,
                    offset: r.offset,
                    len,
                    crc,
                    key,
                });
            }
        }

        let mut record = Vec::with_capacity(RECORD_HEADER_LEN as usize + payload.len());
        record.extend_from_slice(&key.to_le_bytes());
        record.extend_from_slice(&len.to_le_bytes());
        record.extend_from_slice(&crc.to_le_bytes());
        record.extend_from_slice(&payload);

        let mut attempt = 0u32;
        loop {
            match self.try_append(&record) {
                Ok(offset) => {
                    self.counters.writes += 1;
                    return Ok(SpillTicket {
                        segment: self.active_id,
                        offset,
                        len,
                        crc,
                        key,
                    });
                }
                Err(e) => {
                    if attempt >= self.policy.max_retries || self.policy.expired() {
                        self.counters.giveups += 1;
                        return Err(e);
                    }
                    attempt += 1;
                    self.counters.retries += 1;
                    std::thread::sleep(self.policy.delay_for(attempt));
                }
            }
        }
    }

    /// Read one snapshot back, verifying its CRC32 before decoding.
    /// Transient read failures retry with backoff; a checksum or decode
    /// failure is corruption and fails immediately.
    pub fn read_state(&mut self, ticket: &SpillTicket) -> Result<MachineState, SpillError> {
        let mut buf = vec![0u8; ticket.len as usize];
        let mut attempt = 0u32;
        loop {
            match self.read_at_segment(ticket.segment, ticket.offset, &mut buf) {
                Ok(()) => break,
                Err(e) => {
                    if attempt >= self.policy.max_retries || self.policy.expired() {
                        self.counters.giveups += 1;
                        return Err(e);
                    }
                    attempt += 1;
                    self.counters.retries += 1;
                    std::thread::sleep(self.policy.delay_for(attempt));
                }
            }
        }
        if crc32(&buf) != ticket.crc {
            return Err(SpillError::Corrupt {
                segment: ticket.segment,
                offset: ticket.offset,
                context: "snapshot payload fails its checksum on read-back".to_string(),
            });
        }
        let mut r = ByteReader::new(&buf);
        let state = decode_state(&mut r).map_err(|e| SpillError::Corrupt {
            segment: ticket.segment,
            offset: ticket.offset,
            context: format!("snapshot payload undecodable: {}", e),
        })?;
        if !r.is_done() {
            return Err(SpillError::Corrupt {
                segment: ticket.segment,
                offset: ticket.offset,
                context: format!("{} trailing byte(s) after snapshot", r.remaining()),
            });
        }
        self.counters.reads += 1;
        Ok(state)
    }

    fn try_append(&mut self, record: &[u8]) -> Result<u64, SpillError> {
        self.ensure_active()?;
        if self.active_len > HEADER_LEN
            && self.active_len + record.len() as u64 > self.max_segment_bytes
        {
            self.rotate()?;
        }
        let id = self.active_id;
        let medium = self.active.as_mut().expect("ensure_active opened a segment");
        match medium.append(record) {
            Ok(()) => {
                let payload_offset = self.active_len + RECORD_HEADER_LEN;
                self.active_len += record.len() as u64;
                Ok(payload_offset)
            }
            Err(error) => {
                // Repair the torn tail so the segment stays well-formed
                // for any record already committed to it; if even the
                // repair fails, abandon the segment for a fresh one.
                if medium.truncate(self.active_len).is_err() {
                    self.abandon_active();
                }
                Err(SpillError::Io {
                    context: format!("appending to spill segment {}", id),
                    error,
                })
            }
        }
    }

    fn ensure_active(&mut self) -> Result<(), SpillError> {
        if self.active.is_some() {
            return Ok(());
        }
        let id = self.active_id;
        let mut medium = self.dir.create_segment(id).map_err(|error| SpillError::Io {
            context: format!("creating spill segment {}", id),
            error,
        })?;
        let mut header = Vec::with_capacity(HEADER_LEN as usize);
        header.extend_from_slice(&SPILL_MAGIC);
        header.extend_from_slice(&SPILL_VERSION.to_le_bytes());
        if let Err(error) = medium.append(&header) {
            // A half-written header would poison the file for reopen
            // scans: erase it, or burn the id if even that fails.
            if medium.truncate(0).is_err() {
                self.active_id += 1;
            }
            return Err(SpillError::Io {
                context: format!("writing spill segment {} header", id),
                error,
            });
        }
        self.active = Some(medium);
        self.active_len = HEADER_LEN;
        Ok(())
    }

    fn rotate(&mut self) -> Result<(), SpillError> {
        if let Some(medium) = self.active.take() {
            self.readers.insert(self.active_id, medium);
        }
        self.active_id += 1;
        self.active_len = 0;
        self.ensure_active()
    }

    fn abandon_active(&mut self) {
        if let Some(medium) = self.active.take() {
            self.readers.insert(self.active_id, medium);
        }
        self.active_id += 1;
        self.active_len = 0;
    }

    fn read_at_segment(
        &mut self,
        segment: u32,
        offset: u64,
        buf: &mut [u8],
    ) -> Result<(), SpillError> {
        let io_err = |error: io::Error| SpillError::Io {
            context: format!("reading spill segment {}", segment),
            error,
        };
        if segment == self.active_id {
            if let Some(medium) = self.active.as_mut() {
                return medium.read_at(offset, buf).map_err(io_err);
            }
        }
        if !self.readers.contains_key(&segment) {
            let medium = self.dir.open_segment(segment).map_err(io_err)?;
            self.readers.insert(segment, medium);
        }
        self.readers
            .get_mut(&segment)
            .expect("inserted above")
            .read_at(offset, buf)
            .map_err(io_err)
    }
}

// ------------------------------------------------------------- scans

/// Scan one segment: header checks are always hard errors; payload
/// problems (torn tail, checksum failure) stop the scan with a note in
/// lenient mode (`strict = false`) or become typed errors in strict
/// mode. The record length is validated against the bytes actually in
/// the file *before* any allocation, so a corrupt length field cannot
/// become an allocation bomb.
#[allow(clippy::type_complexity)]
fn scan_medium(
    medium: &mut dyn SpillMedium,
    segment: u32,
    strict: bool,
) -> Result<(Vec<(u64, SegmentRecord)>, Option<String>), SpillError> {
    let io_err = |error: io::Error| SpillError::Io {
        context: format!("scanning spill segment {}", segment),
        error,
    };
    let len = medium.len().map_err(io_err)?;
    if len == 0 {
        // Created but never written — empty, not damaged.
        return Ok((Vec::new(), None));
    }
    if len < HEADER_LEN {
        return Err(SpillError::Truncated {
            segment,
            context: "segment header",
        });
    }
    let mut header = [0u8; HEADER_LEN as usize];
    medium.read_at(0, &mut header).map_err(io_err)?;
    if header[..8] != SPILL_MAGIC {
        return Err(SpillError::BadMagic { segment });
    }
    let version = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
    if version != SPILL_VERSION {
        return Err(SpillError::UnsupportedVersion {
            segment,
            found: version,
            supported: SPILL_VERSION,
        });
    }

    let mut out = Vec::new();
    let mut pos = HEADER_LEN;
    let mut note = None;
    while pos < len {
        if len - pos < RECORD_HEADER_LEN {
            if strict {
                return Err(SpillError::Truncated {
                    segment,
                    context: "record header",
                });
            }
            note = Some(format!(
                "torn record header at byte {} (crash tail); {} record(s) recovered",
                pos,
                out.len()
            ));
            break;
        }
        let mut rec_header = [0u8; RECORD_HEADER_LEN as usize];
        medium.read_at(pos, &mut rec_header).map_err(io_err)?;
        let key = u64::from_le_bytes(rec_header[0..8].try_into().expect("8 bytes"));
        let rec_len = u32::from_le_bytes(rec_header[8..12].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(rec_header[12..16].try_into().expect("4 bytes"));
        if len - pos - RECORD_HEADER_LEN < u64::from(rec_len) {
            if strict {
                return Err(SpillError::Truncated {
                    segment,
                    context: "record payload",
                });
            }
            note = Some(format!(
                "torn record payload at byte {} (crash tail); {} record(s) recovered",
                pos,
                out.len()
            ));
            break;
        }
        let offset = pos + RECORD_HEADER_LEN;
        let mut payload = vec![0u8; rec_len as usize];
        medium.read_at(offset, &mut payload).map_err(io_err)?;
        if crc32(&payload) != crc {
            if strict {
                return Err(SpillError::Corrupt {
                    segment,
                    offset,
                    context: "record fails its checksum".to_string(),
                });
            }
            note = Some(format!(
                "record at byte {} fails its checksum; {} record(s) recovered before it",
                pos,
                out.len()
            ));
            break;
        }
        out.push((
            key,
            SegmentRecord {
                segment,
                offset,
                len: rec_len,
                crc,
            },
        ));
        pos = offset + u64::from(rec_len);
    }
    Ok((out, note))
}

/// Strictly verify one segment file: magic, version, every record
/// header and checksum, and exact end-of-file alignment. Returns a
/// ticket per record, or the first typed [`SpillError`] — never a
/// panic, whatever the file contains.
pub fn verify_segment_file(path: &Path) -> Result<Vec<SpillTicket>, SpillError> {
    let file = OpenOptions::new()
        .read(true)
        .write(true)
        .open(path)
        .map_err(|error| SpillError::Io {
            context: format!("opening spill segment {}", path.display()),
            error,
        })?;
    let mut medium = FsSegment { file };
    let (records, note) = scan_medium(&mut medium, 0, true)?;
    debug_assert!(note.is_none(), "strict scans error instead of noting");
    Ok(records
        .into_iter()
        .map(|(key, r)| SpillTicket {
            segment: r.segment,
            offset: r.offset,
            len: r.len,
            crc: r.crc,
            key,
        })
        .collect())
}

// ----------------------------------------------------------- options

/// When the spill tier engages.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SpillMode {
    /// Never spill: `--max-mem` is a kill switch, as before.
    Off,
    /// Always spill under a `--max-mem` budget (a directory is
    /// required: `--spill-dir`, or a per-process temp directory).
    On,
    /// Spill when both a `--max-mem` budget and a `--spill-dir` are
    /// configured — the default, so existing budget-only runs keep
    /// their stop-with-checkpoint behavior.
    #[default]
    Auto,
}

impl std::str::FromStr for SpillMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s.to_ascii_lowercase().as_str() {
            "on" => Ok(SpillMode::On),
            "off" => Ok(SpillMode::Off),
            "auto" => Ok(SpillMode::Auto),
            other => Err(format!("bad spill mode `{}` (expected on|off|auto)", other)),
        }
    }
}

/// Spill-tier configuration, carried in
/// [`crate::AnalysisOptions::spill`].
#[derive(Clone, Debug, PartialEq)]
pub struct SpillOptions {
    pub mode: SpillMode,
    /// Where segments live. `None` with [`SpillMode::On`] falls back to
    /// a per-process directory under the system temp dir.
    pub dir: Option<PathBuf>,
    /// Rotate to a new segment past this size.
    pub max_segment_bytes: usize,
    /// Transient I/O errors absorbed per operation before giving up.
    pub retries: u32,
    /// Deterministic fault injection for tests; `None` in production.
    pub fault_plan: Option<SpillFaultPlan>,
}

impl Default for SpillOptions {
    fn default() -> Self {
        SpillOptions {
            mode: SpillMode::default(),
            dir: None,
            max_segment_bytes: 64 << 20,
            retries: 3,
            fault_plan: None,
        }
    }
}

impl SpillOptions {
    /// Whether these options enable spilling under the given
    /// `max_state_bytes` budget. No budget means nothing ever needs to
    /// leave RAM, whatever the mode.
    pub fn enabled(&self, max_state_bytes: Option<usize>) -> bool {
        max_state_bytes.is_some()
            && match self.mode {
                SpillMode::Off => false,
                SpillMode::On => true,
                SpillMode::Auto => self.dir.is_some(),
            }
    }

    /// Build the tier these options describe (when enabled). The
    /// `Err` case — an unusable spill directory — is the earliest
    /// `Inconclusive(SpillFailure)` degradation point.
    pub(crate) fn build_tier(
        &self,
        max_state_bytes: Option<usize>,
    ) -> Result<Option<SpillTier>, SpillError> {
        if !self.enabled(max_state_bytes) {
            return Ok(None);
        }
        let root = self.dir.clone().unwrap_or_else(|| {
            std::env::temp_dir().join(format!("tango-spill-{}", std::process::id()))
        });
        let fs_dir: Box<dyn SpillDir> = Box::new(FsSpillDir::new(root));
        let dir: Box<dyn SpillDir> = match self.fault_plan {
            Some(plan) => Box::new(FaultySpillDir::new(fs_dir, plan)),
            None => fs_dir,
        };
        SpillTier::open(dir, self.max_segment_bytes, self.retries).map(Some)
    }

    /// [`SpillOptions::build_tier`] rooted at `<dir>/<subdir>` — one
    /// independent tier per snapshot-store shard, so shard evictions
    /// never contend on a shared segment writer. Each shard tier gets
    /// its own fault-injection sequence from the same plan.
    pub(crate) fn build_tier_at(
        &self,
        max_state_bytes: Option<usize>,
        subdir: &str,
    ) -> Result<Option<SpillTier>, SpillError> {
        if !self.enabled(max_state_bytes) {
            return Ok(None);
        }
        let root = self
            .dir
            .clone()
            .unwrap_or_else(|| {
                std::env::temp_dir().join(format!("tango-spill-{}", std::process::id()))
            })
            .join(subdir);
        let fs_dir: Box<dyn SpillDir> = Box::new(FsSpillDir::new(root));
        let dir: Box<dyn SpillDir> = match self.fault_plan {
            Some(plan) => Box::new(FaultySpillDir::new(fs_dir, plan)),
            None => fs_dir,
        };
        SpillTier::open(dir, self.max_segment_bytes, self.retries).map(Some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use estelle_runtime::{Machine, Value};

    const SPEC: &str = r#"
        specification s;
        module M process; end;
        body MB for M;
            var n : integer;
            state S;
            initialize to S begin n := 0 end;
        end;
        end.
    "#;

    fn state_with(n: i64) -> MachineState {
        let m = Machine::from_source(SPEC).unwrap();
        let mut st = m.initial_state().unwrap();
        st.globals[0] = Value::Int(n);
        st
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "tango-spill-unit-{}-{}",
            tag,
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn fs_tier(root: &Path) -> SpillTier {
        SpillTier::open(Box::new(FsSpillDir::new(root)), 64 << 20, 3).unwrap()
    }

    #[test]
    fn write_read_roundtrip() {
        let dir = tmpdir("roundtrip");
        let mut tier = fs_tier(&dir);
        let a = state_with(1);
        let b = state_with(2);
        let ta = tier.write_state(1, &a).unwrap();
        let tb = tier.write_state(2, &b).unwrap();
        assert_eq!(tier.read_state(&ta).unwrap(), a);
        assert_eq!(tier.read_state(&tb).unwrap(), b);
        assert_eq!(tier.counters().writes, 2);
        assert_eq!(tier.counters().reads, 2);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopen_adopts_identical_records_without_rewriting() {
        let dir = tmpdir("adopt");
        let st = state_with(7);
        let first = {
            let mut tier = fs_tier(&dir);
            tier.write_state(42, &st).unwrap()
        };
        let mut tier = fs_tier(&dir);
        assert_eq!(tier.adoptable_records(), 1);
        let again = tier.write_state(42, &st).unwrap();
        assert_eq!(again, first, "adoption returns the on-disk record");
        assert_eq!(tier.counters().writes, 0);
        assert_eq!(tier.counters().adopted, 1);
        assert_eq!(tier.read_state(&again).unwrap(), st);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn segment_rotation_at_size_cap() {
        let dir = tmpdir("rotate");
        let mut tier = SpillTier::open(Box::new(FsSpillDir::new(&dir)), 64, 0).unwrap();
        let mut tickets = Vec::new();
        for n in 0..6 {
            let st = state_with(n);
            tickets.push((tier.write_state(n as u64, &st).unwrap(), st));
        }
        assert!(
            tickets.iter().any(|(t, _)| t.segment > 0),
            "a 64-byte cap must force rotation"
        );
        for (t, st) in &tickets {
            assert_eq!(&tier.read_state(t).unwrap(), st, "reads span segments");
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn transient_write_errors_are_retried() {
        let dir = tmpdir("retry-write");
        let plan = SpillFaultPlan {
            write_error_every: 2,
            ..SpillFaultPlan::default()
        };
        let faulty = FaultySpillDir::new(Box::new(FsSpillDir::new(&dir)), plan);
        let mut tier = SpillTier::open(Box::new(faulty), 64 << 20, 3).unwrap();
        let mut tickets = Vec::new();
        for n in 0..8 {
            let st = state_with(n);
            tickets.push((tier.write_state(n as u64, &st).unwrap(), st));
        }
        assert!(tier.counters().retries > 0, "the plan must have fired");
        for (t, st) in &tickets {
            assert_eq!(&tier.read_state(t).unwrap(), st);
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn short_writes_are_repaired_and_retried() {
        let dir = tmpdir("short-write");
        let plan = SpillFaultPlan {
            short_write_every: 3,
            ..SpillFaultPlan::default()
        };
        let faulty = FaultySpillDir::new(Box::new(FsSpillDir::new(&dir)), plan);
        let mut tier = SpillTier::open(Box::new(faulty), 64 << 20, 3).unwrap();
        let mut tickets = Vec::new();
        for n in 0..9 {
            let st = state_with(n);
            tickets.push((tier.write_state(n as u64, &st).unwrap(), st));
        }
        for (t, st) in &tickets {
            assert_eq!(&tier.read_state(t).unwrap(), st, "torn tails must be repaired");
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn transient_read_errors_are_retried() {
        let dir = tmpdir("retry-read");
        let plan = SpillFaultPlan {
            read_error_every: 2,
            ..SpillFaultPlan::default()
        };
        let faulty = FaultySpillDir::new(Box::new(FsSpillDir::new(&dir)), plan);
        let mut tier = SpillTier::open(Box::new(faulty), 64 << 20, 3).unwrap();
        let st = state_with(5);
        let t = tier.write_state(5, &st).unwrap();
        for _ in 0..4 {
            assert_eq!(tier.read_state(&t).unwrap(), st);
        }
        assert!(tier.counters().retries > 0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn disk_full_exhausts_retries_into_a_typed_error() {
        let dir = tmpdir("enospc");
        let plan = SpillFaultPlan {
            hard_writes_after: Some(2),
            ..SpillFaultPlan::default()
        };
        let faulty = FaultySpillDir::new(Box::new(FsSpillDir::new(&dir)), plan);
        let mut tier = SpillTier::open(Box::new(faulty), 64 << 20, 2).unwrap();
        let a = tier.write_state(1, &state_with(1)).unwrap();
        match tier.write_state(2, &state_with(2)) {
            Err(SpillError::Io { error, .. }) => {
                assert!(error.to_string().contains("disk full"), "{}", error)
            }
            other => panic!("hard disk-full must be Io, got {:?}", other.map(|_| ())),
        }
        // The committed record before the failure is still readable.
        assert_eq!(tier.read_state(&a).unwrap(), state_with(1));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flipped_bit_on_read_is_caught_by_the_checksum() {
        let dir = tmpdir("flip");
        let plan = SpillFaultPlan {
            flip_bit_every: 1,
            ..SpillFaultPlan::default()
        };
        let faulty = FaultySpillDir::new(Box::new(FsSpillDir::new(&dir)), plan);
        let mut tier = SpillTier::open(Box::new(faulty), 64 << 20, 0).unwrap();
        let t = tier.write_state(9, &state_with(9)).unwrap();
        match tier.read_state(&t) {
            Err(SpillError::Corrupt { context, .. }) => {
                assert!(context.contains("checksum"), "{}", context)
            }
            other => panic!("bit flip must be Corrupt, got {:?}", other.map(|_| ())),
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopen_steps_over_a_torn_tail_with_a_warning() {
        let dir = tmpdir("torn");
        let t = {
            let mut tier = fs_tier(&dir);
            let t = tier.write_state(3, &state_with(3)).unwrap();
            tier.write_state(4, &state_with(4)).unwrap();
            t
        };
        // Tear the second record's payload, as a crash mid-append would.
        let seg = dir.join("spill-00000000.seg");
        let bytes = fs::read(&seg).unwrap();
        fs::write(&seg, &bytes[..bytes.len() - 3]).unwrap();

        let mut tier = fs_tier(&dir);
        let warnings = tier.take_warnings();
        assert_eq!(warnings.len(), 1, "{:?}", warnings);
        assert!(warnings[0].contains("torn"), "{}", warnings[0]);
        assert_eq!(tier.adoptable_records(), 1, "the intact record survives");
        assert_eq!(tier.read_state(&t).unwrap(), state_with(3));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn spill_mode_parsing_and_enablement() {
        assert_eq!("on".parse::<SpillMode>().unwrap(), SpillMode::On);
        assert_eq!("OFF".parse::<SpillMode>().unwrap(), SpillMode::Off);
        assert_eq!("auto".parse::<SpillMode>().unwrap(), SpillMode::Auto);
        assert!("sideways".parse::<SpillMode>().is_err());

        let mut opts = SpillOptions::default();
        assert!(!opts.enabled(Some(1 << 20)), "auto without a dir is off");
        assert!(!opts.enabled(None), "no budget, nothing to spill");
        opts.dir = Some(PathBuf::from("/tmp/x"));
        assert!(opts.enabled(Some(1 << 20)), "auto + dir + budget is on");
        opts.mode = SpillMode::Off;
        assert!(!opts.enabled(Some(1 << 20)));
        opts.mode = SpillMode::On;
        opts.dir = None;
        assert!(opts.enabled(Some(1 << 20)));
    }
}
